//! The system-on-chip model: cores, hierarchy, and scheduling constraints.

use std::collections::HashSet;

use crate::{Core, CoreIdx, SocError};

/// The kind of a pairwise scheduling constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConstraintKind {
    /// `a < b`: test `a` must complete before test `b` begins.
    Precedence,
    /// `a >< b`: tests `a` and `b` must never overlap in time.
    Concurrency,
}

/// A system-on-chip under test: a set of embedded cores plus the
/// system-integrator-supplied precedence and concurrency constraints.
///
/// The model is *schedule-agnostic*: it only describes the instance. The
/// derived concurrency constraints implied by the test hierarchy (a parent
/// core in Intest cannot run while any of its children runs) are exposed by
/// [`Soc::effective_concurrency`].
///
/// # Example
///
/// ```
/// use soctam_soc::{Core, Soc};
/// use soctam_wrapper::CoreTest;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut soc = Soc::new("demo");
/// let a = soc.add_core(Core::new("a", CoreTest::new(4, 4, 0, vec![16], 10)?));
/// let b = soc.add_core(Core::new("b", CoreTest::new(8, 2, 0, vec![8, 8], 20)?));
/// soc.add_precedence(a, b)?; // test a before b
/// soc.validate()?;
/// assert_eq!(soc.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Soc {
    name: String,
    cores: Vec<Core>,
    precedence: Vec<(CoreIdx, CoreIdx)>,
    concurrency: Vec<(CoreIdx, CoreIdx)>,
}

impl Soc {
    /// Creates an empty SOC with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cores: Vec::new(),
            precedence: Vec::new(),
            concurrency: Vec::new(),
        }
    }

    /// The SOC's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a core and returns its index.
    pub fn add_core(&mut self, core: Core) -> CoreIdx {
        self.cores.push(core);
        self.cores.len() - 1
    }

    /// Adds a precedence constraint: `before` must finish before `after`
    /// starts.
    ///
    /// # Errors
    ///
    /// [`SocError::UnknownCore`] for out-of-range indices,
    /// [`SocError::SelfConstraint`] if `before == after`.
    pub fn add_precedence(&mut self, before: CoreIdx, after: CoreIdx) -> Result<(), SocError> {
        self.check_pair(before, after)?;
        self.precedence.push((before, after));
        Ok(())
    }

    /// Adds a concurrency (mutual-exclusion) constraint between two cores.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Soc::add_precedence`].
    pub fn add_concurrency(&mut self, a: CoreIdx, b: CoreIdx) -> Result<(), SocError> {
        self.check_pair(a, b)?;
        self.concurrency.push((a, b));
        Ok(())
    }

    fn check_pair(&self, a: CoreIdx, b: CoreIdx) -> Result<(), SocError> {
        let len = self.cores.len();
        for idx in [a, b] {
            if idx >= len {
                return Err(SocError::UnknownCore { index: idx, len });
            }
        }
        if a == b {
            return Err(SocError::SelfConstraint { index: a });
        }
        Ok(())
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the SOC has no cores.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The core at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; use [`Soc::get`] for a checked
    /// lookup.
    pub fn core(&self, idx: CoreIdx) -> &Core {
        &self.cores[idx]
    }

    /// Checked core lookup.
    pub fn get(&self, idx: CoreIdx) -> Option<&Core> {
        self.cores.get(idx)
    }

    /// Mutable core access (e.g. to adjust preemption budgets per
    /// experiment).
    pub fn core_mut(&mut self, idx: CoreIdx) -> &mut Core {
        &mut self.cores[idx]
    }

    /// All cores in index order.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Index of the core with the given name, if present.
    pub fn core_by_name(&self, name: &str) -> Option<CoreIdx> {
        self.cores.iter().position(|c| c.name() == name)
    }

    /// The explicit precedence constraints.
    pub fn precedence(&self) -> &[(CoreIdx, CoreIdx)] {
        &self.precedence
    }

    /// The explicit concurrency constraints.
    pub fn concurrency(&self) -> &[(CoreIdx, CoreIdx)] {
        &self.concurrency
    }

    /// Explicit concurrency constraints plus those implied by the test
    /// hierarchy: every (ancestor, descendant) pair is mutually exclusive,
    /// because a parent tested in Intest forces its children's wrappers
    /// into Extest.
    pub fn effective_concurrency(&self) -> Vec<(CoreIdx, CoreIdx)> {
        let mut out: Vec<(CoreIdx, CoreIdx)> = self.concurrency.clone();
        let mut seen: HashSet<(CoreIdx, CoreIdx)> =
            out.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        for idx in 0..self.cores.len() {
            let mut cur = self.cores[idx].parent();
            let mut hops = 0;
            while let Some(p) = cur {
                if p >= self.cores.len() || hops > self.cores.len() {
                    break; // invalid hierarchies are caught by validate()
                }
                let key = (idx.min(p), idx.max(p));
                if seen.insert(key) {
                    out.push((p, idx));
                }
                cur = self.cores[p].parent();
                hops += 1;
            }
        }
        out
    }

    /// Total tester data bits over all cores (width-independent).
    pub fn total_test_bits(&self) -> u64 {
        self.cores.iter().map(|c| c.test().test_data_bits()).sum()
    }

    /// The maximum single-core power rating; useful for picking `P_max`.
    pub fn max_core_power(&self) -> u64 {
        self.cores.iter().map(Core::power).max().unwrap_or(0)
    }

    /// Checks the whole model for consistency.
    ///
    /// # Errors
    ///
    /// * [`SocError::UnknownCore`] — a constraint or parent refers to a
    ///   missing core;
    /// * [`SocError::SelfConstraint`] — a constraint relates a core to
    ///   itself (also rejected at insertion, re-checked here for models
    ///   built by deserialization);
    /// * [`SocError::DuplicateCoreName`] — two cores share a name;
    /// * [`SocError::HierarchyCycle`] — the parent relation loops;
    /// * [`SocError::PrecedenceCycle`] — the precedence digraph has a cycle.
    pub fn validate(&self) -> Result<(), SocError> {
        let len = self.cores.len();

        let mut names = HashSet::new();
        for core in &self.cores {
            if !names.insert(core.name()) {
                return Err(SocError::DuplicateCoreName {
                    name: core.name().to_owned(),
                });
            }
        }

        for &(a, b) in self.precedence.iter().chain(self.concurrency.iter()) {
            if a >= len {
                return Err(SocError::UnknownCore { index: a, len });
            }
            if b >= len {
                return Err(SocError::UnknownCore { index: b, len });
            }
            if a == b {
                return Err(SocError::SelfConstraint { index: a });
            }
        }

        for (idx, core) in self.cores.iter().enumerate() {
            if let Some(p) = core.parent() {
                if p >= len {
                    return Err(SocError::UnknownCore { index: p, len });
                }
            }
            // Detect cycles in the parent chain with a hop budget.
            let mut cur = core.parent();
            let mut hops = 0;
            while let Some(p) = cur {
                if p == idx {
                    return Err(SocError::HierarchyCycle { index: idx });
                }
                hops += 1;
                if hops > len {
                    return Err(SocError::HierarchyCycle { index: idx });
                }
                cur = self.cores[p].parent();
            }
        }

        self.check_precedence_acyclic()?;
        Ok(())
    }

    fn check_precedence_acyclic(&self) -> Result<(), SocError> {
        // Kahn's algorithm over the precedence digraph.
        let len = self.cores.len();
        let mut indegree = vec![0usize; len];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); len];
        for &(a, b) in &self.precedence {
            adj[a].push(b);
            indegree[b] += 1;
        }
        let mut queue: Vec<usize> = (0..len).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0;
        while let Some(n) = queue.pop() {
            visited += 1;
            for &m in &adj[n] {
                indegree[m] -= 1;
                if indegree[m] == 0 {
                    queue.push(m);
                }
            }
        }
        if visited == len {
            Ok(())
        } else {
            Err(SocError::PrecedenceCycle)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_wrapper::CoreTest;

    fn tiny(name: &str) -> Core {
        Core::new(name, CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
    }

    fn soc3() -> Soc {
        let mut soc = Soc::new("t");
        soc.add_core(tiny("a"));
        soc.add_core(tiny("b"));
        soc.add_core(tiny("c"));
        soc
    }

    #[test]
    fn add_and_lookup() {
        let soc = soc3();
        assert_eq!(soc.len(), 3);
        assert_eq!(soc.core_by_name("b"), Some(1));
        assert_eq!(soc.core_by_name("zz"), None);
        assert!(soc.get(2).is_some());
        assert!(soc.get(3).is_none());
    }

    #[test]
    fn rejects_out_of_range_constraints() {
        let mut soc = soc3();
        assert!(matches!(
            soc.add_precedence(0, 9),
            Err(SocError::UnknownCore { index: 9, len: 3 })
        ));
        assert!(matches!(
            soc.add_concurrency(9, 0),
            Err(SocError::UnknownCore { index: 9, .. })
        ));
    }

    #[test]
    fn rejects_self_constraints() {
        let mut soc = soc3();
        assert_eq!(
            soc.add_precedence(1, 1),
            Err(SocError::SelfConstraint { index: 1 })
        );
    }

    #[test]
    fn detects_precedence_cycle() {
        let mut soc = soc3();
        soc.add_precedence(0, 1).unwrap();
        soc.add_precedence(1, 2).unwrap();
        soc.add_precedence(2, 0).unwrap();
        assert_eq!(soc.validate(), Err(SocError::PrecedenceCycle));
    }

    #[test]
    fn accepts_precedence_dag() {
        let mut soc = soc3();
        soc.add_precedence(0, 1).unwrap();
        soc.add_precedence(0, 2).unwrap();
        soc.add_precedence(1, 2).unwrap();
        assert!(soc.validate().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut soc = Soc::new("t");
        soc.add_core(tiny("a"));
        soc.add_core(tiny("a"));
        assert!(matches!(
            soc.validate(),
            Err(SocError::DuplicateCoreName { .. })
        ));
    }

    #[test]
    fn hierarchy_generates_concurrency() {
        let mut soc = Soc::new("t");
        let parent = soc.add_core(tiny("p"));
        let child = soc.add_core(
            Core::builder("c", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .parent(parent)
                .build(),
        );
        let grandchild = soc.add_core(
            Core::builder("g", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .parent(child)
                .build(),
        );
        assert!(soc.validate().is_ok());
        let eff = soc.effective_concurrency();
        assert!(eff.contains(&(parent, child)));
        assert!(eff.contains(&(child, grandchild)));
        assert!(eff.contains(&(parent, grandchild)));
    }

    #[test]
    fn effective_concurrency_deduplicates() {
        let mut soc = Soc::new("t");
        let p = soc.add_core(tiny("p"));
        let c = soc.add_core(
            Core::builder("c", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .parent(p)
                .build(),
        );
        soc.add_concurrency(p, c).unwrap();
        let eff = soc.effective_concurrency();
        assert_eq!(eff.len(), 1);
    }

    #[test]
    fn hierarchy_cycle_detected() {
        let mut soc = Soc::new("t");
        let a = soc.add_core(tiny("a"));
        let b = soc.add_core(
            Core::builder("b", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .parent(a)
                .build(),
        );
        // Rewire a's parent to b, forming a loop.
        *soc.core_mut(a) = Core::builder("a", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
            .parent(b)
            .build();
        assert!(matches!(
            soc.validate(),
            Err(SocError::HierarchyCycle { .. })
        ));
    }

    #[test]
    fn totals() {
        let soc = soc3();
        let one = tiny("x").test().test_data_bits();
        assert_eq!(soc.total_test_bits(), 3 * one);
        assert_eq!(soc.max_core_power(), tiny("x").power());
    }
}
