//! An ITC'02-style `.soc` text format.
//!
//! The ITC 2002 SOC Test Benchmarks initiative \[17\] distributed SOC test
//! instances as line-oriented text files. This module implements a compact
//! dialect carrying exactly the information the DAC 2002 framework consumes:
//! per-core test-set parameters, power ratings, BIST engine sharing, test
//! hierarchy, preemption budgets, and the system integrator's precedence
//! and concurrency constraints.
//!
//! # Grammar
//!
//! ```text
//! file        := line*
//! line        := comment | soc | core | precedence | concurrency | blank
//! comment     := '#' .*
//! soc         := 'soc' NAME
//! core        := 'core' NAME field*
//! field       := 'inputs=' INT | 'outputs=' INT | 'bidirs=' INT
//!              | 'patterns=' INT | 'scan=' chains | 'power=' INT
//!              | 'bist=' INT | 'parent=' NAME | 'preempt=' INT
//! chains      := group (',' group)*        e.g. scan=16x41,1x54  or  scan=46,45,44
//! group       := INT | INT 'x' INT         count 'x' length, or a single length
//! precedence  := 'precedence' NAME '<' NAME
//! concurrency := 'concurrency' NAME '><' NAME
//! ```
//!
//! A `parent=` field may forward-reference a core defined later in the
//! file; names are resolved after all cores are read.
//!
//! # Example
//!
//! ```
//! let text = "\
//! soc demo
//! core alu inputs=16 outputs=16 patterns=50 scan=32,32
//! core mem inputs=8 outputs=8 patterns=200 scan=4x64 preempt=2
//! precedence mem < alu
//! ";
//! let soc = soctam_soc::itc02::parse(text)?;
//! assert_eq!(soc.len(), 2);
//! assert_eq!(soc.precedence(), &[(1, 0)]);
//! # Ok::<(), soctam_soc::SocError>(())
//! ```

use std::collections::HashMap;

use soctam_wrapper::CoreTest;

use crate::{Core, CoreIdx, Soc, SocError};

/// Parses a `.soc` document into a validated [`Soc`].
///
/// # Errors
///
/// [`SocError::Parse`] with a 1-based line number for syntax problems;
/// other [`SocError`] variants for semantic problems (unknown names,
/// constraint cycles, invalid core data).
pub fn parse(text: &str) -> Result<Soc, SocError> {
    let mut name = String::from("unnamed");
    struct PendingCore {
        name: String,
        inputs: u32,
        outputs: u32,
        bidirs: u32,
        patterns: u64,
        scan: Vec<u32>,
        power: Option<u64>,
        bist: Option<usize>,
        parent: Option<String>,
        preempt: u32,
        line: usize,
    }
    let mut cores: Vec<PendingCore> = Vec::new();
    let mut raw_constraints: Vec<(bool, String, String, usize)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line");
        match keyword {
            "soc" => {
                name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing SOC name"))?
                    .to_owned();
            }
            "core" => {
                let core_name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing core name"))?
                    .to_owned();
                let mut pc = PendingCore {
                    name: core_name,
                    inputs: 0,
                    outputs: 0,
                    bidirs: 0,
                    patterns: 0,
                    scan: Vec::new(),
                    power: None,
                    bist: None,
                    parent: None,
                    preempt: 0,
                    line: lineno,
                };
                for tok in tokens {
                    let (key, value) = tok
                        .split_once('=')
                        .ok_or_else(|| err(lineno, &format!("expected key=value, got `{tok}`")))?;
                    match key {
                        "inputs" => pc.inputs = parse_int(value, lineno)?,
                        "outputs" => pc.outputs = parse_int(value, lineno)?,
                        "bidirs" => pc.bidirs = parse_int(value, lineno)?,
                        "patterns" => pc.patterns = parse_int(value, lineno)?,
                        "power" => pc.power = Some(parse_int(value, lineno)?),
                        "bist" => pc.bist = Some(parse_int(value, lineno)?),
                        "preempt" => pc.preempt = parse_int(value, lineno)?,
                        "parent" => pc.parent = Some(value.to_owned()),
                        "scan" => pc.scan = parse_chains(value, lineno)?,
                        other => {
                            return Err(err(lineno, &format!("unknown field `{other}`")));
                        }
                    }
                }
                cores.push(pc);
            }
            "precedence" => {
                let (a, b) = parse_relation(&mut tokens, "<", lineno)?;
                raw_constraints.push((true, a, b, lineno));
            }
            "concurrency" => {
                let (a, b) = parse_relation(&mut tokens, "><", lineno)?;
                raw_constraints.push((false, a, b, lineno));
            }
            other => {
                return Err(err(lineno, &format!("unknown directive `{other}`")));
            }
        }
    }

    // Resolve names (parents may forward-reference).
    let mut index: HashMap<&str, CoreIdx> = HashMap::new();
    for (i, pc) in cores.iter().enumerate() {
        if index.insert(pc.name.as_str(), i).is_some() {
            return Err(SocError::DuplicateCoreName {
                name: pc.name.clone(),
            });
        }
    }

    let mut soc = Soc::new(name);
    for pc in &cores {
        let test = CoreTest::new(
            pc.inputs,
            pc.outputs,
            pc.bidirs,
            pc.scan.clone(),
            pc.patterns,
        )
        .map_err(|e| err(pc.line, &format!("invalid core `{}`: {e}", pc.name)))?;
        let mut builder = Core::builder(pc.name.clone(), test).max_preemptions(pc.preempt);
        if let Some(p) = pc.power {
            builder = builder.power(p);
        }
        if let Some(b) = pc.bist {
            builder = builder.bist_engine(b);
        }
        if let Some(parent_name) = &pc.parent {
            let parent =
                *index
                    .get(parent_name.as_str())
                    .ok_or_else(|| SocError::UnknownCoreName {
                        name: parent_name.clone(),
                    })?;
            builder = builder.parent(parent);
        }
        soc.add_core(builder.build());
    }

    for (is_precedence, a, b, _line) in raw_constraints {
        let ia = *index
            .get(a.as_str())
            .ok_or(SocError::UnknownCoreName { name: a })?;
        let ib = *index
            .get(b.as_str())
            .ok_or(SocError::UnknownCoreName { name: b })?;
        if is_precedence {
            soc.add_precedence(ia, ib)?;
        } else {
            soc.add_concurrency(ia, ib)?;
        }
    }

    soc.validate()?;
    Ok(soc)
}

/// Serializes an SOC to the `.soc` text format; [`parse`] inverts this.
pub fn to_string(soc: &Soc) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out, "# soctam .soc format");
    let _ = writeln!(out, "soc {}", soc.name());
    for core in soc.cores() {
        let t = core.test();
        let _ = write!(
            out,
            "core {} inputs={} outputs={} bidirs={} patterns={}",
            core.name(),
            t.inputs(),
            t.outputs(),
            t.bidirs(),
            t.patterns()
        );
        if !t.scan_chains().is_empty() {
            let _ = write!(out, " scan={}", format_chains(t.scan_chains()));
        }
        if let Some(p) = core.power_override() {
            let _ = write!(out, " power={p}");
        }
        if let Some(b) = core.bist_engine() {
            let _ = write!(out, " bist={b}");
        }
        if let Some(p) = core.parent() {
            let _ = write!(out, " parent={}", soc.core(p).name());
        }
        if core.max_preemptions() > 0 {
            let _ = write!(out, " preempt={}", core.max_preemptions());
        }
        out.push('\n');
    }
    for &(a, b) in soc.precedence() {
        let _ = writeln!(
            out,
            "precedence {} < {}",
            soc.core(a).name(),
            soc.core(b).name()
        );
    }
    for &(a, b) in soc.concurrency() {
        let _ = writeln!(
            out,
            "concurrency {} >< {}",
            soc.core(a).name(),
            soc.core(b).name()
        );
    }
    out
}

fn format_chains(chains: &[u32]) -> String {
    // Run-length encode equal consecutive lengths as COUNTxLEN.
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < chains.len() {
        let mut j = i;
        while j + 1 < chains.len() && chains[j + 1] == chains[i] {
            j += 1;
        }
        let count = j - i + 1;
        if count > 1 {
            parts.push(format!("{}x{}", count, chains[i]));
        } else {
            parts.push(chains[i].to_string());
        }
        i = j + 1;
    }
    parts.join(",")
}

fn parse_chains(value: &str, line: usize) -> Result<Vec<u32>, SocError> {
    let mut chains = Vec::new();
    for group in value.split(',') {
        if let Some((count, len)) = group.split_once('x') {
            let count: usize = parse_int(count, line)?;
            let len: u32 = parse_int(len, line)?;
            if count > 4096 {
                return Err(err(line, "scan chain group count too large"));
            }
            chains.extend(std::iter::repeat_n(len, count));
        } else {
            chains.push(parse_int(group, line)?);
        }
    }
    Ok(chains)
}

fn parse_relation<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    op: &str,
    line: usize,
) -> Result<(String, String), SocError> {
    let a = tokens
        .next()
        .ok_or_else(|| err(line, "missing first core name"))?;
    let got_op = tokens.next().ok_or_else(|| err(line, "missing operator"))?;
    if got_op != op {
        return Err(err(line, &format!("expected `{op}`, got `{got_op}`")));
    }
    let b = tokens
        .next()
        .ok_or_else(|| err(line, "missing second core name"))?;
    Ok((a.to_owned(), b.to_owned()))
}

fn parse_int<T: std::str::FromStr>(value: &str, line: usize) -> Result<T, SocError> {
    value
        .parse()
        .map_err(|_| err(line, &format!("invalid integer `{value}`")))
}

/// Parses the *classic* ITC'02 SOC Test Benchmarks file layout
/// (best-effort common subset).
///
/// The original benchmark distribution used a keyword-per-line layout:
///
/// ```text
/// SocName d695
/// TotalModules 11
/// Module 0
///   Level 0
///   Inputs 32  Outputs 32  Bidirs 0
///   ScanChains 0
///   TotalTests 1
///   Test 1
///     TotalPatterns 12
/// Module 1
///   ...
/// ```
///
/// This reader accepts that structure with the following conventions:
///
/// * keywords are case-insensitive; indentation and blank lines are free;
/// * `ScanChainLengths` (or inline counts after `ScanChains n: l1 l2 ...`)
///   lists the chain lengths;
/// * multiple `Test` blocks per module are merged by summing their
///   pattern counts (the DAC 2002 framework schedules one test per core);
/// * **unknown keywords are skipped** — real benchmark files carry many
///   fields (port lists, test protocols) this framework does not consume;
/// * modules with no patterns or no testable content (often `Module 0`,
///   the SOC shell) are dropped.
///
/// # Errors
///
/// [`SocError::Parse`] for malformed numbers, or any semantic error from
/// model validation.
pub fn parse_classic(text: &str) -> Result<Soc, SocError> {
    struct Module {
        name: String,
        inputs: u32,
        outputs: u32,
        bidirs: u32,
        scan: Vec<u32>,
        patterns: u64,
        line: usize,
    }
    let mut soc_name = String::from("unnamed");
    let mut modules: Vec<Module> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").replace(':', " ");
        // Benchmark files pack several fields per line (`Inputs 32
        // Outputs 32 Bidirs 0`); keep scanning the line until every
        // keyword is consumed.
        let mut tokens = line.split_whitespace().peekable();
        while let Some(keyword) = tokens.next() {
            match keyword.to_ascii_lowercase().as_str() {
                "socname" => {
                    if let Some(n) = tokens.next() {
                        soc_name = n.to_owned();
                    }
                }
                "module" => {
                    let id = tokens.next().unwrap_or("?").to_owned();
                    // An optional module name may follow the id — but only
                    // if the next token is not itself a field keyword.
                    let name = match tokens.peek() {
                        Some(t) if !is_classic_keyword(t) => {
                            tokens.next().expect("peeked").to_owned()
                        }
                        _ => format!("module{id}"),
                    };
                    modules.push(Module {
                        name,
                        inputs: 0,
                        outputs: 0,
                        bidirs: 0,
                        scan: Vec::new(),
                        patterns: 0,
                        line: lineno,
                    });
                }
                "inputs" => {
                    if let Some(m) = modules.last_mut() {
                        m.inputs = parse_int(tokens.next().unwrap_or(""), lineno)?;
                    }
                }
                "outputs" => {
                    if let Some(m) = modules.last_mut() {
                        m.outputs = parse_int(tokens.next().unwrap_or(""), lineno)?;
                    }
                }
                "bidirs" | "bidirectionals" => {
                    if let Some(m) = modules.last_mut() {
                        m.bidirs = parse_int(tokens.next().unwrap_or(""), lineno)?;
                    }
                }
                "scanchains" => {
                    // `ScanChains 4` alone declares the count; lengths may
                    // follow inline (`ScanChains 4 46 45 44 44`) or on a
                    // separate ScanChainLengths line.
                    if let Some(m) = modules.last_mut() {
                        let _count: usize = parse_int(tokens.next().unwrap_or("0"), lineno)?;
                        while let Some(t) = tokens.peek() {
                            if is_classic_keyword(t) {
                                break;
                            }
                            m.scan
                                .push(parse_int(tokens.next().expect("peeked"), lineno)?);
                        }
                    }
                }
                "scanchainlengths" | "scanchainlength" => {
                    if let Some(m) = modules.last_mut() {
                        while let Some(t) = tokens.peek() {
                            if is_classic_keyword(t) {
                                break;
                            }
                            m.scan
                                .push(parse_int(tokens.next().expect("peeked"), lineno)?);
                        }
                    }
                }
                "totalpatterns" | "patterns" => {
                    if let Some(m) = modules.last_mut() {
                        let p: u64 = parse_int(tokens.next().unwrap_or(""), lineno)?;
                        m.patterns += p;
                    }
                }
                // Structural or informational keywords we accept and skip
                // (together with their numeric argument, if present).
                "totalmodules" | "level" | "totaltests" | "test"
                    if tokens.peek().is_some_and(|t| t.parse::<u64>().is_ok()) =>
                {
                    tokens.next();
                }
                "totalmodules" | "level" | "totaltests" | "test" => {}
                // Anything else: unknown field. Skip the *rest of the
                // line*, not just this token — real benchmark files carry
                // free-form annotation lines whose later words must not be
                // mistaken for field keywords.
                _ => break,
            }
        }
    }

    let mut soc = Soc::new(soc_name);
    for m in modules {
        if m.patterns == 0 {
            continue; // untested shell module
        }
        let test = CoreTest::new(m.inputs, m.outputs, m.bidirs, m.scan.clone(), m.patterns)
            .map_err(|e| err(m.line, &format!("invalid module `{}`: {e}", m.name)))?;
        soc.add_core(Core::new(m.name, test));
    }
    soc.validate()?;
    Ok(soc)
}

/// Serializes an SOC in the *classic* ITC'02 keyword-per-line layout that
/// [`parse_classic`] reads.
///
/// The classic layout carries only the per-module test data (terminals,
/// scan chains, pattern counts) — power ratings, BIST sharing, hierarchy,
/// preemption budgets, and integrator constraints are dialect-only
/// ([`to_string`]) and are *not* emitted. Round-tripping through
/// [`parse_classic`] therefore preserves exactly the per-core test
/// descriptions, not the full model. One further caveat: a core whose
/// name collides (case-insensitively) with a classic keyword (`test`,
/// `level`, `inputs`, ...) cannot be represented in this layout and
/// parses back auto-named `module<i>`; use the dialect format for such
/// models.
pub fn to_classic_string(soc: &Soc) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out, "SocName {}", soc.name());
    let _ = writeln!(out, "TotalModules {}", soc.len());
    for (i, core) in soc.cores().iter().enumerate() {
        let t = core.test();
        let _ = writeln!(out, "\nModule {} {}", i + 1, core.name());
        let _ = writeln!(
            out,
            "  Inputs {} Outputs {} Bidirs {}",
            t.inputs(),
            t.outputs(),
            t.bidirs()
        );
        let _ = write!(out, "  ScanChains {}", t.scan_chains().len());
        for len in t.scan_chains() {
            let _ = write!(out, " {len}");
        }
        out.push('\n');
        let _ = writeln!(out, "  TotalTests 1");
        let _ = writeln!(out, "  Test 1");
        let _ = writeln!(out, "    TotalPatterns {}", t.patterns());
    }
    out
}

/// Keywords of the classic layout; used to delimit free-form fields
/// (module names, inline scan-chain length lists) during line scanning.
fn is_classic_keyword(token: &str) -> bool {
    matches!(
        token.to_ascii_lowercase().as_str(),
        "socname"
            | "totalmodules"
            | "module"
            | "level"
            | "inputs"
            | "outputs"
            | "bidirs"
            | "bidirectionals"
            | "scanchains"
            | "scanchainlengths"
            | "scanchainlength"
            | "totalpatterns"
            | "patterns"
            | "totaltests"
            | "test"
    )
}

fn err(line: usize, message: &str) -> SocError {
    SocError::Parse {
        line,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a demo SOC
soc demo
core alu inputs=16 outputs=16 patterns=50 scan=32,32
core mem inputs=8 outputs=8 patterns=200 scan=4x64 power=999 bist=1 preempt=2
core sub inputs=4 outputs=4 patterns=10 parent=alu
precedence mem < alu
concurrency alu >< mem
";

    #[test]
    fn parses_sample() {
        let soc = parse(SAMPLE).unwrap();
        assert_eq!(soc.name(), "demo");
        assert_eq!(soc.len(), 3);
        let mem = soc.core(1);
        assert_eq!(mem.test().scan_chains(), &[64, 64, 64, 64]);
        assert_eq!(mem.power_override(), Some(999));
        assert_eq!(mem.bist_engine(), Some(1));
        assert_eq!(mem.max_preemptions(), 2);
        assert_eq!(soc.core(2).parent(), Some(0));
        assert_eq!(soc.precedence(), &[(1, 0)]);
        assert_eq!(soc.concurrency(), &[(0, 1)]);
    }

    #[test]
    fn round_trip_preserves_model() {
        let soc = parse(SAMPLE).unwrap();
        let text = to_string(&soc);
        let back = parse(&text).unwrap();
        assert_eq!(soc, back);
    }

    #[test]
    fn forward_parent_reference_resolves() {
        let text = "soc t\ncore child inputs=1 outputs=1 patterns=1 parent=parent\ncore parent inputs=1 outputs=1 patterns=1\n";
        let soc = parse(text).unwrap();
        assert_eq!(soc.core(0).parent(), Some(1));
    }

    #[test]
    fn reports_line_numbers() {
        let text = "soc t\ncore a inputs=zzz patterns=1\n";
        match parse(text) {
            Err(SocError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("zzz"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_directive() {
        assert!(matches!(
            parse("banana split\n"),
            Err(SocError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_unknown_field() {
        assert!(matches!(
            parse("soc t\ncore a inputs=1 outputs=1 patterns=1 wibble=2\n"),
            Err(SocError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_unknown_constraint_name() {
        let text = "soc t\ncore a inputs=1 outputs=1 patterns=1\nprecedence a < ghost\n";
        assert!(matches!(parse(text), Err(SocError::UnknownCoreName { .. })));
    }

    #[test]
    fn rejects_bad_operator() {
        let text = "soc t\ncore a inputs=1 outputs=1 patterns=1\ncore b inputs=1 outputs=1 patterns=1\nprecedence a >> b\n";
        assert!(matches!(parse(text), Err(SocError::Parse { line: 4, .. })));
    }

    #[test]
    fn rejects_duplicate_core_names() {
        let text =
            "soc t\ncore a inputs=1 outputs=1 patterns=1\ncore a inputs=1 outputs=1 patterns=1\n";
        assert!(matches!(
            parse(text),
            Err(SocError::DuplicateCoreName { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hi\nsoc t   # trailing\n\ncore a inputs=1 outputs=1 patterns=1 # more\n";
        let soc = parse(text).unwrap();
        assert_eq!(soc.len(), 1);
    }

    #[test]
    fn chain_run_length_encoding() {
        assert_eq!(format_chains(&[64, 64, 64, 3, 5, 5]), "3x64,3,2x5");
        assert_eq!(format_chains(&[7]), "7");
        assert_eq!(format_chains(&[]), "");
    }

    #[test]
    fn rejects_invalid_core_semantics() {
        // zero patterns is a semantic (wrapper) error surfaced with a line.
        let text = "soc t\ncore a inputs=1 outputs=1 patterns=0\n";
        assert!(matches!(parse(text), Err(SocError::Parse { line: 2, .. })));
    }

    const CLASSIC: &str = "\
SocName mini
TotalModules 3

Module 0
  Level 0
  Inputs 100 Outputs 100 Bidirs 0
  ScanChains 0
  TotalTests 0

Module 1 alu
  Level 1
  Inputs 16
  Outputs 16
  Bidirs 2
  ScanChains 2
  ScanChainLengths 32 32
  TotalTests 1
  Test 1:
    TotalPatterns 50

Module 2
  Inputs 8 Outputs 8
  ScanChains 4 64 64 64 64
  TotalTests 2
  Test 1
    Patterns 120
  Test 2
    Patterns 80
";

    #[test]
    fn classic_format_parses_modules() {
        let soc = parse_classic(CLASSIC).unwrap();
        assert_eq!(soc.name(), "mini");
        // Module 0 (untested shell) dropped.
        assert_eq!(soc.len(), 2);
        let alu = soc.core(soc.core_by_name("alu").unwrap());
        assert_eq!(alu.test().inputs(), 16);
        assert_eq!(alu.test().bidirs(), 2);
        assert_eq!(alu.test().scan_chains(), &[32, 32]);
        assert_eq!(alu.test().patterns(), 50);
        // Module 2: auto-named, tests merged (120 + 80), inline chain list.
        let m2 = soc.core(soc.core_by_name("module2").unwrap());
        assert_eq!(m2.test().patterns(), 200);
        assert_eq!(m2.test().scan_chains(), &[64, 64, 64, 64]);
    }

    #[test]
    fn classic_format_reads_every_field_on_one_line() {
        // Benchmark files pack several fields per line; all of them count.
        let text = "SocName x\nModule 1 m\nInputs 3 Outputs 5 Bidirs 2 Patterns 7\n";
        let soc = parse_classic(text).unwrap();
        let m = soc.core(0);
        assert_eq!(m.test().inputs(), 3);
        assert_eq!(m.test().outputs(), 5);
        assert_eq!(m.test().bidirs(), 2);
        assert_eq!(m.test().patterns(), 7);
    }

    #[test]
    fn classic_format_skips_rest_of_unknown_keyword_lines() {
        // Free-form annotation lines must be ignored wholesale: later
        // words that happen to be field keywords must not fire.
        let text = "SocName x\nModule 1 m\nInputs 3 Outputs 5\n\
                    Note inputs vary per test\n\
                    NumInternalConnections Inputs 4\n\
                    Patterns 7\n";
        let soc = parse_classic(text).unwrap();
        let m = soc.core(0);
        assert_eq!(m.test().inputs(), 3, "annotation must not clobber inputs");
        assert_eq!(m.test().outputs(), 5);
        assert_eq!(m.test().patterns(), 7);
    }

    #[test]
    fn classic_serializer_round_trips() {
        let soc = parse(SAMPLE).unwrap();
        let back = parse_classic(&to_classic_string(&soc)).unwrap();
        assert_eq!(back.name(), soc.name());
        assert_eq!(back.len(), soc.len());
        for (a, b) in soc.cores().iter().zip(back.cores()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.test(), b.test());
        }
    }

    #[test]
    fn classic_format_ignores_unknown_keywords() {
        let text = "SocName x\nTamType TestBus\nModule 1\nInputs 2\nOutputs 2\nPatterns 5\nPowerDomain 3\n";
        let soc = parse_classic(text).unwrap();
        assert_eq!(soc.len(), 1);
    }

    #[test]
    fn classic_format_reports_bad_numbers() {
        let text = "SocName x\nModule 1\nInputs zz\nPatterns 5\n";
        assert!(matches!(
            parse_classic(text),
            Err(SocError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn classic_format_round_trips_through_dialect() {
        // classic -> Soc -> our dialect -> Soc must be stable.
        let soc = parse_classic(CLASSIC).unwrap();
        let text = to_string(&soc);
        let back = parse(&text).unwrap();
        assert_eq!(soc, back);
    }

    #[test]
    fn rejects_huge_chain_group() {
        let text = "soc t\ncore a inputs=1 outputs=1 patterns=1 scan=99999x4\n";
        assert!(matches!(parse(text), Err(SocError::Parse { .. })));
    }
}
