//! Embedded-core descriptors: a [`CoreTest`] plus the system-level test
//! attributes the scheduler needs (power, BIST engine, hierarchy,
//! preemption budget).

use soctam_wrapper::{CoreTest, WrapperError};

use crate::CoreIdx;

/// One embedded core of an SOC, as seen by the test scheduler.
///
/// Wraps the core's raw test-set parameters ([`CoreTest`]) with:
///
/// * a **power** rating per active test (defaults to the paper's model:
///   the number of test data bits per pattern);
/// * an optional **BIST engine** id — two cores sharing an engine can never
///   test concurrently;
/// * an optional **parent** core in the test hierarchy — a parent in Intest
///   conflicts with its children (their wrappers must be in Extest), which
///   the model turns into concurrency constraints;
/// * a **preemption budget** — how many times this core's test may be
///   interrupted (0 = non-preemptable).
///
/// # Example
///
/// ```
/// use soctam_soc::Core;
/// use soctam_wrapper::CoreTest;
///
/// # fn main() -> Result<(), soctam_soc::SocError> {
/// let test = CoreTest::new(35, 49, 0, vec![46, 45, 44, 44], 97)?;
/// let core = Core::builder("s5378", test)
///     .max_preemptions(2)
///     .build();
/// assert_eq!(core.power(), 214 + 228); // bits per pattern
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Core {
    name: String,
    test: CoreTest,
    power: Option<u64>,
    bist_engine: Option<usize>,
    parent: Option<CoreIdx>,
    max_preemptions: u32,
}

impl Core {
    /// Creates a core with default attributes (derived power, no BIST, no
    /// parent, non-preemptable).
    pub fn new(name: impl Into<String>, test: CoreTest) -> Self {
        Self {
            name: name.into(),
            test,
            power: None,
            bist_engine: None,
            parent: None,
            max_preemptions: 0,
        }
    }

    /// Starts a builder for richer construction.
    pub fn builder(name: impl Into<String>, test: CoreTest) -> CoreBuilder {
        CoreBuilder {
            core: Core::new(name, test),
        }
    }

    /// Convenience constructor straight from raw test-set parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`WrapperError`] from [`CoreTest::new`].
    pub fn from_parameters(
        name: impl Into<String>,
        inputs: u32,
        outputs: u32,
        bidirs: u32,
        scan_chains: Vec<u32>,
        patterns: u64,
    ) -> Result<Self, WrapperError> {
        Ok(Self::new(
            name,
            CoreTest::new(inputs, outputs, bidirs, scan_chains, patterns)?,
        ))
    }

    /// The core's name (unique within an SOC).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The core's raw test-set parameters.
    pub fn test(&self) -> &CoreTest {
        &self.test
    }

    /// Power dissipated while this core's test runs.
    ///
    /// Defaults to the paper's hypothetical model — the number of test data
    /// bits per pattern (`scan-in bits + scan-out bits`) — unless overridden
    /// via [`CoreBuilder::power`].
    pub fn power(&self) -> u64 {
        self.power
            .unwrap_or_else(|| self.test.scan_in_bits() + self.test.scan_out_bits())
    }

    /// Whether the power value was explicitly set (vs. derived).
    pub fn power_override(&self) -> Option<u64> {
        self.power
    }

    /// The on-chip BIST engine this core's test occupies, if any.
    pub fn bist_engine(&self) -> Option<usize> {
        self.bist_engine
    }

    /// The parent core in the test hierarchy, if this is a child core.
    pub fn parent(&self) -> Option<CoreIdx> {
        self.parent
    }

    /// Maximum number of times this core's test may be preempted.
    pub fn max_preemptions(&self) -> u32 {
        self.max_preemptions
    }

    /// Returns a copy with a different preemption budget; used by
    /// experiment drivers that toggle preemption globally.
    pub fn with_max_preemptions(mut self, max: u32) -> Self {
        self.max_preemptions = max;
        self
    }

    /// Returns a copy with a different test set, keeping every other
    /// attribute (power override, BIST engine, parent, preemption budget).
    pub fn with_test(mut self, test: CoreTest) -> Self {
        self.test = test;
        self
    }
}

/// Builder for [`Core`].
#[derive(Debug, Clone)]
pub struct CoreBuilder {
    core: Core,
}

impl CoreBuilder {
    /// Overrides the derived power rating.
    pub fn power(mut self, power: u64) -> Self {
        self.core.power = Some(power);
        self
    }

    /// Marks the core as using an on-chip BIST engine.
    pub fn bist_engine(mut self, engine: usize) -> Self {
        self.core.bist_engine = Some(engine);
        self
    }

    /// Sets the parent core index in the test hierarchy.
    pub fn parent(mut self, parent: CoreIdx) -> Self {
        self.core.parent = Some(parent);
        self
    }

    /// Sets the preemption budget (0 = non-preemptable).
    pub fn max_preemptions(mut self, max: u32) -> Self {
        self.core.max_preemptions = max;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Core {
        self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_set() -> CoreTest {
        CoreTest::new(4, 6, 2, vec![10, 8], 20).unwrap()
    }

    #[test]
    fn derived_power_is_bits_per_pattern() {
        let c = Core::new("x", test_set());
        // in: 4+2+18 = 24, out: 6+2+18 = 26
        assert_eq!(c.power(), 50);
        assert_eq!(c.power_override(), None);
    }

    #[test]
    fn power_override_wins() {
        let c = Core::builder("x", test_set()).power(7).build();
        assert_eq!(c.power(), 7);
        assert_eq!(c.power_override(), Some(7));
    }

    #[test]
    fn builder_sets_all_attributes() {
        let c = Core::builder("x", test_set())
            .bist_engine(3)
            .parent(1)
            .max_preemptions(2)
            .build();
        assert_eq!(c.bist_engine(), Some(3));
        assert_eq!(c.parent(), Some(1));
        assert_eq!(c.max_preemptions(), 2);
    }

    #[test]
    fn from_parameters_validates() {
        assert!(Core::from_parameters("bad", 0, 0, 0, vec![], 5).is_err());
        let c = Core::from_parameters("ok", 1, 1, 0, vec![4], 5).unwrap();
        assert_eq!(c.name(), "ok");
    }

    #[test]
    fn with_max_preemptions_rewrites_budget() {
        let c = Core::new("x", test_set()).with_max_preemptions(9);
        assert_eq!(c.max_preemptions(), 9);
    }
}
