//! Embedded reconstructions of the four SOCs evaluated in the paper.
//!
//! * [`d695`] — the academic Duke SOC, built from the ISCAS'85/89 core
//!   parameters widely reprinted in the SOC-test literature. The sum of
//!   minimal rectangle areas of this reconstruction lands within a fraction
//!   of a percent of the paper's lower bounds (`LB(W) · W = 659,712`
//!   wire·cycles), so the absolute Table 1 numbers are directly comparable.
//! * [`p22810`], [`p34392`], [`p93791`] — the Philips industrial SOCs. The
//!   original core data is proprietary; these are **calibrated synthetic**
//!   instances: the core count, the bottleneck structure (e.g. p34392's
//!   Core 18 with its Pareto-maximal width of 10 and minimum testing time
//!   ≈ 544,579 cycles), and the total minimal-area (which fixes the
//!   paper's lower-bound line in Table 1) are matched to the published
//!   values; the individual cores are plausible mixtures. See DESIGN.md §2
//!   for the substitution argument.
//!
//! All constructors are deterministic: repeated calls return identical
//! models.

use soctam_wrapper::{CoreTest, RectangleSet, TamWidth};

use crate::{Core, Soc};

/// `W_max` used throughout the paper's experiments.
pub const W_MAX: TamWidth = 64;

/// The four benchmark SOC names in paper order.
pub const NAMES: [&str; 4] = ["d695", "p22810", "p34392", "p93791"];

/// Returns the benchmark SOC with the given name, if it is one of the four.
pub fn by_name(name: &str) -> Option<Soc> {
    match name {
        "d695" => Some(d695()),
        "p22810" => Some(p22810()),
        "p34392" => Some(p34392()),
        "p93791" => Some(p93791()),
        _ => None,
    }
}

/// All four benchmark SOCs in paper order.
pub fn all() -> Vec<Soc> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("known name"))
        .collect()
}

/// The TAM widths evaluated in Table 1 for the given SOC.
///
/// p34392 saturates at `W = 32` (its bottleneck core pins the testing time
/// from 28 wires up), so the paper sweeps `{16, 24, 28, 32}` there and
/// `{16, 32, 48, 64}` everywhere else.
pub fn table1_widths(name: &str) -> [TamWidth; 4] {
    if name == "p34392" {
        [16, 24, 28, 32]
    } else {
        [16, 32, 48, 64]
    }
}

/// Marks every core whose serial testing time is above the SOC median as
/// preemptable with the given budget — the paper's "`max_preempts` was set
/// to 2 for the larger cores".
pub fn grant_preemption_to_large_cores(soc: &mut Soc, budget: u32) {
    let mut times: Vec<u128> = soc
        .cores()
        .iter()
        .map(|c| RectangleSet::build(c.test(), 1).min_area())
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    for idx in 0..soc.len() {
        let t = RectangleSet::build(soc.core(idx).test(), 1).min_area();
        if t >= median {
            let budgeted = soc.core(idx).clone().with_max_preemptions(budget);
            *soc.core_mut(idx) = budgeted;
        }
    }
}

fn core(name: &str, inputs: u32, outputs: u32, chains: &[(usize, u32)], patterns: u64) -> Core {
    let mut scan = Vec::new();
    for &(count, len) in chains {
        scan.extend(std::iter::repeat_n(len, count));
    }
    Core::new(
        name,
        CoreTest::new(inputs, outputs, 0, scan, patterns).expect("valid benchmark core"),
    )
}

/// The academic `d695` SOC (10 ISCAS cores).
///
/// Parameters reconstructed from the ITC'02 benchmark descriptions in the
/// literature; see the module docs for fidelity notes.
pub fn d695() -> Soc {
    let mut soc = Soc::new("d695");
    soc.add_core(core("c6288", 32, 32, &[], 12));
    soc.add_core(core("c7552", 207, 108, &[], 73));
    soc.add_core(core("s838", 34, 1, &[(1, 32)], 75));
    soc.add_core(core("s9234", 36, 39, &[(1, 54), (1, 53), (2, 52)], 105));
    soc.add_core(core("s38584", 38, 304, &[(18, 45), (14, 44)], 110));
    soc.add_core(core("s13207", 62, 152, &[(14, 40), (2, 39)], 236));
    soc.add_core(core("s15850", 77, 150, &[(6, 34), (10, 33)], 95));
    soc.add_core(core("s5378", 35, 49, &[(1, 46), (1, 45), (2, 44)], 97));
    soc.add_core(core("s35932", 35, 320, &[(32, 54)], 12));
    soc.add_core(core("s38417", 28, 106, &[(4, 52), (28, 51)], 68));
    soc
}

/// Scales pattern counts (except for `frozen` cores) so the SOC's total
/// minimal rectangle area matches `target_area` wire·cycles — the quantity
/// that fixes the paper's Table 1 lower-bound line.
fn calibrate(soc: &mut Soc, target_area: u128, frozen: &[usize]) {
    for _round in 0..4 {
        let areas: Vec<u128> = soc
            .cores()
            .iter()
            .map(|c| RectangleSet::build(c.test(), W_MAX).min_area())
            .collect();
        let total: u128 = areas.iter().sum();
        let frozen_area: u128 = frozen.iter().map(|&i| areas[i]).sum();
        let scalable = total - frozen_area;
        if scalable == 0 || target_area <= frozen_area {
            return;
        }
        let want = target_area - frozen_area;
        if want == scalable {
            return;
        }
        for idx in 0..soc.len() {
            if frozen.contains(&idx) {
                continue;
            }
            let c = soc.core(idx);
            let t = c.test();
            let patterns =
                ((u128::from(t.patterns()) * want + scalable / 2) / scalable).max(1) as u64;
            let rebuilt = CoreTest::new(
                t.inputs(),
                t.outputs(),
                t.bidirs(),
                t.scan_chains().to_vec(),
                patterns,
            )
            .expect("calibration preserves validity");
            *soc.core_mut(idx) = c.clone().with_test(rebuilt);
        }
    }
}

/// The Philips `p22810` SOC: 28 cores, one level of test hierarchy
/// (calibrated synthetic; total minimal area ≈ 6,743,568 wire·cycles,
/// matching `LB(16) = 421,473`).
pub fn p22810() -> Soc {
    let mut soc = Soc::new("p22810");
    // A mix of combinational glue, small scan cores, and a few large
    // scan-heavy blocks; patterns below are pre-calibration seeds.
    soc.add_core(core("c01", 173, 98, &[], 220));
    soc.add_core(core("c02", 48, 64, &[(8, 100)], 160));
    soc.add_core(core("c03", 64, 32, &[(4, 60)], 95));
    soc.add_core(core("c04", 26, 20, &[(10, 130)], 300));
    soc.add_core(core("c05", 33, 41, &[(16, 88)], 240));
    soc.add_core(core("c06", 64, 72, &[(12, 70), (4, 64)], 180));
    soc.add_core(core("c07", 10, 30, &[(2, 50)], 75));
    soc.add_core(core("c08", 18, 9, &[(6, 110)], 140));
    soc.add_core(core("c09", 40, 36, &[(20, 96)], 260));
    soc.add_core(core("c10", 22, 24, &[(3, 40)], 55));
    soc.add_core(core("c11", 95, 104, &[], 130));
    soc.add_core(core("c12", 30, 26, &[(24, 120)], 420));
    soc.add_core(core("c13", 12, 16, &[(1, 24)], 40));
    soc.add_core(core("c14", 55, 48, &[(9, 77)], 150));
    soc.add_core(core("c15", 28, 64, &[(14, 102)], 280));
    soc.add_core(core("c16", 38, 18, &[(5, 66)], 90));
    soc.add_core(core("c17", 20, 22, &[(18, 140)], 380));
    soc.add_core(core("c18", 16, 12, &[(2, 32)], 45));
    soc.add_core(core("c19", 74, 60, &[(11, 92)], 200));
    soc.add_core(core("c20", 42, 38, &[(7, 58)], 110));
    soc.add_core(core("c21", 24, 28, &[(16, 115)], 330));
    soc.add_core(core("c22", 60, 55, &[(4, 84)], 120));
    soc.add_core(core("c23", 14, 10, &[(1, 48)], 60));
    soc.add_core(core("c24", 36, 44, &[(13, 105)], 250));
    soc.add_core(core("c25", 50, 32, &[(6, 72)], 100));
    soc.add_core(core("c26", 19, 25, &[(22, 98)], 310));
    // Two child cores embedded in c26 (hierarchy -> implied concurrency).
    let parent = 25;
    let t27 = CoreTest::new(8, 8, 0, vec![36, 36], 70).expect("valid");
    soc.add_core(Core::builder("c27", t27).parent(parent).build());
    let t28 = CoreTest::new(12, 6, 0, vec![44, 40, 40], 85).expect("valid");
    soc.add_core(Core::builder("c28", t28).parent(parent).build());

    calibrate(&mut soc, 421_473 * 16, &[]);
    soc
}

/// The Philips `p34392` SOC: 19 cores with the paper's bottleneck Core 18
/// (highest Pareto-optimal width 10, minimum testing time ≈ 544,579
/// cycles), which pins the SOC testing time for `W ≥ 28`.
pub fn p34392() -> Soc {
    let mut soc = Soc::new("p34392");
    soc.add_core(core("c01", 130, 88, &[], 180));
    soc.add_core(core("c02", 40, 50, &[(6, 90)], 170));
    soc.add_core(core("c03", 28, 30, &[(12, 112)], 260));
    soc.add_core(core("c04", 56, 48, &[(8, 75)], 140));
    soc.add_core(core("c05", 22, 18, &[(4, 55)], 80));
    soc.add_core(core("c06", 34, 42, &[(15, 95)], 290));
    soc.add_core(core("c07", 70, 66, &[(2, 38)], 65));
    soc.add_core(core("c08", 18, 14, &[(10, 125)], 320));
    soc.add_core(core("c09", 44, 36, &[(7, 82)], 155));
    soc.add_core(core("c10", 26, 32, &[(18, 108)], 340));
    soc.add_core(core("c11", 88, 92, &[], 110));
    soc.add_core(core("c12", 30, 24, &[(5, 64)], 95));
    soc.add_core(core("c13", 16, 20, &[(20, 118)], 390));
    soc.add_core(core("c14", 52, 46, &[(9, 87)], 175));
    soc.add_core(core("c15", 24, 28, &[(3, 45)], 70));
    soc.add_core(core("c16", 38, 34, &[(14, 100)], 270));
    soc.add_core(core("c17", 20, 26, &[(11, 93)], 210));
    // Core 18: the bottleneck. Ten long scan chains and no functional
    // terminals cap its exploitable width at exactly 10; patterns chosen so
    // T(10) = 544,602 ≈ the paper's 544,579 cycles.
    soc.add_core(core("c18", 0, 0, &[(10, 1516)], 358));
    soc.add_core(core("c19", 48, 40, &[(6, 78)], 125));

    let bottleneck = 17;
    calibrate(&mut soc, 936_882 * 16, &[bottleneck]);
    soc
}

/// The Philips `p93791` SOC: 32 cores including the Figure 1 "Core 6"
/// (46 internal scan chains plus several hundred functional terminals, so
/// its staircase keeps dropping gently up to a Pareto-maximal width of 47).
pub fn p93791() -> Soc {
    let mut soc = Soc::new("p93791");
    soc.add_core(core("c01", 110, 90, &[(10, 140)], 380));
    soc.add_core(core("c02", 60, 45, &[(24, 130)], 420));
    soc.add_core(core("c03", 35, 38, &[(8, 85)], 190));
    soc.add_core(core("c04", 90, 72, &[], 240));
    soc.add_core(core("c05", 28, 34, &[(16, 118)], 350));
    // Figure 1's Core 6: 46 scan chains of near-equal length plus wide
    // functional I/O, giving a long, gently-dropping staircase.
    soc.add_core(core("c06", 417, 363, &[(30, 500), (16, 480)], 229));
    soc.add_core(core("c07", 44, 40, &[(12, 96)], 230));
    soc.add_core(core("c08", 20, 16, &[(4, 52)], 85));
    soc.add_core(core("c09", 66, 58, &[(18, 122)], 400));
    soc.add_core(core("c10", 32, 30, &[(6, 70)], 130));
    soc.add_core(core("c11", 24, 28, &[(28, 135)], 460));
    soc.add_core(core("c12", 78, 64, &[(3, 42)], 75));
    soc.add_core(core("c13", 18, 22, &[(14, 104)], 290));
    soc.add_core(core("c14", 50, 44, &[(9, 88)], 185));
    soc.add_core(core("c15", 30, 36, &[(22, 126)], 430));
    soc.add_core(core("c16", 84, 76, &[], 160));
    soc.add_core(core("c17", 26, 20, &[(5, 60)], 105));
    soc.add_core(core("c18", 40, 46, &[(17, 112)], 360));
    soc.add_core(core("c19", 14, 12, &[(2, 34)], 50));
    soc.add_core(core("c20", 58, 52, &[(11, 94)], 215));
    soc.add_core(core("c21", 22, 26, &[(26, 128)], 440));
    soc.add_core(core("c22", 72, 68, &[(7, 74)], 145));
    soc.add_core(core("c23", 16, 18, &[(13, 101)], 275));
    soc.add_core(core("c24", 46, 42, &[(19, 116)], 390));
    soc.add_core(core("c25", 34, 32, &[(4, 48)], 90));
    soc.add_core(core("c26", 62, 56, &[(15, 108)], 310));
    soc.add_core(core("c27", 20, 24, &[(10, 90)], 205));
    soc.add_core(core("c28", 54, 50, &[(21, 124)], 410));
    soc.add_core(core("c29", 28, 22, &[(6, 66)], 115));
    soc.add_core(core("c30", 42, 48, &[(16, 110)], 335));
    soc.add_core(core("c31", 24, 20, &[(8, 80)], 165));
    soc.add_core(core("c32", 68, 60, &[(12, 98)], 245));

    let fig1_core = 5;
    calibrate(&mut soc, 1_749_388 * 16, &[fig1_core]);
    soc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn min_area_sum(soc: &Soc) -> u128 {
        soc.cores()
            .iter()
            .map(|c| RectangleSet::build(c.test(), W_MAX).min_area())
            .sum()
    }

    #[test]
    fn all_benchmarks_validate() {
        for soc in all() {
            assert!(soc.validate().is_ok(), "{} invalid", soc.name());
        }
    }

    #[test]
    fn by_name_round_trips() {
        for name in NAMES {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn constructors_are_deterministic() {
        assert_eq!(p22810(), p22810());
        assert_eq!(p93791(), p93791());
    }

    #[test]
    fn d695_total_min_area_matches_paper_lower_bounds() {
        // Paper: LB(16) = 41,232 => area = 659,712 wire*cycles. Our
        // reconstruction should land within 1%.
        let area = min_area_sum(&d695());
        let target = 659_712u128;
        let err = area.abs_diff(target);
        assert!(
            err * 100 <= target,
            "d695 min-area {area} deviates more than 1% from {target}"
        );
    }

    #[test]
    fn philips_socs_calibrated_to_published_areas() {
        for (soc, lb16) in [
            (p22810(), 421_473u128),
            (p34392(), 936_882),
            (p93791(), 1_749_388),
        ] {
            let area = min_area_sum(&soc);
            let target = lb16 * 16;
            let err = area.abs_diff(target);
            assert!(
                err * 50 <= target,
                "{}: min-area {area} deviates more than 2% from {target}",
                soc.name()
            );
        }
    }

    #[test]
    fn p34392_core18_is_the_published_bottleneck() {
        let soc = p34392();
        let idx = soc.core_by_name("c18").unwrap();
        let rects = RectangleSet::build(soc.core(idx).test(), W_MAX);
        assert_eq!(rects.highest_pareto_width(), 10);
        let t_min = rects.min_time();
        // Paper: 544,579 cycles. Accept within 0.5%.
        assert!(
            t_min.abs_diff(544_579) * 200 <= 544_579,
            "core 18 min time {t_min} too far from 544579"
        );
    }

    #[test]
    fn p93791_core6_staircase_shape() {
        let soc = p93791();
        let rects = RectangleSet::build(soc.core(5).test(), W_MAX);
        // Gentle drop from 46 to 47 wires (paper: 115850 -> 114317, ~1.3%)
        // and nothing after 47.
        let hi = rects.highest_pareto_width();
        assert!((45..=49).contains(&hi), "highest pareto {hi}");
        let t46 = rects.time_at(46);
        let t47 = rects.time_at(47);
        assert!(t47 <= t46);
        assert!(t46 - t47 <= t46 / 20, "drop too steep: {t46} -> {t47}");
        assert_eq!(rects.time_at(hi), rects.time_at(W_MAX));
    }

    #[test]
    fn core_counts_match_paper() {
        assert_eq!(d695().len(), 10);
        assert_eq!(p22810().len(), 28);
        assert_eq!(p34392().len(), 19);
        assert_eq!(p93791().len(), 32);
    }

    #[test]
    fn p22810_has_hierarchy() {
        let soc = p22810();
        let eff = soc.effective_concurrency();
        assert!(eff.len() >= 2);
    }

    #[test]
    fn preemption_grant_hits_large_cores_only() {
        let mut soc = d695();
        grant_preemption_to_large_cores(&mut soc, 2);
        let granted = soc
            .cores()
            .iter()
            .filter(|c| c.max_preemptions() == 2)
            .count();
        assert!(granted >= soc.len() / 2);
        assert!(granted < soc.len());
        // The tiny c6288 must not be preemptable.
        let small = soc.core_by_name("c6288").unwrap();
        assert_eq!(soc.core(small).max_preemptions(), 0);
    }

    #[test]
    fn table1_widths_per_soc() {
        assert_eq!(table1_widths("d695"), [16, 32, 48, 64]);
        assert_eq!(table1_widths("p34392"), [16, 24, 28, 32]);
    }

    #[test]
    fn benchmarks_round_trip_through_itc02_format() {
        for soc in all() {
            let text = crate::itc02::to_string(&soc);
            let back = crate::itc02::parse(&text).unwrap();
            assert_eq!(soc, back, "{} round trip", soc.name());
        }
    }
}
