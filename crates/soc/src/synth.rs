//! Seeded synthetic SOC generation.
//!
//! Property tests, fuzz-style scheduler checks, and the scalability benches
//! need a supply of diverse-but-reproducible SOC instances. [`SynthConfig`]
//! describes the distribution; [`SynthConfig::generate`] draws a model from
//! a seeded [`rand::rngs::StdRng`], so the same `(config, seed)` pair always
//! yields the same SOC.
//!
//! # Example
//!
//! ```
//! use soctam_soc::synth::SynthConfig;
//!
//! let soc = SynthConfig::new(12).generate(42);
//! assert_eq!(soc.len(), 12);
//! assert!(soc.validate().is_ok());
//! // Reproducible:
//! assert_eq!(soc, SynthConfig::new(12).generate(42));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use soctam_wrapper::CoreTest;

use crate::{Core, Soc};

/// Distribution parameters for synthetic SOC generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of cores to generate.
    pub cores: usize,
    /// Inclusive range of scan chain counts for sequential cores.
    pub chains: (usize, usize),
    /// Inclusive range of individual scan chain lengths.
    pub chain_len: (u32, u32),
    /// Inclusive range of pattern counts.
    pub patterns: (u64, u64),
    /// Inclusive range of functional input/output counts.
    pub terminals: (u32, u32),
    /// Probability that a core is purely combinational (no scan).
    pub combinational_prob: f64,
    /// Probability that a core is nested under an earlier core.
    pub hierarchy_prob: f64,
    /// Probability of each possible precedence edge `(i, j)`, `i < j`
    /// (kept sparse; edges only point forward so the result is acyclic).
    pub precedence_prob: f64,
    /// Probability that a core shares one of [`SynthConfig::bist_engines`].
    pub bist_prob: f64,
    /// Number of distinct BIST engines to share among cores.
    pub bist_engines: usize,
    /// Preemption budget granted to each core with probability 1/2.
    pub preemption_budget: u32,
}

impl SynthConfig {
    /// A reasonable default distribution for `cores` cores: mid-size scan
    /// cores, sparse constraints, no hierarchy.
    pub fn new(cores: usize) -> Self {
        Self {
            cores,
            chains: (1, 16),
            chain_len: (8, 200),
            patterns: (10, 500),
            terminals: (2, 120),
            combinational_prob: 0.15,
            hierarchy_prob: 0.0,
            precedence_prob: 0.0,
            bist_prob: 0.0,
            bist_engines: 2,
            preemption_budget: 0,
        }
    }

    /// Enables sparse precedence edges and hierarchy, for constraint-heavy
    /// scheduler tests.
    pub fn with_constraints(mut self) -> Self {
        self.hierarchy_prob = 0.15;
        self.precedence_prob = 0.05;
        self.bist_prob = 0.2;
        self
    }

    /// Grants every core a preemption budget drawn as 0 or `budget`.
    pub fn with_preemption(mut self, budget: u32) -> Self {
        self.preemption_budget = budget;
        self
    }

    /// Draws an SOC from this distribution; deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or a range is empty (`lo > hi`).
    pub fn generate(&self, seed: u64) -> Soc {
        assert!(self.cores > 0, "need at least one core");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut soc = Soc::new(format!("synth{seed}"));

        for i in 0..self.cores {
            let inputs = rng.gen_range(self.terminals.0..=self.terminals.1);
            let outputs = rng.gen_range(self.terminals.0..=self.terminals.1);
            let combinational = rng.gen_bool(self.combinational_prob);
            let chains: Vec<u32> = if combinational {
                Vec::new()
            } else {
                let n = rng.gen_range(self.chains.0..=self.chains.1);
                (0..n)
                    .map(|_| rng.gen_range(self.chain_len.0..=self.chain_len.1))
                    .collect()
            };
            let patterns = rng.gen_range(self.patterns.0..=self.patterns.1);
            let test = CoreTest::new(inputs.max(1), outputs, 0, chains, patterns)
                .expect("generated cores are valid");
            let mut builder = Core::builder(format!("core{i}"), test);
            if i > 0 && rng.gen_bool(self.hierarchy_prob) {
                builder = builder.parent(rng.gen_range(0..i));
            }
            if rng.gen_bool(self.bist_prob) && self.bist_engines > 0 {
                builder = builder.bist_engine(rng.gen_range(0..self.bist_engines));
            }
            if self.preemption_budget > 0 && rng.gen_bool(0.5) {
                builder = builder.max_preemptions(self.preemption_budget);
            }
            soc.add_core(builder.build());
        }

        if self.precedence_prob > 0.0 {
            for i in 0..self.cores {
                for j in i + 1..self.cores {
                    if rng.gen_bool(self.precedence_prob) {
                        soc.add_precedence(i, j).expect("forward edge is valid");
                    }
                }
            }
        }

        debug_assert!(soc.validate().is_ok());
        soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::new(8).with_constraints();
        assert_eq!(cfg.generate(1), cfg.generate(1));
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn generated_socs_validate() {
        let cfg = SynthConfig::new(20).with_constraints().with_preemption(2);
        for seed in 0..20 {
            let soc = cfg.generate(seed);
            assert!(soc.validate().is_ok(), "seed {seed}");
            assert_eq!(soc.len(), 20);
        }
    }

    #[test]
    fn combinational_probability_respected_at_extremes() {
        let mut cfg = SynthConfig::new(30);
        cfg.combinational_prob = 1.0;
        let soc = cfg.generate(7);
        assert!(soc.cores().iter().all(|c| !c.test().is_sequential()));
        cfg.combinational_prob = 0.0;
        let soc = cfg.generate(7);
        assert!(soc.cores().iter().all(|c| c.test().is_sequential()));
    }

    #[test]
    fn precedence_edges_point_forward() {
        let mut cfg = SynthConfig::new(15);
        cfg.precedence_prob = 0.3;
        let soc = cfg.generate(3);
        for &(a, b) in soc.precedence() {
            assert!(a < b);
        }
    }

    #[test]
    fn round_trips_through_text_format() {
        let cfg = SynthConfig::new(10).with_constraints();
        let soc = cfg.generate(11);
        let text = crate::itc02::to_string(&soc);
        let back = crate::itc02::parse(&text).unwrap();
        assert_eq!(soc, back);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = SynthConfig::new(0).generate(0);
    }
}
