//! # soctam-soc
//!
//! The SOC substrate for the `soctam` framework: embedded-core descriptors,
//! the system-on-chip model with test hierarchy and scheduling constraints,
//! an ITC'02-style `.soc` text format (parser and writer), embedded
//! reconstructions of the four benchmark SOCs evaluated in the DAC 2002
//! paper (`d695`, `p22810`, `p34392`, `p93791`), and a seeded synthetic SOC
//! generator.
//!
//! # Example
//!
//! ```
//! use soctam_soc::{benchmarks, Soc};
//!
//! let soc: Soc = benchmarks::d695();
//! assert_eq!(soc.len(), 10);
//! assert!(soc.validate().is_ok());
//!
//! // Round-trip through the text format.
//! let text = soctam_soc::itc02::to_string(&soc);
//! let back = soctam_soc::itc02::parse(&text).unwrap();
//! assert_eq!(back.name(), "d695");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod core_desc;
mod error;
pub mod itc02;
mod model;
pub mod synth;

pub use core_desc::{Core, CoreBuilder};
pub use error::SocError;
pub use model::{ConstraintKind, Soc};

/// Index of a core within its [`Soc`], assigned in insertion order.
pub type CoreIdx = usize;
