use std::error::Error;
use std::fmt;

use soctam_wrapper::WrapperError;

/// Errors produced while building, validating, or parsing an SOC model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocError {
    /// A core referenced by index does not exist.
    UnknownCore {
        /// The out-of-range index.
        index: usize,
        /// Number of cores actually present.
        len: usize,
    },
    /// A core referenced by name does not exist (text format).
    UnknownCoreName {
        /// The unresolved name.
        name: String,
    },
    /// Two cores share a name; the text format requires unique names.
    DuplicateCoreName {
        /// The duplicated name.
        name: String,
    },
    /// A constraint relates a core to itself.
    SelfConstraint {
        /// The offending core index.
        index: usize,
    },
    /// The precedence relation contains a cycle, so no schedule can satisfy
    /// it.
    PrecedenceCycle,
    /// A core's parent chain loops back on itself.
    HierarchyCycle {
        /// A core on the cycle.
        index: usize,
    },
    /// An embedded core description is invalid.
    Wrapper(WrapperError),
    /// A line of the `.soc` text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::UnknownCore { index, len } => {
                write!(f, "core index {index} out of range ({len} cores)")
            }
            SocError::UnknownCoreName { name } => write!(f, "unknown core name `{name}`"),
            SocError::DuplicateCoreName { name } => write!(f, "duplicate core name `{name}`"),
            SocError::SelfConstraint { index } => {
                write!(f, "core {index} cannot be constrained against itself")
            }
            SocError::PrecedenceCycle => write!(f, "precedence constraints contain a cycle"),
            SocError::HierarchyCycle { index } => {
                write!(f, "core {index} is its own ancestor in the test hierarchy")
            }
            SocError::Wrapper(e) => write!(f, "invalid core test set: {e}"),
            SocError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Wrapper(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WrapperError> for SocError {
    fn from(e: WrapperError) -> Self {
        SocError::Wrapper(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SocError::UnknownCore { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        let e = SocError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn wrapper_error_is_source() {
        let e = SocError::from(WrapperError::ZeroWidth);
        assert!(e.source().is_some());
    }
}
