//! Round-trip properties of the two ITC'02-style text formats.
//!
//! * The compact dialect is lossless: `parse(to_string(soc)) == soc` for
//!   arbitrary synthetic SOCs (constraints, hierarchy, BIST, budgets and
//!   all).
//! * The classic keyword-per-line layout carries exactly the per-module
//!   test data; `parse_classic(to_classic_string(soc))` preserves every
//!   core's name and test description, checked on the shipped benchmark
//!   texts for all four paper SOCs.

use proptest::prelude::*;

use soctam_soc::synth::SynthConfig;
use soctam_soc::{benchmarks, itc02};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The dialect round-trips every generated model exactly, across the
    /// whole configuration space (constraints on/off, preemption budgets,
    /// hierarchy, BIST sharing).
    #[test]
    fn dialect_round_trips_randomized_socs(
        cores in 1usize..24,
        seed in 0u64..5000,
        constrained in 0u8..2,
        budget in 0u32..4,
    ) {
        let mut cfg = SynthConfig::new(cores).with_preemption(budget);
        if constrained == 1 {
            cfg = cfg.with_constraints();
        }
        let soc = cfg.generate(seed);
        let text = itc02::to_string(&soc);
        let back = itc02::parse(&text).expect("serialized SOC must parse");
        prop_assert_eq!(&soc, &back);
        // And the round trip is a fixed point: serializing again yields
        // the identical document.
        prop_assert_eq!(text, itc02::to_string(&back));
    }

    /// The classic layout round-trips the test data of random plain SOCs
    /// (no constraints — the classic format cannot carry them).
    #[test]
    fn classic_round_trips_plain_socs(cores in 1usize..20, seed in 0u64..5000) {
        let soc = SynthConfig::new(cores).generate(seed);
        let text = itc02::to_classic_string(&soc);
        let back = itc02::parse_classic(&text).expect("classic text must parse");
        prop_assert_eq!(back.name(), soc.name());
        prop_assert_eq!(back.len(), soc.len());
        for (a, b) in soc.cores().iter().zip(back.cores()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.test(), b.test());
        }
    }
}

/// `parse_classic` on the shipped benchmark texts: every paper SOC renders
/// to the classic layout and parses back with all core test data intact.
#[test]
fn classic_round_trips_shipped_benchmarks() {
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let text = itc02::to_classic_string(&soc);
        let back = itc02::parse_classic(&text)
            .unwrap_or_else(|e| panic!("{name}: classic text failed to parse: {e}"));
        assert_eq!(back.name(), soc.name(), "{name}: SOC name");
        assert_eq!(back.len(), soc.len(), "{name}: core count");
        for (i, (a, b)) in soc.cores().iter().zip(back.cores()).enumerate() {
            assert_eq!(a.name(), b.name(), "{name}: core {i} name");
            assert_eq!(a.test(), b.test(), "{name}: core {i} test data");
        }
    }
}

/// The classic rendering of a benchmark also re-enters the compact dialect
/// cleanly: classic -> Soc -> dialect -> Soc is stable.
#[test]
fn classic_benchmarks_reenter_dialect() {
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let via_classic = itc02::parse_classic(&itc02::to_classic_string(&soc)).unwrap();
        let via_dialect = itc02::parse(&itc02::to_string(&via_classic)).unwrap();
        assert_eq!(via_classic, via_dialect, "{name}");
    }
}
