//! # soctam-tam
//!
//! Concrete TAM wire assignment with fork-and-merge.
//!
//! The scheduler (`soctam-schedule`) only guarantees that the *sum* of TAM
//! widths in use never exceeds the SOC TAM width `W`. The paper's
//! architecture permits a core to receive a group of **non-contiguous**
//! wires (fork-and-merge of TAM wires, §3), which is exactly what makes
//! that budget sufficient. This crate materializes the promise: it maps
//! every schedule slice to a concrete set of wire ids, preferring wires the
//! core already used (stability across preemptions) and low wire ids
//! otherwise, then proves the assignment legal (no wire serves two
//! overlapping slices) and reports per-wire utilization and fork statistics.
//!
//! # Example
//!
//! ```
//! use soctam_schedule::{ScheduleBuilder, SchedulerConfig};
//! use soctam_soc::benchmarks;
//! use soctam_tam::WireAssignment;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = benchmarks::d695();
//! let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(16)).run()?;
//! let wires = WireAssignment::assign(&schedule)?;
//! wires.verify()?;
//! assert!(wires.stats().max_wire_busy <= schedule.makespan());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assign;
mod stats;

pub use assign::{SliceWires, WireAssignment, WireError};
pub use stats::{TamStats, WireStats};

/// Identifier of a physical TAM wire, `0..W`.
pub type WireId = u16;
