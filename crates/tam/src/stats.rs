//! Per-wire utilization and fork statistics.

use crate::{WireAssignment, WireId};

/// Usage summary of a single TAM wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// The wire id.
    pub wire: WireId,
    /// Cycles the wire spends carrying test data.
    pub busy: u64,
    /// Number of slices routed over the wire.
    pub slices: usize,
}

/// Aggregate statistics of a wire assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TamStats {
    /// Per-wire usage, indexed by wire id.
    pub wires: Vec<WireStats>,
    /// Busiest single wire's busy cycles.
    pub max_wire_busy: u64,
    /// Mean wire utilization over the makespan, in `[0, 1]`.
    pub mean_utilization: f64,
    /// Number of slices whose wires are non-contiguous (forked).
    pub forked_slices: usize,
    /// Total number of slices.
    pub total_slices: usize,
}

impl WireAssignment {
    /// Computes per-wire and aggregate usage statistics.
    pub fn stats(&self) -> TamStats {
        let w = usize::from(self.tam_width());
        let mut busy = vec![0u64; w];
        let mut slices = vec![0usize; w];
        let mut forked = 0usize;
        for a in self.assignments() {
            if a.contiguous_groups() > 1 {
                forked += 1;
            }
            for &wire in &a.wires {
                busy[usize::from(wire)] += a.slice.duration();
                slices[usize::from(wire)] += 1;
            }
        }
        let wires: Vec<WireStats> = (0..w)
            .map(|i| WireStats {
                wire: i as WireId,
                busy: busy[i],
                slices: slices[i],
            })
            .collect();
        let max_wire_busy = busy.iter().copied().max().unwrap_or(0);
        let mean_utilization = if self.makespan() == 0 || w == 0 {
            0.0
        } else {
            busy.iter().sum::<u64>() as f64 / (self.makespan() as f64 * w as f64)
        };
        TamStats {
            wires,
            max_wire_busy,
            mean_utilization,
            forked_slices: forked,
            total_slices: self.assignments().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::{Schedule, ScheduleBuilder, SchedulerConfig, Slice};
    use soctam_soc::benchmarks;

    #[test]
    fn stats_account_every_wire_cycle() {
        let s = Schedule::from_slices(
            "t",
            4,
            vec![
                Slice {
                    core: 0,
                    width: 2,
                    start: 0,
                    end: 10,
                },
                Slice {
                    core: 1,
                    width: 2,
                    start: 0,
                    end: 6,
                },
            ],
        );
        let wa = WireAssignment::assign(&s).unwrap();
        let stats = wa.stats();
        let total: u64 = stats.wires.iter().map(|w| w.busy).sum();
        assert_eq!(total, 2 * 10 + 2 * 6);
        assert_eq!(stats.max_wire_busy, 10);
        assert_eq!(stats.total_slices, 2);
        let expected = 32.0 / 40.0;
        assert!((stats.mean_utilization - expected).abs() < 1e-12);
    }

    #[test]
    fn utilization_matches_schedule_on_benchmarks() {
        let soc = benchmarks::d695();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(16))
            .run()
            .unwrap();
        let wa = WireAssignment::assign(&s).unwrap();
        let stats = wa.stats();
        assert!((stats.mean_utilization - s.utilization()).abs() < 1e-9);
        assert!(stats.max_wire_busy <= s.makespan());
    }
}
