//! Greedy wire allocation for schedule slices.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use soctam_schedule::{Schedule, Slice};
use soctam_soc::CoreIdx;

use crate::WireId;

/// Errors from wire assignment or verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The schedule demands more concurrent wires than the TAM has; such a
    /// schedule is invalid and should have been rejected upstream.
    Overcommitted {
        /// The instant at which demand exceeds supply.
        at_time: u64,
    },
    /// Verification found one wire serving two overlapping slices.
    WireClash {
        /// The clashing wire.
        wire: WireId,
    },
    /// Verification found a slice holding the wrong number of wires.
    WidthMismatch {
        /// The core whose slice is malformed.
        core: CoreIdx,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Overcommitted { at_time } => {
                write!(
                    f,
                    "schedule demands more wires than available at cycle {at_time}"
                )
            }
            WireError::WireClash { wire } => {
                write!(f, "wire {wire} assigned to overlapping slices")
            }
            WireError::WidthMismatch { core } => {
                write!(f, "slice of core {core} holds the wrong number of wires")
            }
        }
    }
}

impl Error for WireError {}

/// One schedule slice together with the physical wires carrying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceWires {
    /// The schedule slice.
    pub slice: Slice,
    /// Wire ids held for the slice's duration, ascending. May be
    /// non-contiguous — that is the fork-and-merge freedom.
    pub wires: Vec<WireId>,
}

impl SliceWires {
    /// Number of maximal runs of consecutive wire ids; anything above 1
    /// means the TAM forks around other cores' wires.
    pub fn contiguous_groups(&self) -> usize {
        if self.wires.is_empty() {
            return 0;
        }
        1 + self
            .wires
            .windows(2)
            .filter(|pair| pair[1] != pair[0] + 1)
            .count()
    }
}

/// A complete mapping from schedule slices to physical TAM wires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAssignment {
    tam_width: u16,
    makespan: u64,
    assignments: Vec<SliceWires>,
}

impl WireAssignment {
    /// Allocates wires for every slice of `schedule`.
    ///
    /// Slices are processed in start-time order. Each slice takes, in
    /// preference order: wires its core used before (so a preempted test
    /// resumes on the same wires when possible), then the lowest-numbered
    /// free wires. Because the scheduler never exceeds the width budget,
    /// this always succeeds for valid schedules.
    ///
    /// # Errors
    ///
    /// [`WireError::Overcommitted`] if the schedule itself demands more
    /// than `W` concurrent wires (i.e. the input is invalid).
    pub fn assign(schedule: &Schedule) -> Result<Self, WireError> {
        let w = usize::from(schedule.tam_width());
        // busy_until[wire] = end of the last slice on that wire.
        let mut busy_until = vec![0u64; w];
        let mut previous: HashMap<CoreIdx, Vec<WireId>> = HashMap::new();

        let mut slices: Vec<Slice> = schedule.slices().to_vec();
        slices.sort_by_key(|s| (s.start, s.core));

        let mut assignments = Vec::with_capacity(slices.len());
        for slice in slices {
            let need = usize::from(slice.width);
            let mut chosen: Vec<WireId> = Vec::with_capacity(need);

            // First choice: the core's previous wires, if still free.
            if let Some(prev) = previous.get(&slice.core) {
                for &wire in prev {
                    if chosen.len() == need {
                        break;
                    }
                    if busy_until[usize::from(wire)] <= slice.start {
                        chosen.push(wire);
                    }
                }
            }
            // Then: lowest-numbered free wires.
            for wire in 0..w as u16 {
                if chosen.len() == need {
                    break;
                }
                if busy_until[usize::from(wire)] <= slice.start && !chosen.contains(&wire) {
                    chosen.push(wire);
                }
            }
            if chosen.len() < need {
                return Err(WireError::Overcommitted {
                    at_time: slice.start,
                });
            }
            chosen.sort_unstable();
            for &wire in &chosen {
                busy_until[usize::from(wire)] = slice.end;
            }
            previous.insert(slice.core, chosen.clone());
            assignments.push(SliceWires {
                slice,
                wires: chosen,
            });
        }
        Ok(Self {
            tam_width: schedule.tam_width(),
            makespan: schedule.makespan(),
            assignments,
        })
    }

    /// The TAM width the assignment targets.
    pub fn tam_width(&self) -> u16 {
        self.tam_width
    }

    /// Schedule makespan carried over for utilization accounting.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// All per-slice wire assignments, in start-time order.
    pub fn assignments(&self) -> &[SliceWires] {
        &self.assignments
    }

    /// Independently verifies the assignment: each slice holds exactly its
    /// width in distinct wires, every wire id is in range, and no wire
    /// serves two overlapping slices.
    ///
    /// # Errors
    ///
    /// The first [`WireError`] found.
    pub fn verify(&self) -> Result<(), WireError> {
        for a in &self.assignments {
            if a.wires.len() != usize::from(a.slice.width) {
                return Err(WireError::WidthMismatch { core: a.slice.core });
            }
            for pair in a.wires.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(WireError::WidthMismatch { core: a.slice.core });
                }
            }
            if a.wires.iter().any(|&wire| wire >= self.tam_width) {
                return Err(WireError::WidthMismatch { core: a.slice.core });
            }
        }
        // Per-wire overlap check.
        let mut per_wire: HashMap<WireId, Vec<&SliceWires>> = HashMap::new();
        for a in &self.assignments {
            for &wire in &a.wires {
                per_wire.entry(wire).or_default().push(a);
            }
        }
        for (wire, slices) in per_wire {
            let mut intervals: Vec<(u64, u64)> = slices
                .iter()
                .map(|a| (a.slice.start, a.slice.end))
                .collect();
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(WireError::WireClash { wire });
                }
            }
        }
        Ok(())
    }

    /// Fraction of slices that kept every wire across a preemption
    /// (stability of the fork-and-merge wiring); 1.0 when there are no
    /// resumed slices.
    pub fn resume_stability(&self) -> f64 {
        let mut seen: HashMap<CoreIdx, &Vec<WireId>> = HashMap::new();
        let mut resumed = 0usize;
        let mut stable = 0usize;
        for a in &self.assignments {
            if let Some(prev) = seen.get(&a.slice.core) {
                resumed += 1;
                if *prev == &a.wires {
                    stable += 1;
                }
            }
            seen.insert(a.slice.core, &a.wires);
        }
        if resumed == 0 {
            1.0
        } else {
            stable as f64 / resumed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::{ScheduleBuilder, SchedulerConfig};
    use soctam_soc::{benchmarks, synth::SynthConfig};

    fn manual(width: u16, slices: Vec<Slice>) -> Schedule {
        Schedule::from_slices("t", width, slices)
    }

    fn sl(core: usize, width: u16, start: u64, end: u64) -> Slice {
        Slice {
            core,
            width,
            start,
            end,
        }
    }

    #[test]
    fn assigns_disjoint_wires_to_concurrent_slices() {
        let s = manual(8, vec![sl(0, 3, 0, 10), sl(1, 5, 0, 10)]);
        let wa = WireAssignment::assign(&s).unwrap();
        wa.verify().unwrap();
        let all: Vec<_> = wa
            .assignments()
            .iter()
            .flat_map(|a| a.wires.iter().copied())
            .collect();
        assert_eq!(all.len(), 8);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn reuses_wires_after_completion() {
        let s = manual(4, vec![sl(0, 4, 0, 10), sl(1, 4, 10, 20)]);
        let wa = WireAssignment::assign(&s).unwrap();
        wa.verify().unwrap();
        assert_eq!(wa.assignments()[0].wires, wa.assignments()[1].wires);
    }

    #[test]
    fn preempted_core_prefers_previous_wires() {
        let s = manual(
            8,
            vec![
                sl(0, 4, 0, 10),
                sl(1, 8, 10, 20),
                sl(0, 4, 20, 30), // resumes after core 1 releases everything
            ],
        );
        let wa = WireAssignment::assign(&s).unwrap();
        wa.verify().unwrap();
        let first = &wa.assignments()[0];
        let resumed = wa
            .assignments()
            .iter()
            .find(|a| a.slice.core == 0 && a.slice.start == 20)
            .unwrap();
        assert_eq!(first.wires, resumed.wires);
        assert!((wa.resume_stability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fork_and_merge_produces_noncontiguous_groups() {
        // Core 1 sits in the middle of the wire range; core 2 must fork
        // around it when core 0 releases the outer wires.
        let s = manual(
            6,
            vec![
                sl(0, 2, 0, 10),
                sl(1, 2, 0, 20),
                sl(2, 2, 0, 10),
                sl(3, 4, 10, 30),
            ],
        );
        let wa = WireAssignment::assign(&s).unwrap();
        wa.verify().unwrap();
        let d = wa.assignments().iter().find(|a| a.slice.core == 3).unwrap();
        assert!(
            d.contiguous_groups() >= 2,
            "expected a fork, got {:?}",
            d.wires
        );
    }

    #[test]
    fn overcommitted_schedule_rejected() {
        let s = manual(4, vec![sl(0, 3, 0, 10), sl(1, 3, 5, 15)]);
        assert_eq!(
            WireAssignment::assign(&s),
            Err(WireError::Overcommitted { at_time: 5 })
        );
    }

    #[test]
    fn benchmark_schedules_always_assignable() {
        for soc in benchmarks::all() {
            for w in [16u16, 32, 64] {
                let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
                    .run()
                    .unwrap();
                let wa = WireAssignment::assign(&s).unwrap();
                wa.verify().unwrap();
            }
        }
    }

    #[test]
    fn synthetic_schedules_always_assignable() {
        let cfg = SynthConfig::new(15).with_constraints().with_preemption(2);
        for seed in 0..10 {
            let soc = cfg.generate(seed);
            let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(20))
                .run()
                .unwrap();
            let wa = WireAssignment::assign(&s).unwrap();
            wa.verify().unwrap();
        }
    }

    #[test]
    fn contiguous_group_counting() {
        let sw = SliceWires {
            slice: sl(0, 5, 0, 1),
            wires: vec![0, 1, 3, 4, 7],
        };
        assert_eq!(sw.contiguous_groups(), 3);
        let empty = SliceWires {
            slice: sl(0, 0, 0, 1),
            wires: vec![],
        };
        assert_eq!(empty.contiguous_groups(), 0);
    }
}
