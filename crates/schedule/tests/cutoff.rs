//! The bound-gated sweep cutoff must be invisible in results: on every
//! ITC'02 benchmark, `schedule_best_with` (cutoff on) returns the exact
//! winner the ungated sweep would have picked, and the [`SweepStats`]
//! tallies account for every grid point.

use soctam_schedule::{schedule_best_with_stats, CompiledSoc, SchedulerConfig};
use soctam_soc::benchmarks;

/// Runs the paper's full `m x d` grid with and without the cutoff and
/// returns both outcomes.
#[allow(clippy::type_complexity)]
fn both_sweeps(
    name: &str,
    width: u16,
) -> (
    (
        soctam_schedule::Schedule,
        u32,
        u16,
        soctam_schedule::SweepStats,
    ),
    (
        soctam_schedule::Schedule,
        u32,
        u16,
        soctam_schedule::SweepStats,
    ),
) {
    let soc = benchmarks::by_name(name).expect("known benchmark");
    let base = SchedulerConfig::new(width);
    let ctx = CompiledSoc::compile(&soc, base.effective_w_max());
    let gated = schedule_best_with_stats(&ctx, &base, 1..=10, 0..=4, true).expect("gated sweep");
    let plain = schedule_best_with_stats(&ctx, &base, 1..=10, 0..=4, false).expect("plain sweep");
    (gated, plain)
}

#[test]
fn cutoff_returns_the_same_winner_on_every_benchmark() {
    for name in benchmarks::NAMES {
        for &width in &benchmarks::table1_widths(name) {
            let ((gs, gm, gd, gstats), (ps, pm, pd, pstats)) = both_sweeps(name, width);
            assert_eq!(
                (gs, gm, gd),
                (ps, pm, pd),
                "{name} W={width}: cutoff changed the sweep winner"
            );

            // The plain sweep runs the whole 10 x 5 grid.
            assert_eq!(pstats.runs_total, 50, "{name} W={width}");
            assert_eq!(pstats.runs_executed, 50, "{name} W={width}");
            assert_eq!(pstats.runs_cut, 0, "{name} W={width}");

            // The gated sweep accounts for every point: executed or cut
            // (nothing silently dropped), never more than the grid.
            assert_eq!(gstats.runs_total, 50, "{name} W={width}");
            assert_eq!(
                gstats.runs_executed + gstats.runs_cut,
                50,
                "{name} W={width}: executed + cut must cover the grid"
            );
            assert_eq!(gstats.runs_skipped, 0, "{name} W={width}");
        }
    }
}

#[test]
fn cutoff_fires_where_the_bound_is_met() {
    // p34392 saturates at W=32: with the extended percent tail the sweep
    // reaches the lower bound (Table 1: 544,602 cycles, core c18's own
    // minimum), so the optimal incumbent must prune the rest of the grid.
    let soc = benchmarks::p34392();
    let base = SchedulerConfig::new(32);
    let ctx = CompiledSoc::compile(&soc, base.effective_w_max());
    let percents = (1..=10).chain([12, 15, 18, 22, 26, 30, 35, 40, 45, 52, 60]);
    let (schedule, m, d, stats) =
        schedule_best_with_stats(&ctx, &base, percents.clone(), 0..=4, true).expect("gated sweep");
    assert_eq!(schedule.makespan(), ctx.lower_bound(32));
    assert!(
        stats.runs_cut > 0,
        "optimal incumbent should cut later grid points, stats: {stats:?}"
    );
    assert_eq!(stats.runs_executed + stats.runs_cut, stats.runs_total);

    // And pruning still does not change the winner.
    let (ps, pm, pd, _) =
        schedule_best_with_stats(&ctx, &base, percents, 0..=4, false).expect("plain sweep");
    assert_eq!((ps, pm, pd), (schedule, m, d));
}
