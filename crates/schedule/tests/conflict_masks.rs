//! Pins the word-level mask implementation of `ConstraintSet::conflicts`
//! (Figure 7) bit-identical to the naive per-index reference over random
//! precedence / concurrency / BIST / power topologies and random
//! incremental scheduler states.

use proptest::prelude::*;
use soctam_schedule::{BitSet, ConstraintSet};
use soctam_soc::{Core, Soc};
use soctam_wrapper::CoreTest;

/// Builds a random SOC: `n` cores with the given BIST/power attributes,
/// plus precedence and concurrency edges (indices folded into range).
fn build_soc(
    n: usize,
    prec: &[(usize, usize)],
    conc: &[(usize, usize)],
    bist: &[Option<usize>],
    power: &[u64],
) -> Soc {
    let mut soc = Soc::new("random");
    for i in 0..n {
        let test = CoreTest::new(
            (i as u32 % 7) + 1,
            (i as u32 % 5) + 1,
            0,
            vec![((i as u32 * 13) % 40) + 1],
            (i as u64 % 9) + 1,
        )
        .unwrap();
        let mut builder = Core::builder(format!("c{i}"), test);
        if let Some(Some(engine)) = bist.get(i) {
            builder = builder.bist_engine(*engine);
        }
        if let Some(&p) = power.get(i) {
            builder = builder.power(p);
        }
        soc.add_core(builder.build());
    }
    for &(a, b) in prec {
        let (a, b) = (a % n, b % n);
        if a != b {
            let _ = soc.add_precedence(a, b);
        }
    }
    for &(a, b) in conc {
        let (a, b) = (a % n, b % n);
        if a != b {
            let _ = soc.add_concurrency(a, b);
        }
    }
    soc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every unscheduled candidate of a random topology in a random
    /// incremental state, the mask-based `conflicts` answers exactly as
    /// the per-index `conflicts_reference`.
    #[test]
    fn mask_conflicts_match_reference(
        n in 2usize..80,
        prec in proptest::collection::vec((0usize..1000, 0usize..1000), 0..40),
        conc in proptest::collection::vec((0usize..1000, 0usize..1000), 0..40),
        bist in proptest::collection::vec(proptest::option::of(0usize..4), 0..80),
        power in proptest::collection::vec(1u64..200, 0..80),
        complete_bits in proptest::collection::vec(proptest::bool::ANY, 0..80),
        scheduled_bits in proptest::collection::vec(proptest::bool::ANY, 0..80),
        p_max in proptest::option::of(1u64..600),
    ) {
        let soc = build_soc(n, &prec, &conc, &bist, &power);
        let cs = ConstraintSet::compile(&soc);
        prop_assert_eq!(cs.len(), n);

        let at = |bits: &[bool], i: usize| bits.get(i).copied().unwrap_or(false);
        // A core is at most one of complete/scheduled, as in the packer.
        let complete: Vec<bool> = (0..n)
            .map(|i| at(&complete_bits, i) && !at(&scheduled_bits, i))
            .collect();
        let scheduled: Vec<bool> = (0..n).map(|i| at(&scheduled_bits, i)).collect();

        // Recompute the occupancy the scheduler maintains incrementally.
        let mut bist_load = vec![0u32; cs.num_bist_engines()];
        let mut scheduled_power = 0u64;
        for (i, &s) in scheduled.iter().enumerate() {
            if s {
                if let Some(e) = cs.bist_engine(i) {
                    bist_load[e] += 1;
                }
                scheduled_power += cs.power(i);
            }
        }

        let complete_set = BitSet::from_bools(&complete);
        let scheduled_set = BitSet::from_bools(&scheduled);
        for core in (0..n).filter(|&i| !scheduled[i]) {
            let masked = cs.conflicts(
                core,
                &complete_set,
                &scheduled_set,
                &bist_load,
                scheduled_power,
                p_max,
            );
            let reference = cs.conflicts_reference(
                core,
                &complete_set,
                &scheduled_set,
                &bist_load,
                scheduled_power,
                p_max,
            );
            prop_assert_eq!(
                masked, reference,
                "core {} diverged (complete {:?}, scheduled {:?})",
                core, complete, scheduled
            );
        }
    }
}
