//! Hot-path unit tests for `ScheduleBuilder` on the d695 benchmark:
//! utilization accounting and power-constraint invariants.

use soctam_schedule::validate::{validate, validate_power};
use soctam_schedule::{Schedule, ScheduleBuilder, SchedulerConfig};
use soctam_soc::benchmarks;
use soctam_soc::Soc;

/// Every distinct instant at which the set of running slices can change.
fn event_times(schedule: &Schedule) -> Vec<u64> {
    let mut times: Vec<u64> = schedule
        .slices()
        .iter()
        .flat_map(|s| [s.start, s.end])
        .collect();
    times.sort_unstable();
    times.dedup();
    times
}

#[test]
fn utilization_accounting_is_exact() {
    let soc = benchmarks::d695();
    for w in [8u16, 16, 24, 32, 48, 64] {
        let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
            .run()
            .expect("schedulable");
        validate(&soc, &schedule).expect("valid schedule");

        // busy + idle partition the W x makespan bin exactly.
        let bin = u128::from(w) * u128::from(schedule.makespan());
        assert_eq!(schedule.busy_area() + schedule.idle_area(), bin, "W={w}");

        // busy_area equals the sum of slice areas.
        let slice_area: u128 = schedule
            .slices()
            .iter()
            .map(|s| u128::from(s.width) * u128::from(s.duration()))
            .sum();
        assert_eq!(schedule.busy_area(), slice_area, "W={w}");

        // Utilization is busy/bin, in (0, 1].
        let util = schedule.utilization();
        assert!(util > 0.0 && util <= 1.0, "W={w}: {util}");
        assert!((util - schedule.busy_area() as f64 / bin as f64).abs() < 1e-12);
    }
}

#[test]
fn tam_width_never_oversubscribed_on_d695() {
    let soc = benchmarks::d695();
    for w in [8u16, 16, 32, 64] {
        let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
            .run()
            .expect("schedulable");
        for t in event_times(&schedule) {
            assert!(
                schedule.width_in_use_at(t) <= u32::from(w),
                "W={w}: {} wires at t={t}",
                schedule.width_in_use_at(t)
            );
        }
    }
}

/// Recomputes instantaneous power from the slices, independently of the
/// validator's bookkeeping.
fn peak_power(soc: &Soc, schedule: &Schedule) -> u64 {
    event_times(schedule)
        .iter()
        .map(|&t| {
            schedule
                .slices()
                .iter()
                .filter(|s| s.start <= t && t < s.end)
                .map(|s| soc.core(s.core).power())
                .sum()
        })
        .max()
        .unwrap_or(0)
}

#[test]
fn power_limit_is_honoured_on_d695() {
    let soc = benchmarks::d695();
    // d695's hungriest core draws 3811; that is the tightest feasible
    // ceiling (anything lower leaves that core unschedulable).
    let p_max = soc.max_core_power();
    for w in [16u16, 32, 64] {
        let constrained =
            ScheduleBuilder::new(&soc, SchedulerConfig::new(w).with_power_limit(p_max))
                .run()
                .expect("schedulable under power budget");
        validate(&soc, &constrained).expect("valid schedule");
        validate_power(&soc, &constrained, p_max).expect("within budget");
        assert!(peak_power(&soc, &constrained) <= p_max, "W={w}");
    }

    // An infeasible ceiling (below the hungriest core) must be rejected,
    // not silently violated.
    let starved =
        ScheduleBuilder::new(&soc, SchedulerConfig::new(32).with_power_limit(p_max - 1)).run();
    assert!(starved.is_err());
}

#[test]
fn tightest_feasible_budget_still_schedules() {
    let soc = benchmarks::d695();
    let p_max = soc.max_core_power();
    let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(24).with_power_limit(p_max))
        .run()
        .expect("schedulable at the tightest budget");
    validate_power(&soc, &schedule, p_max).expect("within budget");
    // With the budget pinned at the hungriest single core, that core must
    // run alone whenever it runs.
    let hungry: Vec<usize> = (0..soc.len())
        .filter(|&i| soc.core(i).power() == p_max)
        .collect();
    for t in event_times(&schedule) {
        let running: Vec<usize> = schedule
            .slices()
            .iter()
            .filter(|s| s.start <= t && t < s.end)
            .map(|s| s.core)
            .collect();
        if running.iter().any(|c| hungry.contains(c)) {
            assert_eq!(running.len(), 1, "t={t}: {running:?}");
        }
    }
}
