//! Property and stress tests for the `obs` histogram: exact power-of-two
//! bucket boundaries, merge-equals-concatenation, and lossless concurrent
//! recording over the lock stripes.

use proptest::prelude::*;
use soctam_schedule::obs::{bucket_index, bucket_le_label, Histogram, HistogramSnapshot};

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record_micros(s);
    }
    h.snapshot()
}

#[test]
fn bucket_boundaries_are_exact_at_powers_of_two() {
    // A value exactly on a bucket's upper bound lands *in* that bucket
    // (`le` is inclusive); one past it spills into the next.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 0);
    for exp in 1..=21u32 {
        let bound = 1u64 << exp;
        assert_eq!(bucket_index(bound), exp as usize, "2^{exp} µs on-bound");
        assert_eq!(
            bucket_index(bound + 1),
            (exp as usize + 1).min(22),
            "2^{exp}+1 µs past-bound"
        );
        assert_eq!(bucket_index(bound - 1), exp as usize - (exp == 1) as usize);
    }
    // Past the largest finite bound everything overflows into +Inf.
    assert_eq!(bucket_index((1 << 21) + 1), 22);
    assert_eq!(bucket_index(u64::MAX), 22);
    assert_eq!(bucket_le_label(0), "0.000001");
    assert_eq!(bucket_le_label(10), "0.001024");
    assert_eq!(bucket_le_label(21), "2.097152");
    assert_eq!(bucket_le_label(22), "+Inf");
}

#[test]
fn concurrent_recording_loses_nothing_across_stripes() {
    // 8 threads × 10 000 records hammer one histogram; the folded
    // snapshot must account for every record exactly, whichever stripes
    // the threads landed on.
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record_micros(t * PER_THREAD + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.sum_micros, n * (n - 1) / 2);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merging per-shard snapshots equals snapshotting the concatenated
    /// sample stream — the invariant the balancer roll-up leans on.
    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(0u64..4_000_000_000, 0..64),
        b in proptest::collection::vec(0u64..4_000_000_000, 0..64),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));

        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&concat));
    }

    /// Every recorded value lands in exactly one bucket, and the bucket
    /// chosen is the smallest inclusive upper bound.
    #[test]
    fn each_sample_lands_in_its_smallest_covering_bucket(micros in 0u64..u64::MAX) {
        let snap = snapshot_of(&[micros]);
        prop_assert_eq!(snap.count, 1);
        prop_assert_eq!(snap.sum_micros, micros);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), 1);

        let i = bucket_index(micros);
        prop_assert_eq!(snap.buckets[i], 1);
        if i <= 21 {
            prop_assert!(micros <= 1u64 << i, "value inside its bound");
            if i > 0 {
                prop_assert!(micros > 1u64 << (i - 1), "bound is the smallest");
            }
        } else {
            prop_assert!(micros > 1u64 << 21, "+Inf only past the largest bound");
        }
    }
}
