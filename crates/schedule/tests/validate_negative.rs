//! Negative paths of the independent validator: every malformed schedule
//! must come back as a specific [`ScheduleError`], never a panic, and the
//! context-backed [`validate_with`] must report the identical error.

use soctam_schedule::validate::{validate, validate_power, validate_with};
use soctam_schedule::{CompiledSoc, Schedule, ScheduleError, Slice};
use soctam_soc::{Core, Soc};
use soctam_wrapper::{CoreTest, RectangleSet};

fn soc_with_cores(n: usize) -> Soc {
    let mut soc = Soc::new("neg");
    for i in 0..n {
        soc.add_core(Core::new(
            format!("c{i}"),
            CoreTest::new(4, 4, 0, vec![16], 10).unwrap(),
        ));
    }
    soc
}

fn time_at(soc: &Soc, idx: usize, w: u16) -> u64 {
    RectangleSet::build(soc.core(idx).test(), w).time_at(w)
}

/// Asserts that both validators reject the schedule with the same
/// `ScheduleError::Invalid` whose message contains `needle`.
fn assert_invalid(soc: &Soc, schedule: &Schedule, needle: &str) {
    let err = validate(soc, schedule).expect_err("validate must reject");
    assert!(
        matches!(err, ScheduleError::Invalid { .. }),
        "expected Invalid, got {err:?}"
    );
    assert!(
        err.to_string().contains(needle),
        "error `{err}` does not mention `{needle}`"
    );
    let ctx = CompiledSoc::compile(soc, 64);
    let err_ctx = validate_with(&ctx, schedule).expect_err("validate_with must reject");
    assert_eq!(err, err_ctx, "context-backed validator diverged");
}

#[test]
fn empty_schedule_is_invalid_not_panic() {
    let soc = soc_with_cores(1);
    let s = Schedule::from_slices("neg", 8, vec![]);
    assert_invalid(&soc, &s, "never tested");
}

#[test]
fn overlapping_rectangles_are_invalid() {
    let soc = soc_with_cores(1);
    let t = time_at(&soc, 0, 4);
    // Two slices of the same core overlapping in time.
    let s = Schedule::from_slices(
        "neg",
        8,
        vec![
            Slice {
                core: 0,
                width: 4,
                start: 0,
                end: t,
            },
            Slice {
                core: 0,
                width: 4,
                start: t - 1,
                end: t + 1,
            },
        ],
    );
    assert_invalid(&soc, &s, "overlaps itself");
}

#[test]
fn tam_width_overflow_is_invalid() {
    let soc = soc_with_cores(2);
    let t = time_at(&soc, 0, 6);
    // 6 + 6 wires concurrently on an 8-wire TAM.
    let s = Schedule::from_slices(
        "neg",
        8,
        vec![
            Slice {
                core: 0,
                width: 6,
                start: 0,
                end: t,
            },
            Slice {
                core: 1,
                width: 6,
                start: 0,
                end: t,
            },
        ],
    );
    assert_invalid(&soc, &s, "budget 8");
}

#[test]
fn per_core_width_above_tam_is_invalid() {
    let soc = soc_with_cores(1);
    let t = time_at(&soc, 0, 16);
    let s = Schedule::from_slices(
        "neg",
        8,
        vec![Slice {
            core: 0,
            width: 16,
            start: 0,
            end: t,
        }],
    );
    assert_invalid(&soc, &s, "width 16");
}

#[test]
fn unknown_core_is_invalid_not_panic() {
    let soc = soc_with_cores(1);
    let t = time_at(&soc, 0, 4);
    let mut slices = vec![Slice {
        core: 0,
        width: 4,
        start: 0,
        end: t,
    }];
    slices.push(Slice {
        core: 5, // SOC has one core
        width: 2,
        start: 0,
        end: 10,
    });
    let s = Schedule::from_slices("neg", 8, slices);
    assert_invalid(&soc, &s, "unknown core 5");
}

#[test]
fn power_validator_rejects_unknown_core_instead_of_panicking() {
    let soc = soc_with_cores(1);
    let s = Schedule::from_slices(
        "neg",
        8,
        vec![Slice {
            core: 9,
            width: 2,
            start: 0,
            end: 10,
        }],
    );
    let err = validate_power(&soc, &s, u64::MAX).expect_err("must reject");
    assert!(matches!(err, ScheduleError::Invalid { .. }));
    assert!(err.to_string().contains("unknown core 9"));
}

#[test]
fn mid_test_width_change_is_invalid() {
    let mut soc = soc_with_cores(1);
    *soc.core_mut(0) = soc.core(0).clone().with_max_preemptions(1);
    let t = time_at(&soc, 0, 4);
    let s = Schedule::from_slices(
        "neg",
        8,
        vec![
            Slice {
                core: 0,
                width: 4,
                start: 0,
                end: t / 2,
            },
            Slice {
                core: 0,
                width: 6,
                start: t / 2 + 1,
                end: t,
            },
        ],
    );
    assert_invalid(&soc, &s, "changes width");
}

#[test]
fn context_validator_accepts_what_validate_accepts() {
    let soc = soc_with_cores(2);
    let t = time_at(&soc, 0, 4);
    let s = Schedule::from_slices(
        "neg",
        8,
        vec![
            Slice {
                core: 0,
                width: 4,
                start: 0,
                end: t,
            },
            Slice {
                core: 1,
                width: 4,
                start: 0,
                end: t,
            },
        ],
    );
    validate(&soc, &s).expect("valid schedule");
    let ctx = CompiledSoc::compile(&soc, 64);
    validate_with(&ctx, &s).expect("context-backed validator agrees");
}

#[test]
fn context_validator_handles_widths_beyond_its_cap() {
    // A schedule whose slice width exceeds the context's compiled cap must
    // still validate correctly (the validator falls back to a fresh
    // rectangle build for that core).
    let soc = soc_with_cores(1);
    let t = time_at(&soc, 0, 12);
    let s = Schedule::from_slices(
        "neg",
        16,
        vec![Slice {
            core: 0,
            width: 12,
            start: 0,
            end: t,
        }],
    );
    validate(&soc, &s).expect("valid schedule");
    let narrow_ctx = CompiledSoc::compile(&soc, 8);
    assert_eq!(
        validate_with(&narrow_ctx, &s),
        validate(&soc, &s),
        "narrow context must agree with the rebuild path"
    );
}
