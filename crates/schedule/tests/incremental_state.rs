//! Property tests for the packer's incremental constraint state.
//!
//! The packer maintains `complete`/`scheduled` bitsets, a BIST-engine
//! occupancy table, and a scheduled-core count incrementally on every
//! assign/retire; in debug builds `Packer::debug_check_incremental_state`
//! recomputes all of them from the per-core states at every packing step
//! and asserts equality. These proptests drive randomized SOCs — random
//! cores, precedence, concurrency, BIST sharing, power ceilings, and
//! preemption budgets — through the scheduler so those assertions exercise
//! the full state machine. They run under `cargo test` (debug assertions
//! on); a release-mode run would still check the outcome equivalences
//! below, just not the per-step state equality.

use proptest::prelude::*;
use soctam_schedule::{validate, RectangleMenus, ScheduleBuilder, ScheduleError, SchedulerConfig};
use soctam_soc::{Core, Soc};
use soctam_wrapper::CoreTest;

#[derive(Debug, Clone)]
struct CoreSpec {
    inputs: u32,
    outputs: u32,
    chains: Vec<u32>,
    patterns: u64,
    bist: Option<usize>,
    max_preempts: u32,
}

fn core_spec() -> impl Strategy<Value = CoreSpec> {
    (
        1u32..40,
        1u32..40,
        proptest::collection::vec(1u32..60, 0..6),
        1u64..120,
        proptest::option::of(0usize..3),
        0u32..3,
    )
        .prop_map(
            |(inputs, outputs, chains, patterns, bist, max_preempts)| CoreSpec {
                inputs,
                outputs,
                chains,
                patterns,
                bist,
                max_preempts,
            },
        )
}

/// A randomized SOC: 2–7 cores plus index pairs reused (modulo the core
/// count) for precedence and concurrency edges.
fn soc_strategy() -> impl Strategy<Value = Soc> {
    (
        proptest::collection::vec(core_spec(), 2..7),
        proptest::collection::vec((0usize..7, 0usize..7), 0..4),
        proptest::collection::vec((0usize..7, 0usize..7), 0..4),
    )
        .prop_map(|(specs, prec, conc)| {
            let mut soc = Soc::new("prop");
            let n = specs.len();
            for (i, s) in specs.into_iter().enumerate() {
                let test =
                    CoreTest::new(s.inputs, s.outputs, 0, s.chains, s.patterns).expect("valid");
                let mut b = Core::builder(format!("c{i}"), test).max_preemptions(s.max_preempts);
                if let Some(e) = s.bist {
                    b = b.bist_engine(e);
                }
                soc.add_core(b.build());
            }
            // Forward-only precedence edges keep the graph acyclic.
            for (a, b) in prec {
                let (a, b) = (a % n, b % n);
                if a < b {
                    let _ = soc.add_precedence(a, b);
                }
            }
            for (a, b) in conc {
                let (a, b) = (a % n, b % n);
                if a != b {
                    let _ = soc.add_concurrency(a, b);
                }
            }
            soc
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packing step of every randomized run keeps the incremental
    /// bitsets equal to the from-scratch recomputation (debug asserts
    /// inside the packer), and successful schedules validate.
    #[test]
    fn incremental_state_matches_recomputation(
        soc in soc_strategy(),
        tam_width in 1u16..48,
        percent in 1u32..30,
        bump in 0u16..4,
        power_limited in proptest::bool::ANY,
    ) {
        let mut cfg = SchedulerConfig::new(tam_width)
            .with_percent(percent)
            .with_bump(bump);
        if power_limited {
            // A ceiling that admits every core alone but forces real
            // contention between them.
            let max = (0..soc.len()).map(|i| soc.core(i).power()).max().unwrap();
            cfg = cfg.with_power_limit(max.saturating_mul(2));
        }
        match ScheduleBuilder::new(&soc, cfg).run() {
            Ok(s) => validate::validate(&soc, &s).expect("schedule validates"),
            Err(ScheduleError::Stuck { .. }) => {} // legal under tight power
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Shared prebuilt menus produce bit-identical outcomes (schedule or
    /// error) to the build-on-the-fly path on randomized SOCs.
    #[test]
    fn shared_menus_equal_fresh_build(
        soc in soc_strategy(),
        tam_width in 1u16..48,
        percent in 1u32..30,
    ) {
        let cfg = SchedulerConfig::new(tam_width).with_percent(percent);
        let menus = RectangleMenus::for_config(&soc, &cfg);
        let shared = ScheduleBuilder::new(&soc, cfg.clone()).with_menus(&menus).run();
        let fresh = ScheduleBuilder::new(&soc, cfg).run();
        prop_assert_eq!(shared, fresh);
    }
}
