//! Lower bounds on SOC testing time.
//!
//! The paper's Table 1 reports the bound
//!
//! ```text
//! LB(W) = max(  max_i T_i(min(W, W_max)),  ⌈ Σ_i A_i / W ⌉  )
//! ```
//!
//! where `A_i` is core *i*'s minimal rectangle area (the smallest
//! width·time product over its wrapper designs): no schedule can finish
//! before the slowest single core, nor before the total work fits through
//! `W` wires.

use soctam_soc::Soc;
use soctam_wrapper::{Cycles, RectangleSet, TamWidth};

use crate::menus::RectangleMenus;

/// The shared bound kernel: menus built at the per-core cap plus the
/// precomputed `Σ_i min-area(i)`. Both the free functions below and
/// [`CompiledSoc::lower_bound`](crate::CompiledSoc::lower_bound) evaluate
/// exactly this, so context reuse is bit-identical by construction.
pub(crate) fn lower_bound_from_menus(
    menus: &RectangleMenus,
    total_area: u128,
    w: TamWidth,
) -> Cycles {
    assert!(w > 0, "lower bound needs at least one wire");
    let eff = w.min(menus.w_max());
    let max_core_time: Cycles = menus
        .menus()
        .iter()
        .map(|r| r.time_at(eff))
        .max()
        .unwrap_or(0);
    let area_bound = total_area.div_ceil(u128::from(w)) as Cycles;
    max_core_time.max(area_bound)
}

/// Computes the testing-time lower bound for `soc` on `w` TAM wires, with
/// per-core widths capped at `w_max` (the paper uses 64).
///
/// Builds the rectangle menus on each call; width sweeps should compile a
/// [`CompiledSoc`](crate::CompiledSoc) once and use
/// [`CompiledSoc::lower_bound`](crate::CompiledSoc::lower_bound) instead.
///
/// # Panics
///
/// Panics if `w == 0`.
///
/// # Example
///
/// ```
/// use soctam_schedule::bounds::lower_bound;
/// use soctam_soc::benchmarks;
///
/// let soc = benchmarks::d695();
/// let lb16 = lower_bound(&soc, 16, 64);
/// let lb64 = lower_bound(&soc, 64, 64);
/// assert!(lb64 <= lb16);
/// ```
pub fn lower_bound(soc: &Soc, w: TamWidth, w_max: TamWidth) -> Cycles {
    assert!(w > 0, "lower bound needs at least one wire");
    let menus = RectangleMenus::build(soc, w_max.max(1));
    let total_area: u128 = menus.menus().iter().map(RectangleSet::min_area).sum();
    lower_bound_from_menus(&menus, total_area, w)
}

/// Lower bounds for several widths at once (one rectangle build per core).
pub fn lower_bounds(soc: &Soc, widths: &[TamWidth], w_max: TamWidth) -> Vec<Cycles> {
    let menus = RectangleMenus::build(soc, w_max.max(1));
    let total_area: u128 = menus.menus().iter().map(RectangleSet::min_area).sum();
    widths
        .iter()
        .map(|&w| lower_bound_from_menus(&menus, total_area, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScheduleBuilder, SchedulerConfig};
    use soctam_soc::{benchmarks, synth::SynthConfig};

    #[test]
    fn bound_is_monotone_in_width() {
        let soc = benchmarks::d695();
        let bounds = lower_bounds(&soc, &[8, 16, 24, 32, 48, 64], 64);
        for pair in bounds.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
    }

    #[test]
    fn batch_matches_single() {
        let soc = benchmarks::d695();
        let batch = lower_bounds(&soc, &[16, 32], 64);
        assert_eq!(batch[0], lower_bound(&soc, 16, 64));
        assert_eq!(batch[1], lower_bound(&soc, 32, 64));
    }

    #[test]
    fn d695_bounds_near_paper_values() {
        // Paper Table 1: 41232 / 20616 / 13744 / 10308 for W = 16/32/48/64.
        let soc = benchmarks::d695();
        let got = lower_bounds(&soc, &[16, 32, 48, 64], 64);
        for (g, want) in got.iter().zip([41_232u64, 20_616, 13_744, 10_308]) {
            let diff = g.abs_diff(want);
            assert!(
                diff * 100 <= want,
                "bound {g} deviates more than 1% from paper {want}"
            );
        }
    }

    #[test]
    fn schedules_never_beat_the_bound() {
        let soc = benchmarks::d695();
        for w in [13, 16, 29, 32, 64] {
            let lb = lower_bound(&soc, w, 64);
            let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
                .run()
                .unwrap();
            assert!(
                s.makespan() >= lb,
                "W={w}: makespan {} below bound {lb}",
                s.makespan()
            );
        }
    }

    #[test]
    fn synthetic_socs_respect_bound() {
        let cfg = SynthConfig::new(12);
        for seed in 0..8 {
            let soc = cfg.generate(seed);
            let lb = lower_bound(&soc, 24, 64);
            let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(24))
                .run()
                .unwrap();
            assert!(s.makespan() >= lb, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one wire")]
    fn zero_width_panics() {
        let _ = lower_bound(&benchmarks::d695(), 0, 64);
    }
}
