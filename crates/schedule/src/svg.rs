//! SVG rendering of schedules — a publication-quality version of the
//! paper's Figure 2.

use std::fmt::Write as _;

use soctam_soc::CoreIdx;

use crate::Schedule;

/// Options for SVG rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    /// Total image width in pixels.
    pub width_px: u32,
    /// Pixel height of one TAM wire row.
    pub wire_px: u32,
    /// Left margin reserved for labels.
    pub margin_px: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width_px: 900,
            wire_px: 10,
            margin_px: 90,
        }
    }
}

/// Distinct, printable fill colors cycled per core.
const PALETTE: [&str; 12] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac", "#1170aa", "#fc7d0b",
];

impl Schedule {
    /// Renders the schedule as a standalone SVG document.
    ///
    /// Each slice becomes a rectangle: x spans its time interval, height
    /// its TAM width (stacked by a simple per-instant wire packing that
    /// matches the `soctam-tam` greedy assignment visually, though exact
    /// wire rows are cosmetic here). Labels use `names`.
    pub fn to_svg(&self, names: &dyn Fn(CoreIdx) -> String, opts: SvgOptions) -> String {
        let makespan = self.makespan().max(1);
        let rows = u32::from(self.tam_width());
        let plot_w = opts.width_px.saturating_sub(opts.margin_px).max(100);
        let height = rows * opts.wire_px + 40;
        let scale = f64::from(plot_w) / makespan as f64;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" font-family="monospace" font-size="10">"#,
            opts.width_px, height
        );
        let _ = writeln!(
            out,
            r##"<rect x="{}" y="20" width="{plot_w}" height="{}" fill="#f5f5f5" stroke="#333"/>"##,
            opts.margin_px,
            rows * opts.wire_px
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="14">{} — W={} wires, makespan {} cycles, utilization {:.1}%</text>"#,
            opts.margin_px,
            xml_escape(self.soc_name()),
            self.tam_width(),
            self.makespan(),
            self.utilization() * 100.0
        );

        // Greedy visual row allocation (first-fit per wire row, like the
        // concrete wire assigner).
        let mut row_free_at = vec![0u64; rows as usize];
        for (i, slice) in self.slices().iter().enumerate() {
            let need = usize::from(slice.width);
            let mut taken = Vec::with_capacity(need);
            for (row, free_at) in row_free_at.iter_mut().enumerate() {
                if taken.len() == need {
                    break;
                }
                if *free_at <= slice.start {
                    taken.push(row);
                    *free_at = slice.end;
                }
            }
            let color = PALETTE[slice.core % PALETTE.len()];
            let x = opts.margin_px as f64 + slice.start as f64 * scale;
            let w = (slice.duration() as f64 * scale).max(1.0);
            // Taken rows may be non-contiguous (fork-and-merge); draw one
            // rect per contiguous run.
            let mut run_start = None;
            let mut prev: Option<usize> = None;
            let flush = |a: usize, b: usize, out: &mut String| {
                let y = 20 + a as u32 * opts.wire_px;
                let h = ((b - a + 1) as u32) * opts.wire_px;
                let _ = writeln!(
                    out,
                    r##"<rect x="{x:.1}" y="{y}" width="{w:.1}" height="{h}" fill="{color}" stroke="#222" stroke-width="0.5"><title>{} [{}..{}) w={}</title></rect>"##,
                    xml_escape(&names(slice.core)),
                    slice.start,
                    slice.end,
                    slice.width
                );
            };
            for &row in &taken {
                match (run_start, prev) {
                    (None, _) => run_start = Some(row),
                    (Some(_), Some(p)) if row != p + 1 => {
                        flush(run_start.unwrap(), p, &mut out);
                        run_start = Some(row);
                    }
                    _ => {}
                }
                prev = Some(row);
            }
            if let (Some(a), Some(p)) = (run_start, prev) {
                flush(a, p, &mut out);
            }
            // Label the first slice of each core.
            if self.slices().iter().position(|s| s.core == slice.core) == Some(i) {
                if let Some(&row) = taken.first() {
                    let y = 20 + row as u32 * opts.wire_px + opts.wire_px.min(9);
                    let _ = writeln!(
                        out,
                        r##"<text x="{:.1}" y="{y}" fill="#fff">{}</text>"##,
                        x + 2.0,
                        xml_escape(&names(slice.core))
                    );
                }
            }
        }
        let _ = writeln!(out, "</svg>");
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScheduleBuilder, SchedulerConfig};
    use soctam_soc::benchmarks;

    #[test]
    fn svg_is_well_formed_and_complete() {
        let soc = benchmarks::d695();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(16))
            .run()
            .unwrap();
        let svg = s.to_svg(&|i| soc.core(i).name().to_string(), SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One <title> per drawn rect group >= one per slice.
        let titles = svg.matches("<title>").count();
        assert!(titles >= s.slices().len());
        // Every core's name appears.
        for core in soc.cores() {
            assert!(svg.contains(core.name()), "{} missing", core.name());
        }
    }

    #[test]
    fn escapes_markup_in_names() {
        let soc = benchmarks::d695();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(8))
            .run()
            .unwrap();
        let svg = s.to_svg(&|_| "<evil&core>".to_owned(), SvgOptions::default());
        assert!(!svg.contains("<evil"));
        assert!(svg.contains("&lt;evil&amp;core&gt;"));
    }

    #[test]
    fn empty_schedule_renders() {
        let s = Schedule::from_slices("empty", 4, vec![]);
        let svg = s.to_svg(&|i| format!("c{i}"), SvgOptions::default());
        assert!(svg.contains("</svg>"));
    }
}
