//! A compact fixed-capacity bitset for the scheduler's incremental
//! constraint state.
//!
//! The packer's inner loops ask "is core `i` complete/scheduled?" for every
//! candidate at every step. Materializing `Vec<bool>` snapshots per query
//! made the candidate scan O(n²) with two heap allocations per call; the
//! scheduler instead maintains these [`BitSet`]s incrementally on
//! assign/retire and the conflict check reads them allocation-free.

/// A fixed-capacity set of core indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the index universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a set from a boolean slice (`bits[i]` ⇒ `i` is a member).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = Self::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.insert(i);
            }
        }
        s
    }

    /// Size of the index universe (not the member count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} outside 0..{}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Adds `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "index {i} outside 0..{}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "index {i} outside 0..{}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes every member, keeping the index universe (and the backing
    /// allocation) intact.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The backing `u64` words, least-significant index first. Bits at or
    /// above `len` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether the two sets share any member — a word-AND any-set scan,
    /// never a per-index walk.
    ///
    /// # Panics
    ///
    /// Panics if the index universes differ.
    #[inline]
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether every member of `other` is also a member of `self`
    /// (`other ⊆ self`), as a word-level scan.
    ///
    /// # Panics
    ///
    /// Panics if the index universes differ.
    #[inline]
    pub fn contains_all(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(s, o)| o & !s == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count(), 0);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert!(s.contains(63) && s.contains(65));
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn from_bools_matches_slice() {
        let bits = [true, false, true, true, false];
        let s = BitSet::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(s.contains(i), b);
        }
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn empty_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_panics() {
        let s = BitSet::new(8);
        let _ = s.contains(8);
    }

    #[test]
    fn clear_empties_without_shrinking() {
        let mut s = BitSet::from_bools(&[true; 70]);
        assert_eq!(s.count(), 70);
        s.clear();
        assert_eq!(s.len(), 70);
        assert_eq!(s.count(), 0);
        s.insert(69);
        assert!(s.contains(69));
    }

    #[test]
    fn intersects_matches_pairwise_scan() {
        let a = BitSet::from_bools(&[true, false, true, false, true]);
        let b = BitSet::from_bools(&[false, true, false, true, false]);
        assert!(!a.intersects(&b));
        let c = BitSet::from_bools(&[false, false, true, false, false]);
        assert!(a.intersects(&c));
        assert!(c.intersects(&a));
        // Across a word boundary.
        let mut x = BitSet::new(130);
        let mut y = BitSet::new(130);
        x.insert(129);
        assert!(!x.intersects(&y));
        y.insert(129);
        assert!(x.intersects(&y));
    }

    #[test]
    fn contains_all_is_subset() {
        let big = BitSet::from_bools(&[true, true, false, true]);
        let sub = BitSet::from_bools(&[true, false, false, true]);
        assert!(big.contains_all(&sub));
        assert!(!sub.contains_all(&big));
        let empty = BitSet::new(4);
        assert!(big.contains_all(&empty));
        assert!(empty.contains_all(&empty));
        // Superset relation across a word boundary.
        let mut lo = BitSet::new(70);
        let mut hi = BitSet::new(70);
        hi.insert(65);
        assert!(!lo.contains_all(&hi));
        lo.insert(65);
        assert!(lo.contains_all(&hi));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn intersects_rejects_mismatched_universes() {
        let _ = BitSet::new(4).intersects(&BitSet::new(5));
    }

    #[test]
    fn words_expose_backing_storage() {
        let mut s = BitSet::new(70);
        s.insert(0);
        s.insert(64);
        assert_eq!(s.words(), &[1u64, 1u64]);
    }
}
