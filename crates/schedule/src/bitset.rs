//! A compact fixed-capacity bitset for the scheduler's incremental
//! constraint state.
//!
//! The packer's inner loops ask "is core `i` complete/scheduled?" for every
//! candidate at every step. Materializing `Vec<bool>` snapshots per query
//! made the candidate scan O(n²) with two heap allocations per call; the
//! scheduler instead maintains these [`BitSet`]s incrementally on
//! assign/retire and the conflict check reads them allocation-free.

/// A fixed-capacity set of core indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the index universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a set from a boolean slice (`bits[i]` ⇒ `i` is a member).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = Self::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.insert(i);
            }
        }
        s
    }

    /// Size of the index universe (not the member count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} outside 0..{}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Adds `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "index {i} outside 0..{}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "index {i} outside 0..{}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count(), 0);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert!(s.contains(63) && s.contains(65));
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn from_bools_matches_slice() {
        let bits = [true, false, true, true, false];
        let s = BitSet::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(s.contains(i), b);
        }
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn empty_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_panics() {
        let s = BitSet::new(8);
        let _ = s.contains(8);
    }
}
