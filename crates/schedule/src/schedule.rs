//! Schedule output types: time slices, per-core statistics, makespan, and
//! a text Gantt rendering (the paper's Figure 2 view).

use std::fmt;

use soctam_soc::CoreIdx;
use soctam_wrapper::{Cycles, TamWidth};

/// One contiguous run of a core's test on the TAM.
///
/// A non-preempted core has exactly one slice; each preemption adds one.
/// Slices of the same core never overlap and always use the same width
/// (the paper fixes a core's width once packing begins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Slice {
    /// The core under test.
    pub core: CoreIdx,
    /// TAM wires held for the duration of the slice.
    pub width: TamWidth,
    /// First cycle of the slice (inclusive).
    pub start: Cycles,
    /// One past the last cycle of the slice (exclusive).
    pub end: Cycles,
}

impl Slice {
    /// Duration of the slice in cycles.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }

    /// Whether two slices overlap in time (exclusive end).
    pub fn overlaps(&self, other: &Slice) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Summary statistics for one core within a finished schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreScheduleStats {
    /// TAM width the core tested at.
    pub width: TamWidth,
    /// First cycle the core tested.
    pub start: Cycles,
    /// Completion cycle.
    pub end: Cycles,
    /// Total cycles actually spent testing (sum of slice durations).
    pub busy: Cycles,
    /// Number of times the test was preempted (slices − 1).
    pub preemptions: u32,
}

/// A complete SOC test schedule: the packed bin of the paper's Figure 2.
///
/// Produced by [`ScheduleBuilder::run`](crate::ScheduleBuilder::run);
/// checked independently by [`validate`](crate::validate::validate).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    soc_name: String,
    tam_width: TamWidth,
    slices: Vec<Slice>,
    makespan: Cycles,
}

impl Schedule {
    /// Assembles a schedule from raw slices, merging back-to-back slices of
    /// the same core (seamless resumptions are not preemptions).
    pub fn from_slices(
        soc_name: impl Into<String>,
        tam_width: TamWidth,
        mut slices: Vec<Slice>,
    ) -> Self {
        slices.sort_by_key(|s| (s.core, s.start));
        let mut merged: Vec<Slice> = Vec::with_capacity(slices.len());
        for s in slices {
            if s.start == s.end {
                continue; // drop empty slices
            }
            match merged.last_mut() {
                Some(last)
                    if last.core == s.core && last.end == s.start && last.width == s.width =>
                {
                    last.end = s.end;
                }
                _ => merged.push(s),
            }
        }
        let makespan = merged.iter().map(|s| s.end).max().unwrap_or(0);
        merged.sort_by_key(|s| (s.start, s.core));
        Self {
            soc_name: soc_name.into(),
            tam_width,
            slices: merged,
            makespan,
        }
    }

    /// Name of the SOC this schedule tests.
    pub fn soc_name(&self) -> &str {
        &self.soc_name
    }

    /// The SOC TAM width `W` the schedule was packed into.
    pub fn tam_width(&self) -> TamWidth {
        self.tam_width
    }

    /// All slices, ordered by start time.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Slices of one core, in time order.
    pub fn core_slices(&self, core: CoreIdx) -> Vec<Slice> {
        let mut v: Vec<Slice> = self
            .slices
            .iter()
            .copied()
            .filter(|s| s.core == core)
            .collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// The SOC testing time — the width to which the bin is filled.
    pub fn makespan(&self) -> Cycles {
        self.makespan
    }

    /// Per-core summary, or `None` if the core never appears.
    pub fn core_stats(&self, core: CoreIdx) -> Option<CoreScheduleStats> {
        let slices = self.core_slices(core);
        let first = slices.first()?;
        let last = slices.last()?;
        Some(CoreScheduleStats {
            width: first.width,
            start: first.start,
            end: last.end,
            busy: slices.iter().map(Slice::duration).sum(),
            preemptions: (slices.len() - 1) as u32,
        })
    }

    /// Total wire·cycles consumed by tests.
    pub fn busy_area(&self) -> u128 {
        self.slices
            .iter()
            .map(|s| u128::from(s.width) * u128::from(s.duration()))
            .sum()
    }

    /// Idle wire·cycles: bin area minus busy area.
    pub fn idle_area(&self) -> u128 {
        u128::from(self.tam_width) * u128::from(self.makespan) - self.busy_area()
    }

    /// TAM wire utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy_area() as f64 / (self.tam_width as f64 * self.makespan as f64)
    }

    /// TAM wires in use at a given cycle.
    pub fn width_in_use_at(&self, time: Cycles) -> u32 {
        self.slices
            .iter()
            .filter(|s| s.start <= time && time < s.end)
            .map(|s| u32::from(s.width))
            .sum()
    }

    /// The distinct cores appearing in the schedule.
    pub fn cores(&self) -> Vec<CoreIdx> {
        let mut v: Vec<CoreIdx> = self.slices.iter().map(|s| s.core).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Renders an ASCII Gantt chart (one row per core), the textual
    /// equivalent of the paper's Figure 2.
    ///
    /// `columns` is the chart width in characters; names supplies a label
    /// per core index.
    pub fn gantt(&self, names: &dyn Fn(CoreIdx) -> String, columns: usize) -> String {
        let columns = columns.max(10);
        let mut out = String::new();
        out.push_str(&format!(
            "{} on W={} wires, makespan {} cycles, utilization {:.1}%\n",
            self.soc_name,
            self.tam_width,
            self.makespan,
            self.utilization() * 100.0
        ));
        if self.makespan == 0 {
            return out;
        }
        let scale = self.makespan as f64 / columns as f64;
        for core in self.cores() {
            let label = names(core);
            let mut row = vec![' '; columns];
            for s in self.core_slices(core) {
                let a = (s.start as f64 / scale).floor() as usize;
                let b = (((s.end as f64) / scale).ceil() as usize).min(columns);
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = '#';
                }
            }
            let bar: String = row.into_iter().collect();
            let first = self.core_slices(core)[0];
            out.push_str(&format!("{label:>10} |{bar}| w={}\n", first.width));
        }
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule of {} on {} wires: {} slices, makespan {}",
            self.soc_name,
            self.tam_width,
            self.slices.len(),
            self.makespan
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sl(core: CoreIdx, width: TamWidth, start: Cycles, end: Cycles) -> Slice {
        Slice {
            core,
            width,
            start,
            end,
        }
    }

    #[test]
    fn merges_seamless_resumptions() {
        let s = Schedule::from_slices(
            "t",
            8,
            vec![sl(0, 4, 0, 10), sl(0, 4, 10, 20), sl(1, 4, 0, 5)],
        );
        assert_eq!(s.core_slices(0), vec![sl(0, 4, 0, 20)]);
        assert_eq!(s.core_stats(0).unwrap().preemptions, 0);
        assert_eq!(s.makespan(), 20);
    }

    #[test]
    fn preemption_counted_from_gaps() {
        let s = Schedule::from_slices("t", 8, vec![sl(0, 4, 0, 10), sl(0, 4, 15, 25)]);
        let stats = s.core_stats(0).unwrap();
        assert_eq!(stats.preemptions, 1);
        assert_eq!(stats.busy, 20);
        assert_eq!(stats.start, 0);
        assert_eq!(stats.end, 25);
    }

    #[test]
    fn drops_empty_slices() {
        let s = Schedule::from_slices("t", 8, vec![sl(0, 4, 5, 5), sl(1, 2, 0, 4)]);
        assert_eq!(s.slices().len(), 1);
        assert!(s.core_stats(0).is_none());
    }

    #[test]
    fn width_in_use_accounts_overlaps() {
        let s = Schedule::from_slices("t", 8, vec![sl(0, 3, 0, 10), sl(1, 5, 5, 15)]);
        assert_eq!(s.width_in_use_at(0), 3);
        assert_eq!(s.width_in_use_at(7), 8);
        assert_eq!(s.width_in_use_at(12), 5);
        assert_eq!(s.width_in_use_at(15), 0);
    }

    #[test]
    fn area_accounting() {
        let s = Schedule::from_slices("t", 8, vec![sl(0, 3, 0, 10), sl(1, 5, 0, 10)]);
        assert_eq!(s.busy_area(), 80);
        assert_eq!(s.idle_area(), 0);
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slice_overlap_predicate() {
        assert!(sl(0, 1, 0, 10).overlaps(&sl(1, 1, 9, 12)));
        assert!(!sl(0, 1, 0, 10).overlaps(&sl(1, 1, 10, 12)));
    }

    #[test]
    fn gantt_renders_rows() {
        let s = Schedule::from_slices("t", 8, vec![sl(0, 3, 0, 50), sl(1, 5, 25, 100)]);
        let g = s.gantt(&|i| format!("core{i}"), 40);
        assert!(g.contains("core0"));
        assert!(g.contains("core1"));
        assert!(g.contains("makespan 100"));
    }

    #[test]
    fn empty_schedule_is_sane() {
        let s = Schedule::from_slices("t", 8, vec![]);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.utilization(), 0.0);
        assert!(s.cores().is_empty());
    }

    #[test]
    fn display_mentions_makespan() {
        let s = Schedule::from_slices("demo", 4, vec![sl(0, 2, 0, 7)]);
        assert!(s.to_string().contains("makespan 7"));
    }
}
