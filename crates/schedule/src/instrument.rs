//! Compilation instrumentation for the scheduling crate.
//!
//! Process-wide monotone counters of the two SOC-level precomputations a
//! sweep is supposed to perform exactly once per SOC:
//! [`RectangleMenus::build`](crate::RectangleMenus::build) and
//! [`ConstraintSet::compile`](crate::ConstraintSet::compile). The
//! `context_reuse` equivalence suite measures deltas around whole sweeps
//! to pin the amortization promised by [`CompiledSoc`](crate::CompiledSoc);
//! see also `soctam_wrapper::instrument` for the per-core rectangle-set
//! counter.

use std::sync::atomic::{AtomicU64, Ordering};

static MENU_BUILDS: AtomicU64 = AtomicU64::new(0);
static MENU_DERIVES: AtomicU64 = AtomicU64::new(0);
static CONSTRAINT_COMPILES: AtomicU64 = AtomicU64::new(0);
static CONTEXT_COMPILES: AtomicU64 = AtomicU64::new(0);
static SCHEDULE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of whole-SOC rectangle-menu builds since process start.
pub fn menu_builds() -> u64 {
    MENU_BUILDS.load(Ordering::Relaxed)
}

/// Number of whole-SOC rectangle-menu *derivations* — smaller-cap menus
/// obtained by truncating a larger cached build
/// ([`RectangleMenus::prefix`](crate::RectangleMenus::prefix)) instead of
/// re-running the wrapper designer — since process start.
pub fn menu_derives() -> u64 {
    MENU_DERIVES.load(Ordering::Relaxed)
}

/// Number of [`ConstraintSet`](crate::ConstraintSet) compilations since
/// process start.
pub fn constraint_compiles() -> u64 {
    CONSTRAINT_COMPILES.load(Ordering::Relaxed)
}

/// Number of whole [`CompiledSoc`](crate::CompiledSoc) compilations since
/// process start. A well-behaved batch compiles one context per distinct
/// `(SOC, w_max, power budget)` registry key; `perfsnap` and the CI perf
/// smoke gate on this counter.
pub fn context_compiles() -> u64 {
    CONTEXT_COMPILES.load(Ordering::Relaxed)
}

/// Number of solver invocations
/// ([`ScheduleBuilder::run`](crate::ScheduleBuilder::run)) since process
/// start. The serving tier's warm-path invariant — a repeat request served
/// from a [`SolutionCache`](crate::SolutionCache) never re-solves — is
/// pinned by measuring a zero delta of this counter across a warm pass.
pub fn schedule_runs() -> u64 {
    SCHEDULE_RUNS.load(Ordering::Relaxed)
}

pub(crate) fn note_schedule_run() {
    SCHEDULE_RUNS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_menu_build() {
    MENU_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_menu_derive() {
    MENU_DERIVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_constraint_compile() {
    CONSTRAINT_COMPILES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_context_compile() {
    CONTEXT_COMPILES.fetch_add(1, Ordering::Relaxed);
}
