//! Compilation instrumentation for the scheduling crate.
//!
//! Process-wide monotone counters of the two SOC-level precomputations a
//! sweep is supposed to perform exactly once per SOC:
//! [`RectangleMenus::build`](crate::RectangleMenus::build) and
//! [`ConstraintSet::compile`](crate::ConstraintSet::compile). The
//! `context_reuse` equivalence suite measures deltas around whole sweeps
//! to pin the amortization promised by [`CompiledSoc`](crate::CompiledSoc);
//! see also `soctam_wrapper::instrument` for the per-core rectangle-set
//! counter.

use std::sync::atomic::{AtomicU64, Ordering};

static MENU_BUILDS: AtomicU64 = AtomicU64::new(0);
static CONSTRAINT_COMPILES: AtomicU64 = AtomicU64::new(0);

/// Number of whole-SOC rectangle-menu builds since process start.
pub fn menu_builds() -> u64 {
    MENU_BUILDS.load(Ordering::Relaxed)
}

/// Number of [`ConstraintSet`](crate::ConstraintSet) compilations since
/// process start.
pub fn constraint_compiles() -> u64 {
    CONSTRAINT_COMPILES.load(Ordering::Relaxed)
}

pub(crate) fn note_menu_build() {
    MENU_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_constraint_compile() {
    CONSTRAINT_COMPILES.fetch_add(1, Ordering::Relaxed);
}
