//! One precompiled, owned schedule context per SOC.
//!
//! A parameter sweep — the paper's "best result over all integer values of
//! `m` and `d`", crossed with TAM widths and scheduling modes — re-derives
//! the same SOC-level data on every run: per-core Pareto-optimal rectangle
//! menus, the compiled constraint tables, and the lower-bound ingredients
//! (per-core minimum areas and the full-cap staircase). [`CompiledSoc`]
//! computes all of it exactly once per SOC and hands shared references to
//! the scheduler ([`ScheduleBuilder::with_context`](crate::ScheduleBuilder::with_context)),
//! the bounds ([`CompiledSoc::lower_bound`]), the validator
//! ([`validate_with`](crate::validate::validate_with)), and the baseline
//! architectures (`soctam-baseline`), so a whole `(m, d, slack) × width`
//! sweep compiles the SOC once and only solves from then on.
//!
//! The context *owns* its SOC (`Arc<Soc>`), so it is lifetime-free: it can
//! be cached in a [`ContextRegistry`](crate::ContextRegistry), moved across
//! threads, and outlive the request that compiled it — the substrate for
//! long-lived batch serving (`soctam_core`'s `Engine`).
//!
//! Rectangle menus depend on the *effective* per-core width cap
//! (`min(W, w_max)`), so the context keeps a small per-cap cache behind a
//! mutex. The full-cap build itself is *lazy* (a `OnceLock` filled on the
//! first bound query or full-cap menu read), and once it exists smaller
//! caps are cheap prefix *derivations* of it ([`RectangleMenus::prefix`]);
//! a narrow request on a fresh context builds just that narrow cap.
//! Everything else is immutable shared data, and the whole context is
//! `Sync` — the flow's parallel sweep reads it from many threads.
//!
//! # Example
//!
//! ```
//! use soctam_schedule::{CompiledSoc, ScheduleBuilder, SchedulerConfig};
//! use soctam_soc::benchmarks;
//!
//! # fn main() -> Result<(), soctam_schedule::ScheduleError> {
//! let soc = benchmarks::d695();
//! let ctx = CompiledSoc::compile(&soc, 64);
//! // Many runs share one compilation.
//! for m in 1..=10 {
//!     let cfg = SchedulerConfig::new(32).with_percent(m);
//!     let s = ScheduleBuilder::new(&soc, cfg).with_context(&ctx).run()?;
//!     assert!(s.makespan() >= ctx.lower_bound(32));
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use soctam_soc::{CoreIdx, Soc};
use soctam_wrapper::{Cycles, RectangleSet, TamWidth};

use crate::bounds;
use crate::constraints::ConstraintSet;
use crate::menus::RectangleMenus;
use crate::sync::lock_unpoisoned;
use crate::SchedulerConfig;

/// The deferred full-cap compilation products: the `w_max`-wide menus (the
/// lower-bound staircase and the widest Pareto sets) and the summed
/// per-core minimum areas (the work term of the bound).
#[derive(Clone)]
struct FullCap {
    menus: Arc<RectangleMenus>,
    total_min_area: u128,
}

/// Precompiled, shareable schedule context for one SOC: the owned SOC
/// model, compiled constraint tables, per-core Pareto rectangle menus
/// (cached per effective width cap), and the cached lower-bound
/// ingredients.
///
/// Build one per SOC with [`CompiledSoc::compile`] (or
/// [`CompiledSoc::compile_arc`] to share an existing `Arc<Soc>` without
/// cloning the model) and share it across every scheduler run, bound
/// query, validation, and baseline evaluation of a sweep — or cache it in
/// a [`ContextRegistry`](crate::ContextRegistry) and share it across
/// *requests*. All shared paths are bit-identical to their
/// rebuild-per-call equivalents (pinned by the `context_reuse` and
/// `sweep_equivalence` suites).
pub struct CompiledSoc {
    soc: Arc<Soc>,
    w_max: TamWidth,
    constraints: ConstraintSet,
    /// The full-cap (`w_max`-wide) menus and bound ingredients, built
    /// lazily on the first path that needs them — bound queries, Pareto /
    /// full-menu reads, or a `menus_at` request at the full cap. Requests
    /// that never touch the full cap (e.g. a narrow-width schedule) skip
    /// this cost entirely.
    full: OnceLock<FullCap>,
    menu_cache: Mutex<HashMap<TamWidth, Arc<RectangleMenus>>>,
}

impl CompiledSoc {
    /// Compiles the context: constraint tables immediately, rectangle
    /// menus at the per-core width cap `w_max` (the paper's 64; clamped to
    /// at least 1) lazily on first use.
    ///
    /// Clones the SOC into shared ownership; callers that already hold an
    /// `Arc<Soc>` should use [`CompiledSoc::compile_arc`].
    pub fn compile(soc: &Soc, w_max: TamWidth) -> Self {
        Self::compile_arc(Arc::new(soc.clone()), w_max)
    }

    /// [`CompiledSoc::compile`] over an SOC that is already shared,
    /// avoiding the model clone.
    pub fn compile_arc(soc: Arc<Soc>, w_max: TamWidth) -> Self {
        crate::instrument::note_context_compile();
        let _span = crate::obs::span(crate::obs::Phase::ContextCompile);
        let w_max = w_max.max(1);
        let constraints = ConstraintSet::compile(&soc);
        Self {
            soc,
            w_max,
            constraints,
            full: OnceLock::new(),
            menu_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The full-cap products, building them on first use. `OnceLock`
    /// publishes exactly one winner, so concurrent first readers still
    /// observe a single build per context (the registry's one-build-per-key
    /// counter pins rely on this).
    fn full_cap(&self) -> &FullCap {
        self.full.get_or_init(|| {
            let _span = crate::obs::span(crate::obs::Phase::MenuBuild);
            let menus = Arc::new(RectangleMenus::build(&self.soc, self.w_max));
            let total_min_area = menus.menus().iter().map(RectangleSet::min_area).sum();
            FullCap {
                menus,
                total_min_area,
            }
        })
    }

    /// The SOC this context was compiled from.
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Shared handle on the owned SOC model; cloning it is refcount-cheap.
    pub fn soc_arc(&self) -> &Arc<Soc> {
        &self.soc
    }

    /// The per-core width cap the context was compiled for.
    pub fn w_max(&self) -> TamWidth {
        self.w_max
    }

    /// Number of cores covered.
    pub fn len(&self) -> usize {
        self.soc.len()
    }

    /// Whether the SOC has no cores.
    pub fn is_empty(&self) -> bool {
        self.soc.is_empty()
    }

    /// The compiled constraint tables (precedence, concurrency, BIST,
    /// power), shared by every run.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The per-core Pareto-optimal rectangle set at the full cap — the
    /// staircase the lower bound and the width-increase heuristic read.
    /// Forces the lazy full-cap build.
    pub fn pareto(&self, core: CoreIdx) -> &RectangleSet {
        self.full_cap().menus.menu(core)
    }

    /// The rectangle menus at the full cap `w_max`. Forces the lazy
    /// full-cap build.
    pub fn full_menus(&self) -> &RectangleMenus {
        &self.full_cap().menus
    }

    /// The effective per-core cap a run at SOC width `w` uses — the same
    /// clamp as [`SchedulerConfig::effective_w_max`].
    pub fn effective_cap(&self, w: TamWidth) -> TamWidth {
        self.w_max.min(w).max(1)
    }

    /// The rectangle menus for an arbitrary width cap, built on first use
    /// and cached. The full cap routes through the lazy full-cap build;
    /// smaller caps are prefix-derived from it when it already exists
    /// ([`RectangleMenus::prefix`] — bit-identical to a fresh build, no
    /// wrapper-design reruns) and built fresh at just that narrow cap when
    /// it does not, so a narrow request never pays for the full cap. Caps
    /// above `w_max` (only reachable by calling this directly with an
    /// unclamped value) fall back to a fresh build. A width sweep touches
    /// one cap per distinct `min(W, w_max)`, so the cache stays tiny.
    pub fn menus_at(&self, cap: TamWidth) -> Arc<RectangleMenus> {
        let cap = cap.max(1);
        if cap == self.w_max {
            return Arc::clone(&self.full_cap().menus);
        }
        let mut cache = lock_unpoisoned(&self.menu_cache);
        Arc::clone(cache.entry(cap).or_insert_with(|| {
            let _span = crate::obs::span(crate::obs::Phase::MenuBuild);
            Arc::new(match self.full.get() {
                Some(full) if cap <= full.menus.w_max() => full.menus.prefix(cap),
                _ => RectangleMenus::build(&self.soc, cap),
            })
        }))
    }

    /// The menus a configuration's run uses (`cfg.effective_w_max()` wide).
    pub fn menus_for_config(&self, cfg: &SchedulerConfig) -> Arc<RectangleMenus> {
        self.menus_at(cfg.effective_w_max())
    }

    /// Testing-time lower bound at SOC width `w` — bit-identical to
    /// [`bounds::lower_bound`]`(soc, w, w_max)`, without rebuilding any
    /// rectangle set.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn lower_bound(&self, w: TamWidth) -> Cycles {
        let full = self.full_cap();
        bounds::lower_bound_from_menus(&full.menus, full.total_min_area, w)
    }

    /// Lower bounds for several widths at once; see
    /// [`CompiledSoc::lower_bound`].
    pub fn lower_bounds(&self, widths: &[TamWidth]) -> Vec<Cycles> {
        widths.iter().map(|&w| self.lower_bound(w)).collect()
    }

    /// Number of distinct width caps with cached menus, counting the lazy
    /// full-cap build once it exists (diagnostic).
    pub fn cached_caps(&self) -> usize {
        lock_unpoisoned(&self.menu_cache).len() + usize::from(self.full.get().is_some())
    }
}

impl Clone for CompiledSoc {
    fn clone(&self) -> Self {
        let cache = lock_unpoisoned(&self.menu_cache);
        let full = OnceLock::new();
        if let Some(f) = self.full.get() {
            let _ = full.set(f.clone());
        }
        Self {
            soc: Arc::clone(&self.soc),
            w_max: self.w_max,
            constraints: self.constraints.clone(),
            full,
            menu_cache: Mutex::new(cache.clone()),
        }
    }
}

impl fmt::Debug for CompiledSoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSoc")
            .field("soc", &self.soc.name())
            .field("w_max", &self.w_max)
            .field("cores", &self.len())
            .field("cached_caps", &self.cached_caps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{lower_bound, lower_bounds};
    use soctam_soc::benchmarks;

    #[test]
    fn compile_defers_full_cap_menus() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        assert_eq!(ctx.w_max(), 64);
        assert_eq!(ctx.len(), soc.len());
        // Compile built nothing; the first full-cap read builds once.
        assert_eq!(ctx.cached_caps(), 0);
        assert_eq!(ctx.full_menus().w_max(), 64);
        assert_eq!(ctx.cached_caps(), 1);
        // Requesting the full cap reuses the lazy build.
        let m = ctx.menus_at(64);
        assert_eq!(ctx.cached_caps(), 1);
        assert_eq!(m.w_max(), 64);
    }

    #[test]
    fn narrow_request_never_pays_for_the_full_cap() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let m = ctx.menus_at(16);
        assert_eq!(m.w_max(), 16);
        // The 64-wide menus were never made for the narrow request.
        assert!(ctx.full.get().is_none());
        assert_eq!(ctx.cached_caps(), 1);
        assert_eq!(*m, RectangleMenus::build(&soc, 16));
        // The bound forces the full cap; later narrower caps derive.
        let _ = ctx.lower_bound(32);
        assert!(ctx.full.get().is_some());
        let derives = crate::instrument::menu_derives();
        let m32 = ctx.menus_at(32);
        assert!(crate::instrument::menu_derives() > derives);
        assert_eq!(*m32, RectangleMenus::build(&soc, 32));
    }

    #[test]
    fn compile_arc_shares_the_model() {
        let soc = Arc::new(benchmarks::d695());
        let ctx = CompiledSoc::compile_arc(Arc::clone(&soc), 64);
        assert!(Arc::ptr_eq(ctx.soc_arc(), &soc));
        assert_eq!(ctx.soc(), &*soc);
    }

    #[test]
    fn context_is_send_and_sync_and_static() {
        fn takes<T: Send + Sync + 'static>(_: &T) {}
        let ctx = CompiledSoc::compile(&benchmarks::d695(), 16);
        takes(&ctx);
    }

    #[test]
    fn menus_cached_per_cap() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let a = ctx.menus_at(16);
        let b = ctx.menus_at(16);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.cached_caps(), 1);
        assert_eq!(*a, RectangleMenus::build(&soc, 16));
        // Forcing the full cap adds one more cached build.
        let _ = ctx.menus_at(64);
        assert_eq!(ctx.cached_caps(), 2);
    }

    #[test]
    fn smaller_caps_are_derived_once_the_full_cap_exists() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let _ = ctx.full_menus(); // force the full-cap build
        let derives = crate::instrument::menu_derives();
        let m = ctx.menus_at(16);
        assert_eq!(*m, RectangleMenus::build(&soc, 16)); // this build is the reference
        assert!(crate::instrument::menu_derives() > derives);
        // A cap above w_max falls back to a fresh build.
        let wide = ctx.menus_at(80);
        assert_eq!(wide.w_max(), 80);
    }

    #[test]
    fn menu_cache_recovers_from_poison() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = ctx.menu_cache.lock().unwrap();
            panic!("poison the menu cache");
        }));
        assert!(ctx.menu_cache.lock().is_err(), "cache should be poisoned");
        // Every cache path shrugs the poison off instead of panicking.
        let m = ctx.menus_at(16);
        assert_eq!(*m, RectangleMenus::build(&soc, 16));
        assert_eq!(ctx.cached_caps(), 1);
        let cloned = ctx.clone();
        assert_eq!(cloned.cached_caps(), 1);
        assert!(Arc::ptr_eq(&cloned.menus_at(16), &m));
    }

    #[test]
    fn lower_bounds_match_free_functions() {
        let soc = benchmarks::p22810();
        let ctx = CompiledSoc::compile(&soc, 64);
        let widths = [1u16, 7, 16, 32, 48, 64, 80];
        assert_eq!(ctx.lower_bounds(&widths), lower_bounds(&soc, &widths, 64));
        for &w in &widths {
            assert_eq!(ctx.lower_bound(w), lower_bound(&soc, w, 64));
        }
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 0);
        assert_eq!(ctx.w_max(), 1);
        assert_eq!(ctx.effective_cap(0), 1);
        assert_eq!(ctx.lower_bound(1), lower_bound(&soc, 1, 1));
    }

    #[test]
    #[should_panic(expected = "at least one wire")]
    fn zero_width_bound_panics() {
        let soc = benchmarks::d695();
        let _ = CompiledSoc::compile(&soc, 64).lower_bound(0);
    }
}
