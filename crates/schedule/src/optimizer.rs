//! `TAM_schedule_optimizer` — the integrated wrapper/TAM co-optimization
//! and constraint-driven test scheduling algorithm (paper Figures 4–8).

use soctam_soc::{CoreIdx, Soc};
use soctam_wrapper::{Cycles, TamWidth};

use crate::bitset::BitSet;
use crate::constraints::ConstraintSet;
use crate::context::CompiledSoc;
use crate::menus::RectangleMenus;
use crate::schedule::{Schedule, Slice};
use crate::state::CoreState;
use crate::{ScheduleError, SchedulerConfig};

/// Runs the paper's scheduling algorithm on one SOC for one configuration.
///
/// By default each run builds its own rectangle menus and compiles its own
/// constraint tables; sweeps that execute many runs should compile a
/// [`CompiledSoc`] once and share it via [`ScheduleBuilder::with_context`]
/// (or share just the menus via [`ScheduleBuilder::with_menus`]).
///
/// # Example
///
/// ```
/// use soctam_schedule::{ScheduleBuilder, SchedulerConfig};
/// use soctam_soc::benchmarks;
///
/// # fn main() -> Result<(), soctam_schedule::ScheduleError> {
/// let soc = benchmarks::d695();
/// let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(32)).run()?;
/// assert!(schedule.utilization() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScheduleBuilder<'a> {
    soc: &'a Soc,
    cfg: SchedulerConfig,
    menus: Option<&'a RectangleMenus>,
    ctx: Option<&'a CompiledSoc>,
}

impl<'a> ScheduleBuilder<'a> {
    /// Prepares a run of the optimizer.
    pub fn new(soc: &'a Soc, cfg: SchedulerConfig) -> Self {
        Self {
            soc,
            cfg,
            menus: None,
            ctx: None,
        }
    }

    /// Reuses prebuilt rectangle menus instead of rebuilding them.
    ///
    /// The menus must cover the same SOC and have been built at this
    /// configuration's `effective_w_max()`; `run` rejects mismatches.
    pub fn with_menus(mut self, menus: &'a RectangleMenus) -> Self {
        self.menus = Some(menus);
        self
    }

    /// Reuses a precompiled schedule context: constraint tables are taken
    /// from `ctx`, and — unless [`ScheduleBuilder::with_menus`] supplied
    /// menus explicitly — rectangle menus come from the context's per-cap
    /// cache.
    ///
    /// The context must have been compiled from the same SOC; `run`
    /// rejects mismatches.
    pub fn with_context(mut self, ctx: &'a CompiledSoc) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Executes `TAM_schedule_optimizer` and returns the packed schedule.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::InvalidConfig`] — `tam_width == 0`, the SOC has
    ///   no cores, or a shared context/menus doesn't match the
    ///   SOC/configuration;
    /// * [`ScheduleError::Soc`] — the SOC model fails validation;
    /// * [`ScheduleError::Stuck`] — constraints make some core permanently
    ///   unschedulable (e.g. its power rating alone exceeds `P_max`).
    pub fn run(self) -> Result<Schedule, ScheduleError> {
        crate::instrument::note_schedule_run();
        let cfg = &self.cfg;
        if cfg.tam_width == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "TAM width must be at least one wire".to_owned(),
            });
        }
        if self.soc.is_empty() {
            return Err(ScheduleError::InvalidConfig {
                reason: "SOC has no cores".to_owned(),
            });
        }
        self.soc.validate()?;

        if let Some(ctx) = self.ctx {
            // Pointer check first (the overwhelmingly common case), value
            // equality as the slow fallback for contexts compiled from a
            // clone of the same model.
            if !std::ptr::eq(ctx.soc(), self.soc) && ctx.soc() != self.soc {
                return Err(ScheduleError::InvalidConfig {
                    reason: format!(
                        "shared context was compiled for SOC `{}`, not `{}`",
                        ctx.soc().name(),
                        self.soc.name()
                    ),
                });
            }
        }

        if let Some(menus) = self.menus {
            if menus.len() != self.soc.len() || menus.w_max() != cfg.effective_w_max() {
                return Err(ScheduleError::InvalidConfig {
                    reason: format!(
                        "shared menus cover {} cores at w_max {}, need {} cores at {}",
                        menus.len(),
                        menus.w_max(),
                        self.soc.len(),
                        cfg.effective_w_max()
                    ),
                });
            }
        }

        let shared_constraints = self.ctx.map(CompiledSoc::constraints);
        match (self.menus, self.ctx) {
            (Some(menus), _) => {
                let _sweep = crate::obs::span(crate::obs::Phase::Sweep);
                run_with_menus(self.soc, cfg, menus, shared_constraints)
            }
            (None, Some(ctx)) => {
                let menus = ctx.menus_for_config(cfg);
                let _sweep = crate::obs::span(crate::obs::Phase::Sweep);
                run_with_menus(self.soc, cfg, &menus, shared_constraints)
            }
            (None, None) => {
                let menus = {
                    let _span = crate::obs::span(crate::obs::Phase::MenuBuild);
                    RectangleMenus::for_config(self.soc, cfg)
                };
                let _sweep = crate::obs::span(crate::obs::Phase::Sweep);
                run_with_menus(self.soc, cfg, &menus, None)
            }
        }
    }
}

/// The validated core of a run: compile constraints (unless precompiled
/// ones were shared), initialize states from the shared menus, pack.
fn run_with_menus(
    soc: &Soc,
    cfg: &SchedulerConfig,
    menus: &RectangleMenus,
    shared_constraints: Option<&ConstraintSet>,
) -> Result<Schedule, ScheduleError> {
    let compiled;
    let constraints = match shared_constraints {
        Some(c) => c,
        None => {
            compiled = ConstraintSet::compile(soc);
            &compiled
        }
    };
    let mut scratch = PackScratch::for_soc(soc.len(), constraints.num_bist_engines());
    run_with_menus_scratch(soc, cfg, menus, constraints, &mut scratch)
}

/// [`run_with_menus`] over caller-owned scratch, so a sweep reuses one set
/// of packer buffers across its whole `(m, d)` grid instead of
/// reallocating them per run.
fn run_with_menus_scratch<'m>(
    soc: &Soc,
    cfg: &SchedulerConfig,
    menus: &'m RectangleMenus,
    constraints: &ConstraintSet,
    scratch: &mut PackScratch<'m>,
) -> Result<Schedule, ScheduleError> {
    scratch.reset(soc, cfg, menus);
    let PackScratch {
        states,
        complete,
        scheduled,
        bist_load,
    } = scratch;
    Packer {
        cfg,
        constraints,
        states,
        w_avail: cfg.tam_width,
        scheduled_power: 0,
        now: 0,
        slices: Vec::new(),
        complete,
        scheduled,
        bist_load,
        scheduled_count: 0,
    }
    .pack()
    .map(|slices| Schedule::from_slices(soc.name(), cfg.tam_width, slices))
}

/// The packer's per-run buffers, allocated once per sweep and *cleared*
/// (not reallocated) between runs.
struct PackScratch<'m> {
    states: Vec<CoreState<'m>>,
    complete: BitSet,
    scheduled: BitSet,
    bist_load: Vec<u32>,
}

impl<'m> PackScratch<'m> {
    fn for_soc(cores: usize, bist_engines: usize) -> Self {
        Self {
            states: Vec::with_capacity(cores),
            complete: BitSet::new(cores),
            scheduled: BitSet::new(cores),
            bist_load: vec![0; bist_engines],
        }
    }

    /// Procedure `Initialize` (Figure 5): preferred widths over the shared
    /// rectangle menus, plus a wipe of the incremental occupancy state.
    fn reset(&mut self, soc: &Soc, cfg: &SchedulerConfig, menus: &'m RectangleMenus) {
        let prefs = menus.preferred_widths(cfg);
        self.states.clear();
        self.states
            .extend(soc.cores().iter().zip(menus.menus()).zip(prefs).map(
                |((core, rects), width_pref)| {
                    let budget = if cfg.allow_preemption {
                        core.max_preemptions()
                    } else {
                        0
                    };
                    let mut state = CoreState::new(rects, width_pref, budget);
                    // Unstarted cores advertise their preferred-width
                    // testing time so the max-time-remaining priorities can
                    // rank them.
                    state.time_left = state.time_at(width_pref);
                    state
                },
            ));
        self.complete.clear();
        self.scheduled.clear();
        self.bist_load.fill(0);
    }
}

struct Packer<'a, 'm> {
    cfg: &'a SchedulerConfig,
    constraints: &'a ConstraintSet,
    states: &'a mut Vec<CoreState<'m>>,
    w_avail: TamWidth,
    scheduled_power: u64,
    now: Cycles,
    slices: Vec<Slice>,
    /// Incremental mirrors of the per-core `complete`/`scheduled` flags,
    /// maintained on assign/retire so `Conflict` never materializes them.
    /// Borrowed from the sweep-owned [`PackScratch`].
    complete: &'a mut BitSet,
    scheduled: &'a mut BitSet,
    /// Scheduled-test count per BIST engine.
    bist_load: &'a mut Vec<u32>,
    /// Number of currently scheduled cores.
    scheduled_count: usize,
}

impl Packer<'_, '_> {
    fn pack(mut self) -> Result<Vec<Slice>, ScheduleError> {
        let mut remaining = self.states.len();
        while remaining > 0 {
            self.debug_check_incremental_state();
            if self.w_avail > 0 && self.try_assign_one() {
                continue;
            }
            if self.scheduled_count == 0 {
                let stuck: Vec<CoreIdx> = self
                    .states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.complete)
                    .map(|(i, _)| i)
                    .collect();
                return Err(ScheduleError::Stuck {
                    remaining: stuck,
                    at_time: self.now,
                });
            }
            remaining -= self.update();
        }
        Ok(self.slices)
    }

    /// Debug-build invariant: the incremental bitsets and BIST occupancy
    /// always equal the state recomputed from scratch. The
    /// `incremental_state` proptest suite drives random SOCs through the
    /// packer to exercise this.
    fn debug_check_incremental_state(&self) {
        if cfg!(debug_assertions) {
            let mut bist_load = vec![0u32; self.constraints.num_bist_engines()];
            let mut scheduled_count = 0;
            for (i, s) in self.states.iter().enumerate() {
                debug_assert_eq!(self.complete.contains(i), s.complete, "complete[{i}]");
                debug_assert_eq!(self.scheduled.contains(i), s.scheduled, "scheduled[{i}]");
                if s.scheduled {
                    scheduled_count += 1;
                    if let Some(e) = self.constraints.bist_engine(i) {
                        bist_load[e] += 1;
                    }
                }
            }
            debug_assert_eq!(self.scheduled_count, scheduled_count);
            debug_assert_eq!(*self.bist_load, bist_load);
        }
    }

    /// One pass of Figure 4 lines 4–16: returns `true` if some assignment
    /// (or width increase) happened.
    fn try_assign_one(&mut self) -> bool {
        // Priority 1 (line 5): resume budget-exhausted cores unconditionally.
        if let Some(i) = self.find_priority1() {
            // A budget-exhausted core is resumed seamlessly in the same
            // instant it was descheduled, so no preemption is charged.
            self.assign(i, self.states[i].width_assigned, false);
            return true;
        }
        // Priorities 2 and 3 (lines 7–12): all incomplete tests contend for
        // the available width, ranked by remaining testing time. A begun
        // core resumes at its fixed width; an unstarted core begins at its
        // preferred width. A begun core that loses this contention waits —
        // that wait is exactly a preemption, possible only while the core
        // still has budget (Priority 1 pins budget-exhausted cores first,
        // so non-preemptable tests always resume seamlessly).
        if let Some(i) = self.find_contender() {
            let s = &self.states[i];
            if s.begun {
                let preempt = s.end < self.now;
                self.assign(i, s.width_assigned, preempt);
            } else {
                self.assign(i, s.width_pref, false);
            }
            return true;
        }
        // Idle fill (lines 13–14): squeeze a near-fit core into the slack.
        if self.cfg.toggles.idle_fill {
            if let Some(i) = self.find_idle_fill() {
                self.assign(i, self.w_avail, false);
                return true;
            }
        }
        // Width increase (lines 15–16): widen a rectangle that begins now.
        if self.cfg.toggles.width_increase && self.try_width_increase() {
            return true;
        }
        false
    }

    fn conflict(&self, core: CoreIdx) -> bool {
        self.constraints.conflicts(
            core,
            self.complete,
            self.scheduled,
            self.bist_load,
            self.scheduled_power,
            self.cfg.p_max,
        )
    }

    fn find_priority1(&self) -> Option<CoreIdx> {
        self.states
            .iter()
            .enumerate()
            .find(|(_, s)| s.must_continue() && s.width_assigned <= self.w_avail)
            .map(|(i, _)| i)
    }

    /// The merged Priority 2/3 contention: the eligible core (begun at its
    /// assigned width, or fresh at its preferred width) with the largest
    /// remaining testing time.
    fn find_contender(&self) -> Option<CoreIdx> {
        let mut best: Option<(Cycles, CoreIdx)> = None;
        for (i, s) in self.states.iter().enumerate() {
            let eligible = if s.can_resume() {
                s.width_assigned <= self.w_avail
            } else if s.unstarted() {
                s.width_pref <= self.w_avail
            } else {
                false
            };
            if eligible && !self.conflict(i) {
                let key = (s.time_left, i);
                if best.is_none_or(|(t, j)| key.0 > t || (key.0 == t && i < j)) {
                    best = Some((s.time_left, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn find_idle_fill(&self) -> Option<CoreIdx> {
        // Cores whose preferred width exceeds the idle width by at most
        // `idle_fill_slack` wires; Priority 3 already handled the rest.
        let mut best: Option<(TamWidth, CoreIdx)> = None;
        for (i, s) in self.states.iter().enumerate() {
            if s.unstarted()
                && s.width_pref > self.w_avail
                && s.width_pref <= self.w_avail + self.cfg.idle_fill_slack
                && !self.conflict(i)
                && best.is_none_or(|(w, j)| s.width_pref < w || (s.width_pref == w && i < j))
            {
                best = Some((s.width_pref, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Figure 4 lines 15–16: find the rectangle beginning at the current
    /// instant that benefits most from the leftover wires; widen it to the
    /// highest Pareto-optimal width not exceeding `assigned + w_avail`.
    fn try_width_increase(&mut self) -> bool {
        let w_cap = self.cfg.effective_w_max();
        let mut best: Option<(Cycles, CoreIdx, TamWidth)> = None;
        for (i, s) in self.states.iter().enumerate() {
            if !s.scheduled || s.first_begin != Some(self.now) || s.run_begin != self.now {
                continue;
            }
            let reach = s.width_assigned.saturating_add(self.w_avail).min(w_cap);
            let Some(new_w) = s.rects.highest_pareto_width_at_most(reach) else {
                continue;
            };
            if new_w <= s.width_assigned {
                continue;
            }
            let gain = s.time_at(s.width_assigned) - s.time_at(new_w);
            if gain == 0 {
                continue;
            }
            if best.is_none_or(|(g, j, _)| gain > g || (gain == g && i < j)) {
                best = Some((gain, i, new_w));
            }
        }
        let Some((_, i, new_w)) = best else {
            return false;
        };
        let s = &mut self.states[i];
        self.w_avail -= new_w - s.width_assigned;
        s.width_assigned = new_w;
        s.time_left = s.rects.time_at(new_w);
        s.end = self.now + s.time_left;
        true
    }

    /// Procedure `Assign` (Figure 6).
    fn assign(&mut self, i: CoreIdx, width: TamWidth, preempt: bool) {
        let s = &mut self.states[i];
        debug_assert!(width >= 1 && width <= self.w_avail);
        debug_assert!(!s.scheduled && !s.complete);

        s.width_assigned = width;
        self.w_avail -= width;
        s.scheduled = true;
        self.scheduled.insert(i);
        self.scheduled_count += 1;
        if let Some(e) = self.constraints.bist_engine(i) {
            self.bist_load[e] += 1;
        }
        if preempt {
            s.preempts += 1;
            s.time_left += s.rects.rect_at(width).preemption_penalty();
        }
        if !s.begun {
            s.begun = true;
            s.first_begin = Some(self.now);
            s.time_left = s.rects.time_at(width);
        }
        s.run_begin = self.now;
        s.end = self.now + s.time_left;
        self.scheduled_power += self.constraints.power(i);
    }

    /// Procedure `Update` (Figure 8): advance to the earliest completion
    /// among scheduled tests, deschedule everything, and mark completions.
    /// Returns the number of cores that completed.
    fn update(&mut self) -> usize {
        let dt = self
            .states
            .iter()
            .filter(|s| s.scheduled)
            .map(|s| s.time_left)
            .min()
            .expect("update requires a scheduled core");
        let new_time = self.now + dt;
        let mut completed = 0;
        for (i, s) in self.states.iter_mut().enumerate() {
            if !s.scheduled {
                continue;
            }
            self.slices.push(Slice {
                core: i,
                width: s.width_assigned,
                start: s.run_begin,
                end: new_time,
            });
            s.scheduled = false;
            self.scheduled.remove(i);
            self.scheduled_count -= 1;
            if let Some(e) = self.constraints.bist_engine(i) {
                self.bist_load[e] -= 1;
            }
            s.time_left -= dt;
            s.end = new_time;
            self.scheduled_power -= self.constraints.power(i);
            if s.time_left == 0 {
                s.complete = true;
                self.complete.insert(i);
                completed += 1;
            }
        }
        self.now = new_time;
        self.w_avail = self.cfg.tam_width;
        completed
    }
}

/// Sweeps the user parameters `m` (percent) and `d` (Pareto bump) over the
/// paper's ranges and returns the best schedule found, with the winning
/// `(m, d)` pair.
///
/// The paper tabulates the best result over `1 ≤ m ≤ 10`, `0 ≤ d ≤ 4`.
///
/// The rectangle menus and constraint tables are invariant across
/// `(m, d)`, so the SOC is compiled once ([`CompiledSoc`]) and shared by
/// every run of the sweep.
///
/// # Errors
///
/// Returns the first error if *every* parameter combination fails;
/// individual failing combinations are skipped otherwise.
pub fn schedule_best(
    soc: &Soc,
    base: &SchedulerConfig,
    percents: impl IntoIterator<Item = u32>,
    bumps: impl IntoIterator<Item = TamWidth> + Clone,
) -> Result<(Schedule, u32, TamWidth), ScheduleError> {
    // Compiling at the effective cap makes the seeded menus exactly the
    // ones every run of this sweep uses: one build, one compile.
    let ctx = CompiledSoc::compile(soc, base.effective_w_max());
    schedule_best_with(&ctx, base, percents, bumps)
}

/// [`schedule_best`] over a caller-supplied precompiled context, so a
/// registry-cached [`CompiledSoc`] can serve many best-of sweeps without
/// recompiling. Bit-identical to [`schedule_best`] when the context was
/// compiled from the same SOC at `base.effective_w_max()`.
///
/// Runs with the lower-bound sweep cutoff enabled (see
/// [`schedule_best_with_stats`]) — the winner is provably unchanged.
///
/// # Errors
///
/// As for [`schedule_best`]; additionally rejects a context compiled from
/// a different SOC.
pub fn schedule_best_with(
    ctx: &CompiledSoc,
    base: &SchedulerConfig,
    percents: impl IntoIterator<Item = u32>,
    bumps: impl IntoIterator<Item = TamWidth> + Clone,
) -> Result<(Schedule, u32, TamWidth), ScheduleError> {
    schedule_best_with_stats(ctx, base, percents, bumps, true).map(|(s, m, d, _)| (s, m, d))
}

/// Tally of one parameter sweep: how many grid points there were, how many
/// actually ran, and how many were skipped without running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Grid points in the configured sweep.
    pub runs_total: usize,
    /// Scheduler runs actually executed.
    pub runs_executed: usize,
    /// Grid points skipped because an earlier point had the same slack and
    /// per-core preferred-width vector (identical schedule guaranteed).
    pub runs_skipped: usize,
    /// Grid points cut because the incumbent makespan already met the
    /// width's testing-time lower bound (no remaining point can win).
    pub runs_cut: usize,
}

/// [`schedule_best_with`], additionally reporting a [`SweepStats`] tally
/// and exposing the bound-gated cutoff as a switch.
///
/// With `use_cutoff`, the sweep consults the context-cached
/// [`CompiledSoc::lower_bound`] at the sweep's TAM width and stops
/// executing grid points as soon as the incumbent's makespan meets it:
/// every schedule's makespan is at least the bound, so no remaining point
/// can be *strictly* better and the first-winner tie-break keeps the
/// incumbent. The winner (and error behavior) is therefore bit-identical
/// with the cutoff on or off — only `runs_cut` differs (pinned by the
/// `cutoff` suite on all four ITC'02 benchmarks).
///
/// # Errors
///
/// As for [`schedule_best_with`].
pub fn schedule_best_with_stats(
    ctx: &CompiledSoc,
    base: &SchedulerConfig,
    percents: impl IntoIterator<Item = u32>,
    bumps: impl IntoIterator<Item = TamWidth> + Clone,
    use_cutoff: bool,
) -> Result<(Schedule, u32, TamWidth, SweepStats), ScheduleError> {
    let soc = ctx.soc();
    // Grid-invariant validation, hoisted out of the per-run path; the
    // error values match what every run would have reported.
    if base.tam_width == 0 {
        return Err(ScheduleError::InvalidConfig {
            reason: "TAM width must be at least one wire".to_owned(),
        });
    }
    if soc.is_empty() {
        return Err(ScheduleError::InvalidConfig {
            reason: "SOC has no cores".to_owned(),
        });
    }
    soc.validate()?;

    let bound = use_cutoff.then(|| ctx.lower_bound(base.tam_width));
    let menus = ctx.menus_for_config(base);
    let constraints = ctx.constraints();
    let _sweep = crate::obs::span(crate::obs::Phase::Sweep);
    let mut scratch = PackScratch::for_soc(soc.len(), constraints.num_bist_engines());
    let mut best: Option<(Schedule, u32, TamWidth)> = None;
    let mut first_err: Option<ScheduleError> = None;
    let mut stats = SweepStats::default();
    for m in percents {
        for d in bumps.clone() {
            stats.runs_total += 1;
            if let (Some(bound), Some((b, _, _))) = (bound, best.as_ref()) {
                if b.makespan() <= bound {
                    stats.runs_cut += 1;
                    continue;
                }
            }
            stats.runs_executed += 1;
            crate::instrument::note_schedule_run();
            let cfg = base.clone().with_percent(m).with_bump(d);
            match run_with_menus_scratch(soc, &cfg, &menus, constraints, &mut scratch) {
                Ok(s) => {
                    if best
                        .as_ref()
                        .is_none_or(|(b, _, _)| s.makespan() < b.makespan())
                    {
                        best = Some((s, m, d));
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
    }
    best.map(|(s, m, d)| (s, m, d, stats)).ok_or_else(|| {
        first_err.unwrap_or(ScheduleError::InvalidConfig {
            reason: "empty parameter sweep".to_owned(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use soctam_soc::{benchmarks, Core, Soc};
    use soctam_wrapper::{CoreTest, RectangleSet};

    fn simple_core(name: &str, chains: Vec<u32>, patterns: u64) -> Core {
        Core::new(name, CoreTest::new(4, 4, 0, chains, patterns).unwrap())
    }

    fn two_core_soc() -> Soc {
        let mut soc = Soc::new("two");
        soc.add_core(simple_core("a", vec![20, 20], 50));
        soc.add_core(simple_core("b", vec![10, 10, 10], 30));
        soc
    }

    #[test]
    fn rejects_zero_width() {
        let soc = two_core_soc();
        let err = ScheduleBuilder::new(&soc, SchedulerConfig::new(0)).run();
        assert!(matches!(err, Err(ScheduleError::InvalidConfig { .. })));
    }

    #[test]
    fn rejects_empty_soc() {
        let soc = Soc::new("empty");
        let err = ScheduleBuilder::new(&soc, SchedulerConfig::new(8)).run();
        assert!(matches!(err, Err(ScheduleError::InvalidConfig { .. })));
    }

    #[test]
    fn single_core_runs_alone() {
        let mut soc = Soc::new("one");
        soc.add_core(simple_core("a", vec![16], 10));
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(8))
            .run()
            .unwrap();
        assert_eq!(s.cores(), vec![0]);
        validate(&soc, &s).unwrap();
        let stats = s.core_stats(0).unwrap();
        assert_eq!(stats.start, 0);
        assert_eq!(stats.end, s.makespan());
    }

    #[test]
    fn schedules_all_cores_and_validates() {
        let soc = two_core_soc();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(8))
            .run()
            .unwrap();
        assert_eq!(s.cores(), vec![0, 1]);
        validate(&soc, &s).unwrap();
    }

    #[test]
    fn precedence_orders_tests() {
        let mut soc = two_core_soc();
        soc.add_precedence(1, 0).unwrap();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(8))
            .run()
            .unwrap();
        let a = s.core_stats(0).unwrap();
        let b = s.core_stats(1).unwrap();
        assert!(b.end <= a.start, "b must finish before a starts");
        validate(&soc, &s).unwrap();
    }

    #[test]
    fn concurrency_separates_tests() {
        let mut soc = two_core_soc();
        soc.add_concurrency(0, 1).unwrap();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(64))
            .run()
            .unwrap();
        for sa in s.core_slices(0) {
            for sb in s.core_slices(1) {
                assert!(!sa.overlaps(&sb));
            }
        }
        validate(&soc, &s).unwrap();
    }

    #[test]
    fn power_limit_serializes_hungry_cores() {
        let mut soc = Soc::new("p");
        soc.add_core(simple_core("a", vec![40], 20));
        soc.add_core(simple_core("b", vec![40], 20));
        let p = soc.core(0).power();
        let cfg = SchedulerConfig::new(64).with_power_limit(p); // only one at a time
        let s = ScheduleBuilder::new(&soc, cfg).run().unwrap();
        for sa in s.core_slices(0) {
            for sb in s.core_slices(1) {
                assert!(!sa.overlaps(&sb));
            }
        }
        validate(&soc, &s).unwrap();
    }

    #[test]
    fn impossible_power_is_stuck_not_loop() {
        let mut soc = Soc::new("p");
        soc.add_core(simple_core("a", vec![40], 20));
        let cfg = SchedulerConfig::new(64).with_power_limit(1);
        let err = ScheduleBuilder::new(&soc, cfg).run();
        assert!(matches!(err, Err(ScheduleError::Stuck { .. })));
    }

    #[test]
    fn wider_tam_is_never_worse_on_benchmarks() {
        let soc = benchmarks::d695();
        let t16 = ScheduleBuilder::new(&soc, SchedulerConfig::new(16))
            .run()
            .unwrap()
            .makespan();
        let t64 = ScheduleBuilder::new(&soc, SchedulerConfig::new(64))
            .run()
            .unwrap()
            .makespan();
        assert!(t64 <= t16);
    }

    #[test]
    fn d695_beats_trivial_serial_schedule() {
        let soc = benchmarks::d695();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(32))
            .run()
            .unwrap();
        let serial: u64 = soc
            .cores()
            .iter()
            .map(|c| RectangleSet::build(c.test(), 32).min_time())
            .sum();
        assert!(s.makespan() < serial);
        validate(&soc, &s).unwrap();
    }

    #[test]
    fn preemption_budget_respected_on_benchmarks() {
        let mut soc = benchmarks::d695();
        benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(16))
            .run()
            .unwrap();
        validate(&soc, &s).unwrap();
        for idx in 0..soc.len() {
            let stats = s.core_stats(idx).unwrap();
            assert!(
                stats.preemptions <= soc.core(idx).max_preemptions(),
                "core {idx} preempted {} times, budget {}",
                stats.preemptions,
                soc.core(idx).max_preemptions()
            );
        }
    }

    #[test]
    fn no_preemption_flag_forces_single_slices() {
        let mut soc = benchmarks::d695();
        benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
        let cfg = SchedulerConfig::new(16).without_preemption();
        let s = ScheduleBuilder::new(&soc, cfg).run().unwrap();
        for idx in 0..soc.len() {
            assert_eq!(s.core_slices(idx).len(), 1, "core {idx} split");
        }
    }

    #[test]
    fn schedule_best_sweeps_parameters() {
        let soc = benchmarks::d695();
        let base = SchedulerConfig::new(16);
        let (best, m, d) = schedule_best(&soc, &base, 1..=10, 0..=4).unwrap();
        assert!((1..=10).contains(&m));
        assert!(d <= 4);
        // Best-of can only improve on the default single run.
        let single = ScheduleBuilder::new(&soc, base).run().unwrap();
        assert!(best.makespan() <= single.makespan());
    }

    #[test]
    fn cutoff_preserves_winner_and_reports_cuts() {
        let soc = benchmarks::d695();
        let base = SchedulerConfig::new(16);
        let ctx = CompiledSoc::compile(&soc, base.effective_w_max());
        let (s_on, m_on, d_on, on) =
            schedule_best_with_stats(&ctx, &base, 1..=10, 0..=4, true).unwrap();
        let (s_off, m_off, d_off, off) =
            schedule_best_with_stats(&ctx, &base, 1..=10, 0..=4, false).unwrap();
        assert_eq!((s_on, m_on, d_on), (s_off, m_off, d_off));
        // The ungated sweep executes the whole grid; the gated one accounts
        // for every point either as executed or cut.
        assert_eq!(off.runs_total, 50);
        assert_eq!(off.runs_executed, 50);
        assert_eq!(off.runs_cut, 0);
        assert_eq!(on.runs_total, 50);
        assert_eq!(on.runs_executed + on.runs_cut, 50);
        assert_eq!(on.runs_skipped, 0);
    }

    #[test]
    fn stats_sweep_matches_plain_best_of() {
        let soc = benchmarks::d695();
        let base = SchedulerConfig::new(24);
        let ctx = CompiledSoc::compile(&soc, base.effective_w_max());
        let (s, m, d) = schedule_best_with(&ctx, &base, 1..=5, 0..=2).unwrap();
        let (s2, m2, d2, stats) =
            schedule_best_with_stats(&ctx, &base, 1..=5, 0..=2, true).unwrap();
        assert_eq!((s, m, d), (s2, m2, d2));
        assert_eq!(stats.runs_total, 15);
    }

    #[test]
    fn schedule_best_with_matches_private_compilation() {
        let soc = benchmarks::d695();
        let base = SchedulerConfig::new(16);
        let ctx = CompiledSoc::compile(&soc, base.effective_w_max());
        let shared = schedule_best_with(&ctx, &base, 1..=5, 0..=2).unwrap();
        let private = schedule_best(&soc, &base, 1..=5, 0..=2).unwrap();
        assert_eq!(shared, private);
    }

    #[test]
    fn shared_menus_match_rebuild_per_run() {
        let soc = benchmarks::p22810();
        let cfg = SchedulerConfig::new(24).with_percent(7).with_bump(2);
        let menus = RectangleMenus::for_config(&soc, &cfg);
        let shared = ScheduleBuilder::new(&soc, cfg.clone())
            .with_menus(&menus)
            .run()
            .unwrap();
        let rebuilt = ScheduleBuilder::new(&soc, cfg).run().unwrap();
        assert_eq!(shared, rebuilt);
    }

    #[test]
    fn mismatched_menus_rejected() {
        let soc = benchmarks::d695();
        let narrow = RectangleMenus::build(&soc, 8);
        let err = ScheduleBuilder::new(&soc, SchedulerConfig::new(24))
            .with_menus(&narrow)
            .run();
        assert!(matches!(err, Err(ScheduleError::InvalidConfig { .. })));

        let other = benchmarks::p22810();
        let foreign = RectangleMenus::build(&other, 24);
        let err = ScheduleBuilder::new(&soc, SchedulerConfig::new(24))
            .with_menus(&foreign)
            .run();
        assert!(matches!(err, Err(ScheduleError::InvalidConfig { .. })));
    }

    #[test]
    fn deterministic_output() {
        let soc = benchmarks::p22810();
        let a = ScheduleBuilder::new(&soc, SchedulerConfig::new(32))
            .run()
            .unwrap();
        let b = ScheduleBuilder::new(&soc, SchedulerConfig::new(32))
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn width_budget_never_exceeded_at_any_instant() {
        let soc = benchmarks::d695();
        let s = ScheduleBuilder::new(&soc, SchedulerConfig::new(24))
            .run()
            .unwrap();
        let mut events: Vec<u64> = s
            .slices()
            .iter()
            .flat_map(|sl| [sl.start, sl.end])
            .collect();
        events.sort_unstable();
        events.dedup();
        for &t in &events {
            assert!(s.width_in_use_at(t) <= 24, "overflow at {t}");
        }
    }
}
