//! Precomputed, shareable rectangle menus for a whole SOC.
//!
//! A core's rectangle menu depends only on the core's test and the
//! effective per-core width cap — it is invariant across the sweep
//! parameters `(m, d, slack)` that the flow's best-of search explores.
//! Building the menus once per `(SOC, w_max)` and sharing them across every
//! run of the sweep removes the dominant repeated cost of
//! [`ScheduleBuilder`](crate::ScheduleBuilder); the menus are plain shared
//! data, so a parallel sweep can read them from many threads at once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use soctam_soc::{CoreIdx, Soc};
use soctam_wrapper::{RectangleSet, TamWidth};

use crate::SchedulerConfig;

/// One [`RectangleSet`] per core of an SOC, built for a single effective
/// width cap (`SchedulerConfig::effective_w_max`).
///
/// # Example
///
/// ```
/// use soctam_schedule::{RectangleMenus, ScheduleBuilder, SchedulerConfig};
/// use soctam_soc::benchmarks;
///
/// # fn main() -> Result<(), soctam_schedule::ScheduleError> {
/// let soc = benchmarks::d695();
/// let cfg = SchedulerConfig::new(32);
/// let menus = RectangleMenus::for_config(&soc, &cfg);
/// // Many runs share one menu build.
/// for m in 1..=10 {
///     let s = ScheduleBuilder::new(&soc, cfg.clone().with_percent(m))
///         .with_menus(&menus)
///         .run()?;
///     assert!(s.makespan() > 0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RectangleMenus {
    w_max: TamWidth,
    menus: Vec<RectangleSet>,
}

impl RectangleMenus {
    /// Builds every core's menu for widths `1..=w_max`.
    ///
    /// Per-core builds are independent, so they fan out across
    /// `std::thread::available_parallelism` scoped threads; results are
    /// collected in core order, so the build is deterministic and equal to
    /// the sequential one.
    ///
    /// # Panics
    ///
    /// Panics if `w_max == 0`.
    pub fn build(soc: &Soc, w_max: TamWidth) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::build_with_threads(soc, w_max, threads)
    }

    /// [`RectangleMenus::build`] with an explicit worker-thread count
    /// (`threads <= 1` builds sequentially on the caller's thread).
    ///
    /// Each worker claims the next unbuilt core off a shared cursor and
    /// writes the result into that core's dedicated slot, so the finished
    /// menu vector is in core order no matter how the cores were
    /// interleaved across workers — bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `w_max == 0`.
    pub fn build_with_threads(soc: &Soc, w_max: TamWidth, threads: usize) -> Self {
        assert!(w_max > 0, "w_max must be at least one wire");
        crate::instrument::note_menu_build();
        let cores = soc.cores();
        let workers = threads.min(cores.len());
        if workers <= 1 {
            return Self {
                w_max,
                menus: cores
                    .iter()
                    .map(|core| RectangleSet::build(core.test(), w_max))
                    .collect(),
            };
        }

        let slots: Vec<OnceLock<RectangleSet>> =
            (0..cores.len()).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(core) = cores.get(i) else { break };
                    let built = RectangleSet::build(core.test(), w_max);
                    slots[i].set(built).expect("each core is claimed once");
                });
            }
        });
        Self {
            w_max,
            menus: slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every core was built"))
                .collect(),
        }
    }

    /// Builds the menus a configuration's run would build on its own
    /// (`cfg.effective_w_max()` wide).
    pub fn for_config(soc: &Soc, cfg: &SchedulerConfig) -> Self {
        Self::build(soc, cfg.effective_w_max())
    }

    /// Derives the menus for a smaller cap from this build, without
    /// re-running any wrapper design: per-width rectangles are
    /// cap-prefix-stable ([`RectangleSet::prefix`]), so a cap-16 menu is
    /// exactly the first 16 entries of the cap-64 one. Bit-identical to
    /// [`RectangleMenus::build`]`(soc, cap)`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` or `cap > self.w_max()`.
    pub fn prefix(&self, cap: TamWidth) -> Self {
        assert!(
            cap >= 1 && cap <= self.w_max,
            "prefix cap {cap} outside 1..={}",
            self.w_max
        );
        crate::instrument::note_menu_derive();
        Self {
            w_max: cap,
            menus: self.menus.iter().map(|m| m.prefix(cap)).collect(),
        }
    }

    /// The width cap the menus were built for.
    pub fn w_max(&self) -> TamWidth {
        self.w_max
    }

    /// Number of cores covered.
    pub fn len(&self) -> usize {
        self.menus.len()
    }

    /// Whether the SOC had no cores.
    pub fn is_empty(&self) -> bool {
        self.menus.is_empty()
    }

    /// The menu of one core.
    pub fn menu(&self, core: CoreIdx) -> &RectangleSet {
        &self.menus[core]
    }

    /// All menus, in core order.
    pub fn menus(&self) -> &[RectangleSet] {
        &self.menus
    }

    /// The per-core preferred TAM widths under `cfg` (Figure 5) — the only
    /// way `(m, d)` enters a scheduling run. Two configurations with equal
    /// slack and equal preferred-width vectors schedule identically, which
    /// is what the flow's sweep deduplication keys on.
    pub fn preferred_widths(&self, cfg: &SchedulerConfig) -> Vec<TamWidth> {
        self.menus
            .iter()
            .map(|rects| {
                if cfg.toggles.pareto_bump {
                    rects.preferred_width_bumped(cfg.percent, cfg.bump)
                } else {
                    rects.preferred_width(cfg.percent)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_soc::benchmarks;

    #[test]
    fn matches_per_core_builds() {
        let soc = benchmarks::d695();
        let menus = RectangleMenus::build(&soc, 24);
        assert_eq!(menus.len(), soc.len());
        assert_eq!(menus.w_max(), 24);
        for (i, core) in soc.cores().iter().enumerate() {
            assert_eq!(*menus.menu(i), RectangleSet::build(core.test(), 24));
        }
    }

    #[test]
    fn for_config_uses_effective_cap() {
        let soc = benchmarks::d695();
        let cfg = SchedulerConfig::new(16); // w_max 64 clamps to 16
        let menus = RectangleMenus::for_config(&soc, &cfg);
        assert_eq!(menus.w_max(), 16);
    }

    #[test]
    fn preferred_widths_follow_toggles() {
        let soc = benchmarks::d695();
        let cfg = SchedulerConfig::new(32).with_percent(7).with_bump(2);
        let menus = RectangleMenus::for_config(&soc, &cfg);
        let bumped = menus.preferred_widths(&cfg);
        for (i, &w) in bumped.iter().enumerate() {
            assert_eq!(w, menus.menu(i).preferred_width_bumped(7, 2));
        }
        let mut plain_cfg = cfg.clone();
        plain_cfg.toggles.pareto_bump = false;
        let plain = menus.preferred_widths(&plain_cfg);
        for (i, &w) in plain.iter().enumerate() {
            assert_eq!(w, menus.menu(i).preferred_width(7));
        }
    }

    #[test]
    #[should_panic(expected = "at least one wire")]
    fn zero_width_panics() {
        let _ = RectangleMenus::build(&benchmarks::d695(), 0);
    }

    #[test]
    fn prefix_matches_fresh_build() {
        let soc = benchmarks::d695();
        let full = RectangleMenus::build(&soc, 64);
        for cap in [1u16, 9, 16, 32, 64] {
            assert_eq!(full.prefix(cap), RectangleMenus::build(&soc, cap));
        }
    }

    #[test]
    #[should_panic(expected = "prefix cap")]
    fn prefix_beyond_build_panics() {
        let _ = RectangleMenus::build(&benchmarks::d695(), 16).prefix(17);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let soc = benchmarks::d695();
        let sequential = RectangleMenus::build_with_threads(&soc, 40, 1);
        for threads in [2usize, 3, 16, 1000] {
            assert_eq!(
                RectangleMenus::build_with_threads(&soc, 40, threads),
                sequential,
                "thread count {threads} drifted from the sequential build"
            );
        }
        assert_eq!(RectangleMenus::build(&soc, 40), sequential);
    }
}
