//! Phase-level tracing and latency histograms for the serving stack.
//!
//! Two std-only primitives, shared by every layer from the packer to the
//! balancer front:
//!
//! * **Span recording.** A request thread arms a thread-local recorder
//!   ([`trace_begin`]), the layers it passes through open [`Phase`]-tagged
//!   spans ([`span`]) that nest by scope, and the request thread collects
//!   the finished tree ([`trace_end`] → [`TraceTree`]) with per-span
//!   `Instant`-measured microseconds. When no recorder is armed — batch
//!   CLI runs, sweep worker threads, tests that don't care — a span guard
//!   is a no-op, so the hot path pays one thread-local read.
//!
//!   Spans are recorded where the *work* happens, not where it might
//!   happen: a context-registry hit opens no `context_compile` span and a
//!   cached menu read opens no `menu_build` span, so a warm request's
//!   trace reports exactly zero time in both (pinned by the trace suite).
//!
//! * **Latency histograms.** A fixed-boundary log₂ [`Histogram`] (powers
//!   of two from 1 µs to ~2.1 s, plus overflow) over lock-striped atomic
//!   counters. Recording is wait-free; [`Histogram::snapshot`] folds the
//!   stripes into a [`HistogramSnapshot`] that merges bucket-wise
//!   ([`HistogramSnapshot::merge`] — how the balancer's roll-up sums
//!   backend histograms) and renders Prometheus `_bucket`/`_sum`/`_count`
//!   exposition with `le` boundaries in seconds
//!   ([`HistogramSnapshot::render_into`]).
//!
//! The daemon uses both: per-request traces feed the `trace=1` response
//! field, the request log's `phases` object, the `--slow-log` stream, and
//! the per-phase cumulative counters; wire latencies feed
//! `soctam_request_latency_seconds{kind,cache}` histograms on `/metrics`.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The phases a request can spend time in, one per span tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Request-line parsing and SOC resolution (daemon side).
    Resolve,
    /// Solution-cache probe — on a hit or a coalesced wait, the whole
    /// request body; on a miss, the probe plus the solve nested inside.
    CacheLookup,
    /// Compiling a [`CompiledSoc`](crate::CompiledSoc) (constraint
    /// tables). Absent when the context registry already had it.
    ContextCompile,
    /// Building (or prefix-deriving) per-core rectangle menus. Absent
    /// when the context's per-cap cache already had them.
    MenuBuild,
    /// The scheduler itself: the `(m, d)` parameter sweep, or a single
    /// packer run.
    Sweep,
    /// Wire assignment and schedule validation.
    Validate,
    /// Rendering the JSON response line (daemon side).
    Render,
    /// Forwarding a request to a backend (balancer side).
    Proxy,
}

impl Phase {
    /// Every phase, in the order exposition and `phases` objects use.
    pub const ALL: [Phase; 8] = [
        Phase::Resolve,
        Phase::CacheLookup,
        Phase::ContextCompile,
        Phase::MenuBuild,
        Phase::Sweep,
        Phase::Validate,
        Phase::Render,
        Phase::Proxy,
    ];

    /// The snake_case label used in JSON and metric labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Resolve => "resolve",
            Phase::CacheLookup => "cache_lookup",
            Phase::ContextCompile => "context_compile",
            Phase::MenuBuild => "menu_build",
            Phase::Sweep => "sweep",
            Phase::Validate => "validate",
            Phase::Render => "render",
            Phase::Proxy => "proxy",
        }
    }
}

/// One finished span: a phase, its inclusive wall time, and the spans
/// that nested inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// What the span measured.
    pub phase: Phase,
    /// Inclusive wall time of the span, children included.
    pub micros: u64,
    /// Spans opened (and closed) while this one was open.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanNode::depth).max().unwrap_or(0)
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"phase\": \"{}\", \"micros\": {}",
            self.phase.label(),
            self.micros
        );
        if !self.children.is_empty() {
            out.push_str(", \"children\": ");
            spans_json_into(&self.children, out);
        }
        out.push('}');
    }

    /// Accumulates *exclusive* time — this span minus its children — into
    /// the per-phase totals, then recurses.
    fn accumulate_self(&self, totals: &mut [u64; Phase::ALL.len()]) {
        let nested: u64 = self.children.iter().map(|c| c.micros).sum();
        let idx = Phase::ALL
            .iter()
            .position(|p| *p == self.phase)
            .expect("every phase is in ALL");
        totals[idx] += self.micros.saturating_sub(nested);
        for child in &self.children {
            child.accumulate_self(totals);
        }
    }
}

fn spans_json_into(spans: &[SpanNode], out: &mut String) {
    out.push('[');
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span.json_into(out);
    }
    out.push(']');
}

/// A whole request's recorded spans, collected by [`trace_end`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// Wall time from [`trace_begin`] to [`trace_end`], which bounds the
    /// sum of any set of non-overlapping recorded spans.
    pub total_micros: u64,
    /// Top-level spans in completion order.
    pub spans: Vec<SpanNode>,
}

impl TraceTree {
    /// An empty tree (no spans, zero total) — what layers that never
    /// armed a recorder report.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            total_micros: 0,
            spans: Vec::new(),
        }
    }

    /// Exclusive (self-time) microseconds per phase, in [`Phase::ALL`]
    /// order. Because each span's children are subtracted from it, the
    /// phase totals sum to at most [`TraceTree::total_micros`]'s wall
    /// time plus timer granularity — never double-counting nesting.
    #[must_use]
    pub fn phase_micros(&self) -> [(Phase, u64); Phase::ALL.len()] {
        let mut totals = [0u64; Phase::ALL.len()];
        for span in &self.spans {
            span.accumulate_self(&mut totals);
        }
        let mut out = [(Phase::Resolve, 0); Phase::ALL.len()];
        for (i, phase) in Phase::ALL.iter().enumerate() {
            out[i] = (*phase, totals[i]);
        }
        out
    }

    /// Exclusive microseconds recorded for one phase.
    #[must_use]
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.phase_micros()
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or(0, |(_, micros)| *micros)
    }

    /// Deepest nesting among the recorded spans (0 for an empty tree).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.spans.iter().map(SpanNode::depth).max().unwrap_or(0)
    }

    /// The span forest as a JSON array of
    /// `{"phase", "micros", "children"}` objects.
    #[must_use]
    pub fn spans_json(&self) -> String {
        let mut out = String::new();
        spans_json_into(&self.spans, &mut out);
        out
    }

    /// The per-phase exclusive totals as one JSON object. With
    /// `include_zero`, every phase appears (the shape the `trace=1`
    /// response uses, so "zero compile time" is an explicit `0`); without
    /// it, only phases that recorded time (the compact request-log
    /// `phases` shape).
    #[must_use]
    pub fn phases_json(&self, include_zero: bool) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (phase, micros) in self.phase_micros() {
            if micros == 0 && !include_zero {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{}\": {}", phase.label(), micros);
        }
        out.push('}');
        out
    }
}

/// An in-progress span on the recorder's stack.
struct OpenSpan {
    phase: Phase,
    start: Instant,
    children: Vec<SpanNode>,
}

struct Recorder {
    started: Instant,
    stack: Vec<OpenSpan>,
    roots: Vec<SpanNode>,
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Arms this thread's span recorder. Any previously armed (and never
/// ended) recorder is discarded — a request that panicked mid-trace
/// cannot leak stale spans into the connection's next request.
pub fn trace_begin() {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            started: Instant::now(),
            stack: Vec::new(),
            roots: Vec::new(),
        });
    });
}

/// Disarms this thread's recorder and returns the collected tree, or
/// `None` if no recorder was armed. Spans still open (a guard leaked
/// across the end) are closed as of now.
pub fn trace_end() -> Option<TraceTree> {
    RECORDER.with(|r| {
        let mut recorder = r.borrow_mut().take()?;
        while let Some(open) = recorder.stack.pop() {
            let node = SpanNode {
                phase: open.phase,
                micros: open.start.elapsed().as_micros() as u64,
                children: open.children,
            };
            match recorder.stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => recorder.roots.push(node),
            }
        }
        Some(TraceTree {
            total_micros: recorder.started.elapsed().as_micros() as u64,
            spans: recorder.roots,
        })
    })
}

/// Opens a phase span on this thread, closed (and recorded) when the
/// returned guard drops. A free no-op when no recorder is armed.
#[must_use = "dropping the guard immediately records an empty span"]
pub fn span(phase: Phase) -> SpanGuard {
    let armed = RECORDER.with(|r| {
        let mut slot = r.borrow_mut();
        match slot.as_mut() {
            Some(recorder) => {
                recorder.stack.push(OpenSpan {
                    phase,
                    start: Instant::now(),
                    children: Vec::new(),
                });
                true
            }
            None => false,
        }
    });
    SpanGuard { armed }
}

/// Scope guard returned by [`span`]; records the span on drop.
#[must_use = "a span measures the scope that holds its guard"]
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        RECORDER.with(|r| {
            let mut slot = r.borrow_mut();
            // The recorder may have been torn down (trace_end, or a
            // replacement trace_begin) under a leaked guard; tolerate it.
            let Some(recorder) = slot.as_mut() else {
                return;
            };
            let Some(open) = recorder.stack.pop() else {
                return;
            };
            let node = SpanNode {
                phase: open.phase,
                micros: open.start.elapsed().as_micros() as u64,
                children: open.children,
            };
            match recorder.stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => recorder.roots.push(node),
            }
        });
    }
}

/// Index of the largest finite bucket: upper bounds run
/// 2⁰ µs … 2^[`MAX_EXPONENT`] µs.
const MAX_EXPONENT: usize = 21;

/// Number of counters per histogram: 22 finite log₂ buckets
/// (1 µs … ~2.1 s) plus the overflow (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = MAX_EXPONENT + 2;

/// Lock stripes per histogram; recording threads spread over them so a
/// hot histogram never serializes its writers on one cache line.
const STRIPES: usize = 8;

/// The (non-cumulative) bucket index a microsecond value lands in: the
/// smallest `i` with `micros ≤ 2^i` µs, or the overflow bucket.
#[must_use]
pub fn bucket_index(micros: u64) -> usize {
    if micros <= 1 {
        return 0;
    }
    let ceil_log2 = (64 - (micros - 1).leading_zeros()) as usize;
    ceil_log2.min(MAX_EXPONENT + 1)
}

/// The `le` label of bucket `i`: its upper bound in seconds, or `+Inf`.
///
/// # Panics
///
/// Panics if `i ≥ HISTOGRAM_BUCKETS`.
#[must_use]
pub fn bucket_le_label(i: usize) -> String {
    assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
    if i > MAX_EXPONENT {
        return "+Inf".to_owned();
    }
    // Bounds are integral microseconds, so six decimals are exact.
    format!("{:.6}", (1u64 << i) as f64 / 1e6)
}

struct Stripe {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each recording thread claims one stripe for life; round-robin
    /// assignment keeps a worker pool spread evenly.
    static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// A fixed-boundary log₂ latency histogram over lock-striped atomics.
///
/// Buckets are powers of two in microseconds (1 µs, 2 µs, … ~2.1 s, then
/// overflow); `le` labels render in seconds. [`Histogram::record`] is
/// wait-free (three relaxed atomic adds on the calling thread's stripe);
/// [`Histogram::snapshot`] folds every stripe into one mergeable,
/// renderable [`HistogramSnapshot`].
pub struct Histogram {
    stripes: [Stripe; STRIPES],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum_micros", &snap.sum_micros)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stripes: std::array::from_fn(|_| Stripe::new()),
        }
    }

    /// Records one duration (saturating to whole microseconds).
    pub fn record(&self, d: Duration) {
        self.record_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one value in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let stripe = &self.stripes[MY_STRIPE.with(|s| *s)];
        stripe.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        stripe.sum_micros.fetch_add(micros, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds all stripes into one consistent-enough snapshot. Concurrent
    /// recording may straddle the fold (a racing record can appear in
    /// `count` but not yet `sum_micros` or vice versa); totals are exact
    /// once writers quiesce.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for stripe in &self.stripes {
            for (acc, bucket) in snap.buckets.iter_mut().zip(&stripe.buckets) {
                *acc += bucket.load(Ordering::Relaxed);
            }
            snap.sum_micros += stripe.sum_micros.load(Ordering::Relaxed);
            snap.count += stripe.count.load(Ordering::Relaxed);
        }
        snap
    }
}

/// A folded, plain-data histogram: per-bucket counts (non-cumulative),
/// the sum of recorded microseconds, and the record count. Merging two
/// snapshots ([`HistogramSnapshot::merge`]) yields exactly the snapshot
/// of the concatenated samples, which is what lets the balancer roll up
/// backend histograms bucket-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-cumulative count per bucket, [`bucket_index`]-ordered.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of every recorded value, in microseconds.
    pub sum_micros: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum_micros: 0,
            count: 0,
        }
    }

    /// Adds `other`'s samples into `self`, bucket-wise.
    pub fn merge(&mut self, other: &Self) {
        for (acc, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *acc += b;
        }
        self.sum_micros += other.sum_micros;
        self.count += other.count;
    }

    /// Appends Prometheus exposition for one labeled series of the
    /// family `name`: cumulative `name_bucket{…,le="…"}` lines for every
    /// boundary (`+Inf` included), then `name_sum` (seconds) and
    /// `name_count`. `labels` is the comma-joined inner label list
    /// (`kind="schedule",cache="hit"`), or empty for an unlabeled
    /// series. The caller owns the family's `# TYPE name histogram`
    /// header.
    pub fn render_into(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = bucket_le_label(i);
            if labels.is_empty() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            } else {
                let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
            }
        }
        let sum_seconds = self.sum_micros as f64 / 1e6;
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {sum_seconds:.6}");
            let _ = writeln!(out, "{name}_count {}", self.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {sum_seconds:.6}");
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_spans_are_no_ops() {
        assert!(trace_end().is_none());
        {
            let _g = span(Phase::Sweep);
        }
        assert!(trace_end().is_none());
    }

    #[test]
    fn spans_nest_by_scope() {
        trace_begin();
        {
            let _outer = span(Phase::CacheLookup);
            {
                let _inner = span(Phase::ContextCompile);
            }
            {
                let _inner = span(Phase::Sweep);
            }
        }
        {
            let _render = span(Phase::Render);
        }
        let tree = trace_end().expect("armed");
        assert_eq!(tree.spans.len(), 2);
        assert_eq!(tree.spans[0].phase, Phase::CacheLookup);
        assert_eq!(
            tree.spans[0]
                .children
                .iter()
                .map(|c| c.phase)
                .collect::<Vec<_>>(),
            vec![Phase::ContextCompile, Phase::Sweep]
        );
        assert_eq!(tree.spans[1].phase, Phase::Render);
        assert!(tree.spans[1].children.is_empty());
        assert_eq!(tree.max_depth(), 2);
    }

    #[test]
    fn phase_totals_are_exclusive_and_bounded_by_total() {
        trace_begin();
        {
            let _outer = span(Phase::CacheLookup);
            {
                let _inner = span(Phase::Sweep);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let tree = trace_end().expect("armed");
        let sum: u64 = tree.phase_micros().iter().map(|(_, m)| m).sum();
        assert!(
            sum <= tree.total_micros + 1,
            "exclusive sum {sum} exceeds total {}",
            tree.total_micros
        );
        assert!(tree.phase_total(Phase::Sweep) >= 2_000);
        // The outer span's exclusive time excludes the slept inner span.
        let outer = tree.spans[0].micros;
        let inner = tree.spans[0].children[0].micros;
        assert_eq!(
            tree.phase_total(Phase::CacheLookup),
            outer.saturating_sub(inner)
        );
    }

    #[test]
    fn phases_json_shapes() {
        trace_begin();
        {
            let _g = span(Phase::Render);
        }
        let tree = trace_end().expect("armed");
        let full = tree.phases_json(true);
        for phase in Phase::ALL {
            assert!(full.contains(&format!("\"{}\"", phase.label())), "{full}");
        }
        let compact = tree.phases_json(false);
        assert!(!compact.contains("\"sweep\""), "{compact}");
        let spans = tree.spans_json();
        assert!(spans.starts_with("[{\"phase\": \"render\""), "{spans}");
    }

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        // A value exactly on a bound lands in that bound's bucket
        // (Prometheus `le` is inclusive); one past it moves up.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        for exp in 1..=MAX_EXPONENT as u32 {
            let bound = 1u64 << exp;
            assert_eq!(bucket_index(bound), exp as usize, "at 2^{exp}");
            assert_eq!(bucket_index(bound + 1), exp as usize + 1, "past 2^{exp}");
        }
        // Past the last finite bound: the overflow bucket.
        assert_eq!(bucket_index((1 << MAX_EXPONENT) + 1), MAX_EXPONENT + 1);
        assert_eq!(bucket_index(u64::MAX), MAX_EXPONENT + 1);
    }

    #[test]
    fn le_labels_render_in_seconds() {
        assert_eq!(bucket_le_label(0), "0.000001");
        assert_eq!(bucket_le_label(10), "0.001024");
        assert_eq!(bucket_le_label(MAX_EXPONENT), "2.097152");
        assert_eq!(bucket_le_label(MAX_EXPONENT + 1), "+Inf");
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_samples = [3u64, 900, 17, 1 << 20, u64::MAX];
        let b_samples = [0u64, 1, 2, 4_000_000, 77];
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &s in &a_samples {
            a.record_micros(s);
            both.record_micros(s);
        }
        for &s in &b_samples {
            b.record_micros(s);
            both.record_micros(s);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn render_is_cumulative_and_labeled() {
        let h = Histogram::new();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(2));
        h.record(Duration::from_secs(10)); // overflow bucket
        let mut out = String::new();
        h.snapshot()
            .render_into(&mut out, "t_seconds", "kind=\"x\"");
        assert!(
            out.contains("t_seconds_bucket{kind=\"x\",le=\"0.000001\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("t_seconds_bucket{kind=\"x\",le=\"0.000002\"} 2"),
            "{out}"
        );
        // Every cumulative line up to +Inf sees all three samples.
        assert!(
            out.contains("t_seconds_bucket{kind=\"x\",le=\"+Inf\"} 3"),
            "{out}"
        );
        assert!(out.contains("t_seconds_sum{kind=\"x\"} 10.000003"), "{out}");
        assert!(out.contains("t_seconds_count{kind=\"x\"} 3"), "{out}");

        let mut bare = String::new();
        h.snapshot().render_into(&mut bare, "t_seconds", "");
        assert!(bare.contains("t_seconds_bucket{le=\"+Inf\"} 3"), "{bare}");
        assert!(bare.contains("t_seconds_count 3"), "{bare}");
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record_micros(t * per_thread + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), threads * per_thread);
        let expected_sum: u64 = (0..threads * per_thread).sum();
        assert_eq!(snap.sum_micros, expected_sum);
    }
}
