//! A sharded, thread-safe registry of compiled schedule contexts.
//!
//! [`CompiledSoc`] made one *sweep* cheap; [`ContextRegistry`] makes one
//! *service* cheap: a long-lived, concurrently shared cache of
//! `Arc<CompiledSoc>` keyed by SOC content, per-core width cap, and the
//! constraint-relevant run configuration (the power budget), so that any
//! number of scheduling/sweep/bounds requests — mixed SOCs, widths, and
//! modes, from any number of threads — compile each distinct key exactly
//! once.
//!
//! # Keying
//!
//! The key is `(SOC content, w_max, power budget)`:
//!
//! * **SOC content** — the full model value (name, cores, constraints),
//!   compared by equality under the hood, so two structurally identical
//!   SOCs share a context no matter how they were loaded, and a 64-bit
//!   hash collision can never alias two different SOCs;
//! * **`w_max`** — menus and lower-bound ingredients are compiled per cap;
//! * **power budget** — the resolved `P_max`, kept in the key so batch
//!   accounting ("one compile per (SOC, budget)") holds even though the
//!   compiled tables themselves are budget-independent.
//!
//! # Sharding, eviction, instrumentation
//!
//! Entries live in `shards` independently locked maps selected by key
//! hash; the shard lock covers only the map probe, never a compile.
//! Concurrent requests for the *same* key rendezvous on a per-entry cell —
//! exactly one compiles, the rest wait on that cell (no dogpile) — while
//! requests for other keys, same shard or not, proceed immediately
//! instead of stalling behind a multi-millisecond compilation. Each shard
//! holds at most
//! `capacity / shards` entries; inserting past that evicts the shard's
//! least-recently-used entry. Hits, misses, and evictions are counted on
//! the registry ([`ContextRegistry::stats`]); whole-process compile counts
//! are in [`instrument::context_compiles`](crate::instrument::context_compiles).

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use soctam_soc::Soc;
use soctam_wrapper::TamWidth;

use crate::context::CompiledSoc;
use crate::expiry::TtlPolicy;
use crate::sync::{lock_unpoisoned, panic_message};

/// The identity of one compiled context: SOC content, width cap, and the
/// constraint-relevant configuration (power budget).
///
/// The SOC's content hash is computed once per lookup and cached here, so
/// shard selection and map probing hash a `u64` instead of re-walking the
/// whole model; equality short-circuits on the cheap fields and falls back
/// to full content comparison only on a hash match (derived `PartialEq`
/// compares fields in declaration order).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ContextKey {
    w_max: TamWidth,
    power_budget: Option<u64>,
    soc_hash: u64,
    soc: Arc<Soc>,
}

impl ContextKey {
    fn new(soc: &Arc<Soc>, w_max: TamWidth, power_budget: Option<u64>) -> Self {
        // DefaultHasher with default keys is deterministic within a
        // process, which is all the cached hash needs to be.
        let mut h = DefaultHasher::new();
        soc.hash(&mut h);
        Self {
            w_max: w_max.max(1),
            power_budget,
            soc_hash: h.finish(),
            soc: Arc::clone(soc),
        }
    }
}

impl Hash for ContextKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal keys have equal SOC content and therefore equal cached
        // hashes, so skipping the model here upholds the Hash/Eq contract.
        self.w_max.hash(state);
        self.power_budget.hash(state);
        self.soc_hash.hash(state);
    }
}

/// One cache slot. The context lives behind a `OnceLock` so compilation
/// happens *outside* the shard lock: a miss publishes the empty cell and
/// releases the shard, then compiles into the cell — concurrent requests
/// for the *same* key rendezvous on the cell (one compiles, the rest
/// wait), while hits on other keys in the shard proceed immediately
/// instead of stalling behind a multi-millisecond compile.
/// What a rendezvous cell ends up holding: the compiled context, or the
/// rendered payload of the panic that killed the compile. Publishing the
/// panic keeps waiters rendezvoused on the cell from blocking forever
/// (and keeps the `OnceLock` from poisoning every later same-key
/// request).
type CompileOutcome = Result<Arc<CompiledSoc>, String>;

struct Entry {
    cell: Arc<OnceLock<CompileOutcome>>,
    last_used: u64,
    deadline: Option<Instant>,
}

/// Cumulative counters of one registry's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to compile a context.
    pub misses: u64,
    /// Entries dropped by the bounded-size LRU policy.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed (see
    /// [`ContextRegistry::with_ttl`]).
    pub expiries: u64,
    /// Compiles that panicked (caught, torn down, and re-raised in the
    /// panicking thread; rendezvoused waiters retried instead of
    /// hanging and no shard lock was poisoned).
    pub panics: u64,
}

impl RegistryStats {
    /// Hit rate in `[0, 1]`; `0` when no request has been served.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, bounded, thread-safe cache of [`CompiledSoc`] contexts.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use soctam_schedule::ContextRegistry;
/// use soctam_soc::benchmarks;
///
/// let registry = ContextRegistry::default();
/// let soc = Arc::new(benchmarks::d695());
/// let a = registry.get_or_compile(&soc, 64, None);
/// let b = registry.get_or_compile(&soc, 64, None);
/// assert!(Arc::ptr_eq(&a, &b)); // one compile, shared ever after
/// assert_eq!(registry.stats().misses, 1);
/// assert_eq!(registry.stats().hits, 1);
/// ```
pub struct ContextRegistry {
    shards: Vec<Mutex<HashMap<ContextKey, Entry>>>,
    per_shard_capacity: usize,
    ttl: TtlPolicy,
    hasher: RandomState,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expiries: AtomicU64,
    panics: AtomicU64,
}

impl ContextRegistry {
    /// Default shard count: enough to keep a busy batch from serializing
    /// on one lock without scattering a small cache too thin.
    pub const DEFAULT_SHARDS: usize = 8;
    /// Default total capacity (contexts are heavyweight; a serving tier
    /// rarely needs more than a few dozen hot SOC variants resident).
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a registry with `shards` independently locked shards and
    /// room for `capacity` contexts in total (each shard holds at most
    /// `capacity / shards`, minimum one). Both arguments are clamped to at
    /// least 1.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity,
            ttl: TtlPolicy::new(None),
            hasher: RandomState::new(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expiries: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// Bounds entry *lifetime* in addition to entry count: a context older
    /// than `ttl` is evicted lazily on the next request for its key (which
    /// then recompiles) or in bulk by [`ContextRegistry::purge_expired`].
    /// Long-lived daemons use this so a cached compilation for an SOC that
    /// stopped receiving traffic does not stay resident forever.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = TtlPolicy::new(Some(ttl));
        self
    }

    /// Drops every cached context whose TTL has elapsed (compiles still in
    /// flight are spared), returning how many were dropped. Expiries are
    /// counted in [`ContextRegistry::stats`].
    pub fn purge_expired(&self) -> usize {
        let now = Instant::now();
        let mut dropped = 0;
        for shard in &self.shards {
            let mut map = lock_unpoisoned(shard);
            let before = map.len();
            map.retain(|_, e| e.cell.get().is_none() || !TtlPolicy::expired(e.deadline, now));
            dropped += before - map.len();
        }
        self.expiries.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// The context for `(soc, w_max, power_budget)`: served from the cache
    /// when present, compiled (and cached) otherwise.
    ///
    /// `w_max` is clamped to at least 1, mirroring
    /// [`CompiledSoc::compile`], so a clamped and an unclamped request for
    /// the same cap share one entry. Concurrent callers with the same key
    /// rendezvous on one cell and get the same `Arc` (exactly one of them
    /// compiles — no dogpile); the shard lock is held only for the map
    /// lookup, never across a compile, so hits on other keys in the shard
    /// are never stuck behind one.
    pub fn get_or_compile(
        &self,
        soc: &Arc<Soc>,
        w_max: TamWidth,
        power_budget: Option<u64>,
    ) -> Arc<CompiledSoc> {
        let key = ContextKey::new(soc, w_max, power_budget);
        let compile_soc = Arc::clone(&key.soc);
        let compile_cap = key.w_max;
        self.get_or_compile_with(key, || {
            Arc::new(CompiledSoc::compile_arc(
                Arc::clone(&compile_soc),
                compile_cap,
            ))
        })
    }

    /// The rendezvous machinery behind [`ContextRegistry::get_or_compile`],
    /// parameterized over the compile step so the panic-isolation
    /// discipline can be exercised by tests without a genuinely crashing
    /// compiler.
    fn get_or_compile_with(
        &self,
        key: ContextKey,
        compile: impl Fn() -> Arc<CompiledSoc>,
    ) -> Arc<CompiledSoc> {
        let shard = &self.shards[self.shard_of(&key)];

        loop {
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
            let cell = {
                let mut map = lock_unpoisoned(shard);
                // A context past its TTL deadline is dead even if
                // resident: evict it and recompile (a compile still in
                // flight is never expired out from under the thread
                // publishing it). An entry whose compile panicked is dead
                // too: its publisher tears it down, but a racing probe
                // may see it first and must not rendezvous with it.
                let mut resident = None;
                if let Some(entry) = map.get_mut(&key) {
                    let completed = entry.cell.get();
                    let panicked = matches!(completed, Some(Err(_)));
                    if panicked
                        || (completed.is_some()
                            && TtlPolicy::expired(entry.deadline, Instant::now()))
                    {
                        map.remove(&key);
                        if !panicked {
                            self.expiries.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        entry.last_used = stamp;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        resident = Some(Arc::clone(&entry.cell));
                    }
                }
                match resident {
                    Some(cell) => cell,
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        if map.len() >= self.per_shard_capacity {
                            // Victim selection skips in-flight slots:
                            // evicting an entry whose cell is unset would
                            // discard the compile in progress and detach
                            // later same-key requests from it (recompiling
                            // instead of rendezvousing). When every slot
                            // is in flight the shard over-admits by one —
                            // in-flight compiles always complete and
                            // become evictable.
                            let lru = map
                                .iter()
                                .filter(|(_, e)| e.cell.get().is_some())
                                .min_by_key(|(_, e)| e.last_used)
                                .map(|(k, _)| k.clone());
                            if let Some(lru) = lru {
                                map.remove(&lru);
                                self.evictions.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        let cell = Arc::new(OnceLock::new());
                        map.insert(
                            key.clone(),
                            Entry {
                                cell: Arc::clone(&cell),
                                last_used: stamp,
                                deadline: self.ttl.deadline(),
                            },
                        );
                        cell
                    }
                }
            };

            // Outside the shard lock: the publishing thread compiles into
            // the cell; same-key requests that arrived meanwhile block
            // here (and only here) until the context is ready. An
            // evicted-mid-compile entry still completes through the
            // caller's own cell handle. The compile runs under
            // `catch_unwind` so a panicking compiler still publishes the
            // cell — waiters are released instead of hanging, and the
            // `OnceLock` is never poisoned.
            let mut ran = false;
            let outcome = cell.get_or_init(|| {
                ran = true;
                match catch_unwind(AssertUnwindSafe(&compile)) {
                    Ok(ctx) => Ok(ctx),
                    Err(payload) => Err(panic_message(payload.as_ref())),
                }
            });

            match outcome {
                Ok(ctx) => return Arc::clone(ctx),
                Err(message) => {
                    // Tear the dead slot down (idempotent under the
                    // ptr_eq guard) so later requests recompile instead
                    // of rendezvousing with a corpse.
                    {
                        let mut map = lock_unpoisoned(shard);
                        if map.get(&key).is_some_and(|e| Arc::ptr_eq(&e.cell, &cell)) {
                            map.remove(&key);
                        }
                    }
                    if ran {
                        // The panic was ours: re-raise it now that the
                        // cell is published and the entry torn down, so
                        // the caller's isolation layer sees it exactly
                        // once.
                        self.panics.fetch_add(1, Ordering::Relaxed);
                        panic!("context compilation panicked: {message}");
                    }
                    // A waiter: the compile we rendezvoused with died.
                    // Retry as a fresh miss — our own compile may well
                    // succeed (the panic could be an injected fault).
                }
            }
        }
    }

    /// Like [`ContextRegistry::get_or_compile`], but only returns a cached
    /// context, never compiling. Counts neither a hit nor a miss.
    pub fn peek(
        &self,
        soc: &Arc<Soc>,
        w_max: TamWidth,
        power_budget: Option<u64>,
    ) -> Option<Arc<CompiledSoc>> {
        let key = ContextKey::new(soc, w_max, power_budget);
        let map = lock_unpoisoned(&self.shards[self.shard_of(&key)]);
        // An entry whose compile is still in flight is not yet peekable,
        // and an expired entry is no longer servable (eviction is left to
        // `get_or_compile`/`purge_expired`).
        let entry = map.get(&key)?;
        if TtlPolicy::expired(entry.deadline, Instant::now()) {
            return None;
        }
        entry.cell.get().and_then(|o| o.as_ref().ok()).cloned()
    }

    /// Number of contexts currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_unpoisoned(s).len()).sum()
    }

    /// Whether the registry holds no contexts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (shards × per-shard bound).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard_capacity
    }

    /// Drops every cached context (stats are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock_unpoisoned(shard).clear();
        }
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expiries: self.expiries.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    fn shard_of(&self, key: &ContextKey) -> usize {
        (self.hasher.hash_one(key) % self.shards.len() as u64) as usize
    }
}

impl Default for ContextRegistry {
    /// A registry with [`ContextRegistry::DEFAULT_SHARDS`] shards and
    /// [`ContextRegistry::DEFAULT_CAPACITY`] total capacity.
    fn default() -> Self {
        Self::new(Self::DEFAULT_SHARDS, Self::DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for ContextRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextRegistry")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_soc::benchmarks;

    #[test]
    fn same_key_compiles_once() {
        let reg = ContextRegistry::default();
        let soc = Arc::new(benchmarks::d695());
        let a = reg.get_or_compile(&soc, 64, None);
        let b = reg.get_or_compile(&soc, 64, None);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            reg.stats(),
            RegistryStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_budgets_and_caps_are_distinct_keys() {
        let reg = ContextRegistry::default();
        let soc = Arc::new(benchmarks::d695());
        let plain = reg.get_or_compile(&soc, 64, None);
        let budgeted = reg.get_or_compile(&soc, 64, Some(1000));
        let narrow = reg.get_or_compile(&soc, 32, None);
        assert!(!Arc::ptr_eq(&plain, &budgeted));
        assert!(!Arc::ptr_eq(&plain, &narrow));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.stats().misses, 3);
    }

    #[test]
    fn concurrent_same_key_requests_compile_once() {
        let reg = ContextRegistry::new(1, 4);
        let soc = Arc::new(benchmarks::d695());
        let ctxs: Vec<Arc<CompiledSoc>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| reg.get_or_compile(&soc, 64, None)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in ctxs.windows(2) {
            assert!(
                Arc::ptr_eq(&pair[0], &pair[1]),
                "every racer gets the one compiled context"
            );
        }
        let stats = reg.stats();
        assert_eq!(stats.misses, 1, "exactly one racer published the cell");
        assert_eq!(stats.hits, 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn equal_value_socs_share_one_context() {
        let reg = ContextRegistry::default();
        let a = Arc::new(benchmarks::d695());
        let b = Arc::new(benchmarks::d695()); // different allocation, same value
        assert!(!Arc::ptr_eq(&a, &b));
        let ca = reg.get_or_compile(&a, 64, None);
        let cb = reg.get_or_compile(&b, 64, None);
        assert!(Arc::ptr_eq(&ca, &cb));
        assert_eq!(reg.stats().hits, 1);
    }

    #[test]
    fn w_max_is_clamped_in_the_key() {
        let reg = ContextRegistry::default();
        let soc = Arc::new(benchmarks::d695());
        let a = reg.get_or_compile(&soc, 0, None);
        let b = reg.get_or_compile(&soc, 1, None);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.w_max(), 1);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        // One shard, capacity 2 → fully deterministic eviction order.
        let reg = ContextRegistry::new(1, 2);
        let d695 = Arc::new(benchmarks::d695());
        let soc = |budget| (Arc::clone(&d695), budget);
        let (s, b0) = soc(Some(0));
        reg.get_or_compile(&s, 8, b0); // stamp 0
        reg.get_or_compile(&s, 8, Some(1)); // stamp 1
        reg.get_or_compile(&s, 8, b0); // touch budget-0 → stamp 2
        reg.get_or_compile(&s, 8, Some(2)); // full → evicts budget-1 (coldest)
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().evictions, 1);
        assert!(reg.peek(&s, 8, Some(0)).is_some(), "recently used survives");
        assert!(reg.peek(&s, 8, Some(1)).is_none(), "LRU entry evicted");
        assert!(reg.peek(&s, 8, Some(2)).is_some(), "new entry resident");
        // Re-requesting the evicted key recompiles.
        reg.get_or_compile(&s, 8, Some(1));
        assert_eq!(reg.stats().misses, 4);
        assert_eq!(reg.stats().evictions, 2);
    }

    #[test]
    fn lru_never_evicts_an_in_flight_slot() {
        // Capacity-1 shard with a planted in-flight entry (empty cell) for
        // key (d695, 8, None) — exactly the state a concurrent
        // get_or_compile leaves between publishing the cell and finishing
        // the compile. Capacity pressure must over-admit rather than evict
        // it: eviction would discard the compile in progress and detach
        // later same-key requests from the rendezvous.
        let reg = ContextRegistry::new(1, 1);
        let soc = Arc::new(benchmarks::d695());
        let key = ContextKey::new(&soc, 8, None);
        let planted: Arc<OnceLock<CompileOutcome>> = Arc::new(OnceLock::new());
        reg.shards[reg.shard_of(&key)].lock().unwrap().insert(
            key,
            Entry {
                cell: Arc::clone(&planted),
                last_used: 0,
                deadline: None,
            },
        );

        // Pressure from another key: over-admit by one, evict nothing.
        reg.get_or_compile(&soc, 16, None);
        assert_eq!(reg.len(), 2, "over-admitted past capacity");
        assert_eq!(reg.stats().evictions, 0, "in-flight slot spared");

        // The planted slot is intact: a same-key request rendezvouses on
        // the planted cell (a registry hit) and completes it in place.
        let ctx = reg.get_or_compile(&soc, 8, None);
        assert!(
            planted
                .get()
                .and_then(|o| o.as_ref().ok())
                .is_some_and(|c| Arc::ptr_eq(c, &ctx)),
            "the request completed the planted cell, not a replacement"
        );
        assert_eq!(reg.stats().hits, 1);

        // With every slot completed, capacity pressure evicts normally.
        reg.get_or_compile(&soc, 32, None);
        assert_eq!(reg.stats().evictions, 1);
    }

    #[test]
    fn panicking_compile_neither_poisons_shards_nor_hangs_waiters() {
        use std::sync::Barrier;

        let reg = ContextRegistry::new(1, 4);
        let soc = Arc::new(benchmarks::d695());
        let entered = Barrier::new(2);
        let release = Barrier::new(2);
        std::thread::scope(|scope| {
            let panicker = scope.spawn(|| {
                reg.get_or_compile_with(ContextKey::new(&soc, 8, None), || {
                    entered.wait();
                    release.wait();
                    panic!("compiler died mid-flight");
                })
            });
            entered.wait();
            // A waiter rendezvouses on the in-flight cell before the
            // compile panics (the registry counts the rendezvous as a
            // hit), then must be released and retry with its own
            // (working) compile instead of hanging or dying of poison.
            let waiter = scope.spawn(|| reg.get_or_compile(&soc, 8, None));
            while reg.stats().hits == 0 {
                std::thread::yield_now();
            }
            release.wait();
            assert!(panicker.join().is_err(), "panic re-raised in its thread");
            let ctx = waiter.join().expect("waiter released, not hung");
            assert_eq!(ctx.w_max(), 8);
        });
        assert_eq!(reg.stats().panics, 1);
        // No shard is poisoned and the dead entry was torn down: the key
        // serves normally ever after.
        let again = reg.get_or_compile(&soc, 8, None);
        assert_eq!(again.w_max(), 8);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let reg = ContextRegistry::default();
        let soc = Arc::new(benchmarks::d695());
        reg.get_or_compile(&soc, 16, None);
        assert!(!reg.is_empty());
        reg.clear();
        assert!(reg.is_empty());
        assert_eq!(reg.stats().misses, 1);
    }

    #[test]
    fn capacity_and_shards_clamp_to_one() {
        let reg = ContextRegistry::new(0, 0);
        assert_eq!(reg.capacity(), 1);
        let soc = Arc::new(benchmarks::d695());
        reg.get_or_compile(&soc, 4, None);
        reg.get_or_compile(&soc, 8, None);
        assert_eq!(reg.len(), 1, "capacity-1 registry keeps one context");
        assert_eq!(reg.stats().evictions, 1);
    }

    #[test]
    fn hit_rate_reports() {
        let s = RegistryStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(RegistryStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn ttl_expires_contexts_lazily_and_in_bulk() {
        let reg = ContextRegistry::new(1, 4).with_ttl(std::time::Duration::from_millis(40));
        let soc = Arc::new(benchmarks::d695());
        let fresh = reg.get_or_compile(&soc, 8, None);
        assert!(reg.peek(&soc, 8, None).is_some(), "fresh context servable");
        std::thread::sleep(std::time::Duration::from_millis(120));
        assert!(
            reg.peek(&soc, 8, None).is_none(),
            "expired context not servable"
        );
        // Lazy eviction on access recompiles into a new context.
        let recompiled = reg.get_or_compile(&soc, 8, None);
        assert!(!Arc::ptr_eq(&fresh, &recompiled));
        let stats = reg.stats();
        assert_eq!(stats.expiries, 1);
        assert_eq!(stats.misses, 2, "the expired key recompiled");
        assert_eq!(stats.hits, 0);
        // Bulk purge drops the recompiled context once it too expires.
        std::thread::sleep(std::time::Duration::from_millis(120));
        assert_eq!(reg.purge_expired(), 1);
        assert!(reg.is_empty());
        assert_eq!(reg.stats().expiries, 2);
    }

    #[test]
    fn no_ttl_means_no_expiry() {
        let reg = ContextRegistry::new(1, 4);
        let soc = Arc::new(benchmarks::d695());
        reg.get_or_compile(&soc, 8, None);
        assert_eq!(reg.purge_expired(), 0);
        assert!(reg.peek(&soc, 8, None).is_some());
        assert_eq!(reg.stats().expiries, 0);
    }

    #[test]
    fn registry_is_send_sync_static() {
        fn takes<T: Send + Sync + 'static>(_: &T) {}
        takes(&ContextRegistry::default());
    }
}
