//! Independent schedule validation.
//!
//! [`validate`] re-derives every constraint from the SOC model and checks a
//! finished [`Schedule`] against them *without* trusting any bookkeeping of
//! the optimizer. It is deliberately written as a separate, simpler
//! implementation so that scheduler bugs cannot hide behind shared code.

use soctam_soc::Soc;
use soctam_wrapper::{Rectangle, RectangleSet};

use crate::{CompiledSoc, Schedule, ScheduleError};

fn invalid(reason: String) -> ScheduleError {
    ScheduleError::Invalid { reason }
}

/// Checks a schedule against the SOC's structural constraints:
///
/// 1. every slice names a core of the SOC, and every core is tested to
///    completion, with the exact cycle count its wrapper design implies
///    (including preemption penalties);
/// 2. each core holds a constant TAM width, at least 1 and at most `W`;
/// 3. the sum of widths in use never exceeds `W`;
/// 4. precedence, concurrency (incl. hierarchy), and BIST-engine
///    constraints hold;
/// 5. no core is preempted beyond its budget.
///
/// Power is checked separately by [`validate_power`] because `P_max` is a
/// run parameter, not a property of the SOC.
///
/// Rebuilds each core's rectangle set from scratch; sweeps that validate
/// many schedules should compile a [`CompiledSoc`] once and call
/// [`validate_with`], which is bit-identical.
///
/// # Errors
///
/// [`ScheduleError::Invalid`] describing the first violated invariant.
pub fn validate(soc: &Soc, schedule: &Schedule) -> Result<(), ScheduleError> {
    validate_impl(soc, schedule, None)
}

/// [`validate`] over a precompiled context: the wrapper timing model is
/// read from the context's cached rectangle menus instead of being rebuilt
/// per call. Checks and error messages are identical to [`validate`].
///
/// # Errors
///
/// As for [`validate`].
pub fn validate_with(ctx: &CompiledSoc, schedule: &Schedule) -> Result<(), ScheduleError> {
    validate_impl(ctx.soc(), schedule, Some(ctx))
}

/// The rectangle a core's test occupies at `width` wires: read from the
/// context menus when they cover the width (per-width rectangles are
/// cap-prefix-stable, so this equals a fresh build), rebuilt otherwise.
fn rect_for(
    ctx: Option<&CompiledSoc>,
    soc: &Soc,
    core: usize,
    width: soctam_wrapper::TamWidth,
) -> Rectangle {
    match ctx {
        Some(c) if width <= c.full_menus().w_max() => c.full_menus().menu(core).rect_at(width),
        _ => RectangleSet::build(soc.core(core).test(), width).rect_at(width),
    }
}

/// Rejects any slice that names a core outside the SOC; shared by both
/// validators so their error messages cannot drift apart.
fn check_cores_exist(soc: &Soc, schedule: &Schedule) -> Result<(), ScheduleError> {
    for s in schedule.slices() {
        if s.core >= soc.len() {
            return Err(invalid(format!(
                "slice [{}..{}) references unknown core {} (SOC has {})",
                s.start,
                s.end,
                s.core,
                soc.len()
            )));
        }
    }
    Ok(())
}

fn validate_impl(
    soc: &Soc,
    schedule: &Schedule,
    ctx: Option<&CompiledSoc>,
) -> Result<(), ScheduleError> {
    let w = schedule.tam_width();

    // --- every slice names a real core -------------------------------
    check_cores_exist(soc, schedule)?;

    // --- per-core structure and timing -------------------------------
    for (idx, core) in soc.cores().iter().enumerate() {
        let slices = schedule.core_slices(idx);
        if slices.is_empty() {
            return Err(invalid(format!("core {idx} is never tested")));
        }
        let width = slices[0].width;
        if width == 0 || width > w {
            return Err(invalid(format!("core {idx} uses width {width} of {w}")));
        }
        for pair in slices.windows(2) {
            if pair[0].width != pair[1].width {
                return Err(invalid(format!("core {idx} changes width mid-test")));
            }
            if pair[0].end > pair[1].start {
                return Err(invalid(format!("core {idx} overlaps itself")));
            }
        }
        let busy: u64 = slices.iter().map(|s| s.duration()).sum();
        let preemptions = (slices.len() - 1) as u32;
        if preemptions > core.max_preemptions() {
            return Err(invalid(format!(
                "core {idx} preempted {preemptions} times, budget {}",
                core.max_preemptions()
            )));
        }
        let rect = rect_for(ctx, soc, idx, width);
        let expected = rect.time + u64::from(preemptions) * rect.preemption_penalty();
        if busy != expected {
            return Err(invalid(format!(
                "core {idx} tested for {busy} cycles, expected {expected} \
                 ({} base + {preemptions} preemptions)",
                rect.time
            )));
        }
    }

    // --- TAM width budget at every instant ---------------------------
    let mut events: Vec<u64> = schedule
        .slices()
        .iter()
        .flat_map(|s| [s.start, s.end])
        .collect();
    events.sort_unstable();
    events.dedup();
    for &t in &events {
        let used = schedule.width_in_use_at(t);
        if used > u32::from(w) {
            return Err(invalid(format!(
                "width {used} in use at cycle {t}, budget {w}"
            )));
        }
    }

    // --- precedence ---------------------------------------------------
    for &(before, after) in soc.precedence() {
        let b_end = schedule
            .core_slices(before)
            .last()
            .map(|s| s.end)
            .unwrap_or(0);
        let a_start = schedule
            .core_slices(after)
            .first()
            .map(|s| s.start)
            .unwrap_or(0);
        if b_end > a_start {
            return Err(invalid(format!(
                "precedence {before} < {after} violated: {before} ends at {b_end}, \
                 {after} starts at {a_start}"
            )));
        }
    }

    // --- concurrency (explicit + hierarchy) ---------------------------
    for (a, b) in soc.effective_concurrency() {
        for sa in schedule.core_slices(a) {
            for sb in schedule.core_slices(b) {
                if sa.overlaps(&sb) {
                    return Err(invalid(format!(
                        "concurrency {a} >< {b} violated in [{}..{}) and [{}..{})",
                        sa.start, sa.end, sb.start, sb.end
                    )));
                }
            }
        }
    }

    // --- shared BIST engines ------------------------------------------
    for (a, ca) in soc.cores().iter().enumerate() {
        let Some(engine) = ca.bist_engine() else {
            continue;
        };
        for (b, cb) in soc.cores().iter().enumerate().skip(a + 1) {
            if cb.bist_engine() != Some(engine) {
                continue;
            }
            for sa in schedule.core_slices(a) {
                for sb in schedule.core_slices(b) {
                    if sa.overlaps(&sb) {
                        return Err(invalid(format!(
                            "cores {a} and {b} share BIST engine {engine} but overlap"
                        )));
                    }
                }
            }
        }
    }

    Ok(())
}

/// Checks that total power of concurrently running tests never exceeds
/// `p_max`, using the cores' model power ratings.
///
/// # Errors
///
/// [`ScheduleError::Invalid`] naming the first overloaded instant, or an
/// unknown core referenced by a slice.
pub fn validate_power(soc: &Soc, schedule: &Schedule, p_max: u64) -> Result<(), ScheduleError> {
    check_cores_exist(soc, schedule)?;
    let mut events: Vec<u64> = schedule
        .slices()
        .iter()
        .flat_map(|s| [s.start, s.end])
        .collect();
    events.sort_unstable();
    events.dedup();
    for &t in &events {
        let power: u64 = schedule
            .slices()
            .iter()
            .filter(|s| s.start <= t && t < s.end)
            .map(|s| soc.core(s.core).power())
            .sum();
        if power > p_max {
            return Err(invalid(format!(
                "power {power} exceeds limit {p_max} at cycle {t}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Slice;
    use soctam_soc::{Core, Soc};
    use soctam_wrapper::CoreTest;

    fn soc1() -> Soc {
        let mut soc = Soc::new("v");
        soc.add_core(Core::new(
            "a",
            CoreTest::new(4, 4, 0, vec![16], 10).unwrap(),
        ));
        soc
    }

    fn correct_time(soc: &Soc, idx: usize, w: u16) -> u64 {
        RectangleSet::build(soc.core(idx).test(), w).time_at(w)
    }

    #[test]
    fn accepts_exact_single_core_schedule() {
        let soc = soc1();
        let t = correct_time(&soc, 0, 4);
        let s = Schedule::from_slices(
            "v",
            8,
            vec![Slice {
                core: 0,
                width: 4,
                start: 0,
                end: t,
            }],
        );
        assert!(validate(&soc, &s).is_ok());
    }

    #[test]
    fn rejects_missing_core() {
        let soc = soc1();
        let s = Schedule::from_slices("v", 8, vec![]);
        let err = validate(&soc, &s).unwrap_err();
        assert!(err.to_string().contains("never tested"));
    }

    #[test]
    fn rejects_wrong_duration() {
        let soc = soc1();
        let t = correct_time(&soc, 0, 4);
        let s = Schedule::from_slices(
            "v",
            8,
            vec![Slice {
                core: 0,
                width: 4,
                start: 0,
                end: t + 1,
            }],
        );
        assert!(validate(&soc, &s).is_err());
    }

    #[test]
    fn rejects_budget_violation() {
        let soc = soc1(); // budget 0
        let t = correct_time(&soc, 0, 4);
        let penalty = RectangleSet::build(soc.core(0).test(), 4)
            .rect_at(4)
            .preemption_penalty();
        let total = t + penalty;
        let cut = total / 2;
        let s = Schedule::from_slices(
            "v",
            8,
            vec![
                Slice {
                    core: 0,
                    width: 4,
                    start: 0,
                    end: cut,
                },
                Slice {
                    core: 0,
                    width: 4,
                    start: cut + 5,
                    end: total + 5,
                },
            ],
        );
        let err = validate(&soc, &s).unwrap_err();
        assert!(err.to_string().contains("preempted"));
    }

    #[test]
    fn rejects_width_overflow() {
        let mut soc = soc1();
        soc.add_core(Core::new(
            "b",
            CoreTest::new(4, 4, 0, vec![16], 10).unwrap(),
        ));
        let t = correct_time(&soc, 0, 6);
        let s = Schedule::from_slices(
            "v",
            8,
            vec![
                Slice {
                    core: 0,
                    width: 6,
                    start: 0,
                    end: t,
                },
                Slice {
                    core: 1,
                    width: 6,
                    start: 0,
                    end: t,
                },
            ],
        );
        let err = validate(&soc, &s).unwrap_err();
        assert!(err.to_string().contains("budget 8"));
    }

    #[test]
    fn rejects_precedence_violation() {
        let mut soc = soc1();
        soc.add_core(Core::new(
            "b",
            CoreTest::new(4, 4, 0, vec![16], 10).unwrap(),
        ));
        soc.add_precedence(1, 0).unwrap();
        let t0 = correct_time(&soc, 0, 4);
        let t1 = correct_time(&soc, 1, 4);
        let s = Schedule::from_slices(
            "v",
            8,
            vec![
                Slice {
                    core: 0,
                    width: 4,
                    start: 0,
                    end: t0,
                },
                Slice {
                    core: 1,
                    width: 4,
                    start: 0,
                    end: t1,
                },
            ],
        );
        let err = validate(&soc, &s).unwrap_err();
        assert!(err.to_string().contains("precedence"));
    }

    #[test]
    fn power_validator_catches_overload() {
        let mut soc = soc1();
        soc.add_core(Core::new(
            "b",
            CoreTest::new(4, 4, 0, vec![16], 10).unwrap(),
        ));
        let t = correct_time(&soc, 0, 4);
        let s = Schedule::from_slices(
            "v",
            8,
            vec![
                Slice {
                    core: 0,
                    width: 4,
                    start: 0,
                    end: t,
                },
                Slice {
                    core: 1,
                    width: 4,
                    start: 0,
                    end: t,
                },
            ],
        );
        let one = soc.core(0).power();
        assert!(validate_power(&soc, &s, 2 * one).is_ok());
        assert!(validate_power(&soc, &s, 2 * one - 1).is_err());
    }
}
