//! A sharded, bounded, TTL-aware cache of solved *results*.
//!
//! [`ContextRegistry`](crate::ContextRegistry) amortizes *compilation*: a
//! repeat request still re-runs the solver over its cached context.
//! [`SolutionCache`] closes that gap for a serving tier — it memoizes
//! whole request *outcomes*, keyed by whatever identifies a request
//! (`soctam_core`'s engine keys on the registry key plus width, mode, and
//! parameter grid), so a repeat request returns without invoking the
//! solver at all.
//!
//! The cache is deliberately generic over key, value, and error type: this
//! crate knows nothing about the flow-level result types layered above it,
//! and the test suite exercises the concurrency discipline with cheap
//! stand-ins.
//!
//! # Concurrency discipline
//!
//! Same sharding and in-flight coalescing as the registry: the shard lock
//! covers only the map probe, never a solve. A miss publishes an empty
//! per-entry cell and releases the shard; concurrent requests for the
//! *same* key rendezvous on that cell — exactly one runs the solver, the
//! rest block until the result is published ([`SolutionCacheStats::coalesced`]
//! counts them) — while requests for other keys proceed immediately.
//!
//! # Errors are not cached
//!
//! A failed solve is returned to every request that joined it, but the
//! entry is removed so the next request retries; transient failures do not
//! poison a key for the cache's lifetime
//! ([`SolutionCacheStats::failures`] counts them).
//!
//! # Panics are isolated
//!
//! A solve that *panics* is caught inside the rendezvous cell, so the
//! cell is always published and coalesced waiters never hang on an
//! abandoned in-flight slot. The panicked entry is torn down
//! ([`SolutionCacheStats::panics`] counts it), the panic is re-raised in
//! the thread whose solve panicked, and every coalesced waiter retries
//! with its own solve closure as if it had missed. Shard locks recover
//! from poisoning ([`lock_unpoisoned`](crate::sync::lock_unpoisoned))
//! rather than cascading a panic across unrelated requests.
//!
//! # Bounds
//!
//! Entry *count* is bounded per shard with LRU eviction, exactly like the
//! registry. Entry *lifetime* is optionally bounded by a TTL: expired
//! entries are evicted lazily on access, or in bulk via
//! [`SolutionCache::purge_expired`].
//!
//! # Example
//!
//! ```
//! use soctam_schedule::SolutionCache;
//!
//! let cache: SolutionCache<u32, u64, String> = SolutionCache::new(4, 64, None);
//! let a = cache.get_or_compute(7, || Ok(7 * 7)).unwrap();
//! let b = cache.get_or_compute(7, || panic!("never re-solved")).unwrap();
//! assert_eq!((a, b), (49, 49));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! ```

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::expiry::TtlPolicy;
use crate::sync::{lock_unpoisoned, panic_message};

/// What a rendezvous cell ends up holding: the solve's result, or the
/// rendered payload of the panic that killed it. Publishing the panic
/// instead of abandoning the cell is what keeps coalesced waiters from
/// blocking forever on a slot whose solver died.
enum SlotOutcome<V, E> {
    Done(Result<V, E>),
    Panicked(String),
}

/// One cache slot. As in the registry, the result lives behind a
/// `OnceLock` cell so the solve happens outside the shard lock and
/// same-key requests rendezvous on the cell.
struct Slot<V, E> {
    cell: Arc<OnceLock<SlotOutcome<V, E>>>,
    last_used: u64,
    deadline: Option<Instant>,
}

/// How one [`SolutionCache::get_or_compute_traced`] request was disposed
/// of — the per-request counterpart of the cumulative
/// [`SolutionCacheStats`], so a serving tier can log each request's cache
/// outcome without diffing racy global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Served from a completed cached result; the solver never ran.
    Hit,
    /// No usable entry; this request ran (or was first in line to run)
    /// the solve.
    Miss,
    /// Joined a solve already in flight for the same key.
    Coalesced,
}

impl CacheLookup {
    /// The lookup as a lowercase label (`hit`/`miss`/`coalesced`), the
    /// form request logs use.
    pub fn label(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Coalesced => "coalesced",
        }
    }
}

/// Cumulative counters of one solution cache's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolutionCacheStats {
    /// Requests served from a completed cached result.
    pub hits: u64,
    /// Requests that started a solve.
    pub misses: u64,
    /// Requests that joined a solve already in flight for their key
    /// (the dogpile the cache prevents: N identical concurrent requests
    /// cost one solve, not N).
    pub coalesced: u64,
    /// Entries dropped by the bounded-size LRU policy.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expiries: u64,
    /// Solves that returned an error (the entry is removed, not cached).
    pub failures: u64,
    /// Solves that panicked (caught, torn down, and re-raised in the
    /// panicking thread; coalesced waiters retried instead of hanging).
    pub panics: u64,
}

impl SolutionCacheStats {
    /// Fraction of requests that skipped the solver (hit or coalesced);
    /// `0` when no request has been served.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

/// Sharded, LRU+TTL-bounded, thread-safe cache of solved results with
/// in-flight request coalescing. See the [module docs](self).
pub struct SolutionCache<K, V, E> {
    shards: Vec<Mutex<HashMap<K, Slot<V, E>>>>,
    per_shard_capacity: usize,
    ttl: TtlPolicy,
    hasher: RandomState,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    expiries: AtomicU64,
    failures: AtomicU64,
    panics: AtomicU64,
}

impl<K, V, E> SolutionCache<K, V, E>
where
    K: Hash + Eq + Clone,
    V: Clone,
    E: Clone,
{
    /// Default shard count, matching the registry's.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Creates a cache with `shards` independently locked shards, room for
    /// `capacity` results in total (each shard holds at most
    /// `capacity / shards`, minimum one; both arguments clamp to at least
    /// 1), and an optional entry TTL.
    pub fn new(shards: usize, capacity: usize, ttl: Option<Duration>) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity,
            ttl: TtlPolicy::new(ttl),
            hasher: RandomState::new(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expiries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// The cached result for `key`, solving (and caching) via `solve` on a
    /// miss.
    ///
    /// Exactly one of any set of concurrent same-key requests runs
    /// `solve`; the rest block on the entry's cell and receive a clone of
    /// the published result. `Err` results are returned to every joined
    /// request but removed from the cache, so a later request retries.
    ///
    /// # Errors
    ///
    /// Whatever `solve` (or the solve this request coalesced onto)
    /// returned.
    pub fn get_or_compute(&self, key: K, solve: impl FnOnce() -> Result<V, E>) -> Result<V, E> {
        self.get_or_compute_traced(key, solve).0
    }

    /// [`SolutionCache::get_or_compute`], additionally reporting how this
    /// request was disposed of (hit / miss / coalesced) so callers can log
    /// per-request cache outcomes.
    ///
    /// # Errors
    ///
    /// As [`SolutionCache::get_or_compute`].
    pub fn get_or_compute_traced(
        &self,
        key: K,
        solve: impl FnOnce() -> Result<V, E>,
    ) -> (Result<V, E>, CacheLookup) {
        let shard = &self.shards[self.shard_of(&key)];
        // `solve` is consumed only by the request that actually runs it;
        // a waiter whose in-flight solver panicked still holds its own
        // closure and retries with it instead of hanging or giving up.
        let mut solve = Some(solve);

        loop {
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
            let (cell, lookup) = {
                let mut map = lock_unpoisoned(shard);
                // An entry past its deadline is dead even if resident;
                // treat the access as a miss. In-flight entries (cell not
                // yet set) are never expired out from under their solver —
                // the deadline clock starts at insertion but a slow first
                // solve still coalesces correctly. An entry whose solve
                // panicked is dead too: its publisher tears it down, but a
                // racing probe may see it first and must not serve it.
                let mut resident = None;
                if let Some(slot) = map.get_mut(&key) {
                    let completed = slot.cell.get();
                    let panicked = matches!(completed, Some(SlotOutcome::Panicked(_)));
                    if panicked
                        || (completed.is_some()
                            && TtlPolicy::expired(slot.deadline, Instant::now()))
                    {
                        map.remove(&key);
                        if !panicked {
                            self.expiries.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        slot.last_used = stamp;
                        let lookup = if completed.is_some() {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            CacheLookup::Hit
                        } else {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            CacheLookup::Coalesced
                        };
                        resident = Some((Arc::clone(&slot.cell), lookup));
                    }
                }
                match resident {
                    Some(found) => found,
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        if map.len() >= self.per_shard_capacity {
                            // Victim selection skips in-flight slots:
                            // evicting a slot whose cell is unset would
                            // discard the solve in progress and detach
                            // later same-key requests from it (re-solving
                            // instead of coalescing). When every slot is
                            // in flight the shard over-admits by one —
                            // in-flight slots always complete and become
                            // evictable.
                            let lru = map
                                .iter()
                                .filter(|(_, slot)| slot.cell.get().is_some())
                                .min_by_key(|(_, slot)| slot.last_used)
                                .map(|(k, _)| k.clone());
                            if let Some(lru) = lru {
                                map.remove(&lru);
                                self.evictions.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        let cell = Arc::new(OnceLock::new());
                        map.insert(
                            key.clone(),
                            Slot {
                                cell: Arc::clone(&cell),
                                last_used: stamp,
                                deadline: self.ttl.deadline(),
                            },
                        );
                        (cell, CacheLookup::Miss)
                    }
                }
            };

            // Outside the shard lock: `get_or_init` guarantees exactly one
            // closure runs per cell no matter how many requests rendezvous
            // on it — usually the inserting request's, but a coalesced
            // request that arrives at an empty cell first solves in its
            // stead, which is just as correct (every request carries the
            // same work). `ran` tells us whether ours ran, so exactly one
            // request handles a failure. The solve runs under
            // `catch_unwind` so a panicking solver still publishes the
            // cell: waiters blocked on it are released instead of hanging
            // on an abandoned slot, and `get_or_init` itself is never
            // poisoned.
            let mut ran = false;
            let outcome = cell.get_or_init(|| {
                ran = true;
                let solve = solve.take().expect("solve closure still available");
                match catch_unwind(AssertUnwindSafe(solve)) {
                    Ok(result) => SlotOutcome::Done(result),
                    Err(payload) => SlotOutcome::Panicked(panic_message(payload.as_ref())),
                }
            });

            match outcome {
                SlotOutcome::Done(result) => {
                    let result = result.clone();
                    if ran && result.is_err() {
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        let mut map = lock_unpoisoned(shard);
                        // Only remove the entry this solve published — the
                        // key may already hold a newer entry from a later
                        // request.
                        if map.get(&key).is_some_and(|s| Arc::ptr_eq(&s.cell, &cell)) {
                            map.remove(&key);
                        }
                    }
                    return (result, lookup);
                }
                SlotOutcome::Panicked(message) => {
                    // Tear the dead slot down (idempotent under the
                    // ptr_eq guard — probes racing with us remove it too)
                    // so later requests re-solve instead of rendezvousing
                    // with a corpse.
                    {
                        let mut map = lock_unpoisoned(shard);
                        if map.get(&key).is_some_and(|s| Arc::ptr_eq(&s.cell, &cell)) {
                            map.remove(&key);
                        }
                    }
                    if ran {
                        // The panic was ours: re-raise it now that the
                        // cell is published and the entry torn down, so
                        // the caller's own isolation layer (the engine's
                        // catch_unwind) sees it exactly once.
                        self.panics.fetch_add(1, Ordering::Relaxed);
                        panic!("solution-cache solve panicked: {message}");
                    }
                    // A waiter: the solve we coalesced onto died, but our
                    // own closure is untouched — retry as a fresh miss.
                }
            }
        }
    }

    /// Only returns a completed, unexpired cached result; never solves,
    /// never blocks on an in-flight solve, counts neither hit nor miss.
    pub fn peek(&self, key: &K) -> Option<V> {
        let now = Instant::now();
        let map = lock_unpoisoned(&self.shards[self.shard_of(key)]);
        let slot = map.get(key)?;
        if TtlPolicy::expired(slot.deadline, now) {
            return None;
        }
        match slot.cell.get()? {
            SlotOutcome::Done(r) => r.as_ref().ok().cloned(),
            SlotOutcome::Panicked(_) => None,
        }
    }

    /// Drops every entry whose TTL has elapsed (in-flight solves are
    /// spared), returning how many were dropped. Expiries are counted in
    /// [`SolutionCache::stats`].
    pub fn purge_expired(&self) -> usize {
        let now = Instant::now();
        let mut dropped = 0;
        for shard in &self.shards {
            let mut map = lock_unpoisoned(shard);
            let before = map.len();
            map.retain(|_, slot| {
                slot.cell.get().is_none() || !TtlPolicy::expired(slot.deadline, now)
            });
            dropped += before - map.len();
        }
        self.expiries.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Number of results currently resident (including expired entries not
    /// yet lazily evicted and solves still in flight).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_unpoisoned(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (shards × per-shard bound).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard_capacity
    }

    /// Drops every cached result (stats are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock_unpoisoned(shard).clear();
        }
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> SolutionCacheStats {
        SolutionCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expiries: self.expiries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) % self.shards.len() as u64) as usize
    }
}

impl<K, V, E> std::fmt::Debug for SolutionCache<K, V, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolutionCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("ttl", &self.ttl)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    type Cache = SolutionCache<u32, u64, String>;

    #[test]
    fn repeat_requests_solve_once() {
        let cache = Cache::new(4, 16, None);
        let solves = AtomicUsize::new(0);
        for _ in 0..5 {
            let got = cache
                .get_or_compute(3, || {
                    solves.fetch_add(1, Ordering::Relaxed);
                    Ok(30)
                })
                .unwrap();
            assert_eq!(got, 30);
        }
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 4));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_onto_one_solve() {
        const THREADS: usize = 8;
        let cache = Cache::new(1, 16, None);
        let solves = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    let got = cache
                        .get_or_compute(9, || {
                            solves.fetch_add(1, Ordering::Relaxed);
                            // Long enough that every barrier-released peer
                            // arrives while the solve is in flight.
                            std::thread::sleep(Duration::from_millis(300));
                            Ok(99)
                        })
                        .unwrap();
                    assert_eq!(got, 99);
                });
            }
        });
        // The pinned invariant: N identical concurrent requests, one solve.
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(
            stats.hits + stats.coalesced,
            (THREADS - 1) as u64,
            "every other request was served without solving"
        );
        assert!(
            stats.coalesced >= 1,
            "at least one request joined the in-flight solve"
        );
    }

    #[test]
    fn errors_are_returned_but_not_cached() {
        let cache = Cache::new(2, 8, None);
        let solves = AtomicUsize::new(0);
        let err = cache.get_or_compute(5, || {
            solves.fetch_add(1, Ordering::Relaxed);
            Err::<u64, _>("boom".to_owned())
        });
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(cache.len(), 0, "failed entry removed");
        assert_eq!(cache.stats().failures, 1);
        // The next request retries.
        let ok = cache.get_or_compute(5, || {
            solves.fetch_add(1, Ordering::Relaxed);
            Ok(50)
        });
        assert_eq!(ok.unwrap(), 50);
        assert_eq!(solves.load(Ordering::Relaxed), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let cache = Cache::new(1, 2, None);
        cache.get_or_compute(1, || Ok(10)).unwrap(); // stamp 0
        cache.get_or_compute(2, || Ok(20)).unwrap(); // stamp 1
        cache.get_or_compute(1, || Ok(10)).unwrap(); // touch 1 → stamp 2
        cache.get_or_compute(3, || Ok(30)).unwrap(); // full → evicts 2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.peek(&1), Some(10), "recently used survives");
        assert_eq!(cache.peek(&2), None, "LRU entry evicted");
        assert_eq!(cache.peek(&3), Some(30));
    }

    #[test]
    fn lru_never_evicts_an_in_flight_slot() {
        // Capacity-1 shard: while key 1's solve is in flight, a request
        // for key 2 is at capacity and must over-admit rather than evict
        // the in-flight slot — evicting it would discard the solve in
        // progress and break same-key coalescing under capacity pressure.
        let cache = Cache::new(1, 1, None);
        let solves_of_1 = AtomicUsize::new(0);
        // Two rendezvous points with the in-flight solver: `entered` proves
        // the solve is in flight before the pressure request runs;
        // `release` holds it in flight until the coalescing request joined.
        let entered = Barrier::new(2);
        let release = Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let got = cache
                    .get_or_compute(1, || {
                        solves_of_1.fetch_add(1, Ordering::Relaxed);
                        entered.wait();
                        release.wait();
                        Ok(10)
                    })
                    .unwrap();
                assert_eq!(got, 10);
            });
            entered.wait();

            // Capacity pressure while key 1 is in flight: over-admit.
            let (got, lookup) = cache.get_or_compute_traced(2, || Ok(20));
            assert_eq!(got.unwrap(), 20);
            assert_eq!(lookup, CacheLookup::Miss);
            assert_eq!(cache.len(), 2, "over-admitted past capacity by one");
            assert_eq!(cache.stats().evictions, 0, "in-flight slot spared");

            // A same-key request must still coalesce onto the in-flight
            // solve, not start its own.
            let joiner = scope.spawn(|| cache.get_or_compute_traced(1, || panic!("must coalesce")));
            // The joiner observes the unset cell under the shard lock and
            // blocks on it; release the solver once it has registered.
            while cache.stats().coalesced == 0 {
                std::thread::yield_now();
            }
            release.wait();
            let (joined, lookup) = joiner.join().unwrap();
            assert_eq!(joined.unwrap(), 10);
            assert_eq!(lookup, CacheLookup::Coalesced);
        });
        assert_eq!(solves_of_1.load(Ordering::Relaxed), 1, "one solve of key 1");
        // With key 1 completed, the next capacity pressure evicts normally.
        cache.get_or_compute(3, || Ok(30)).unwrap();
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn panicking_solve_does_not_hang_coalesced_waiters() {
        // The resilience invariant this cache pins: a solver that panics
        // mid-flight must release every request coalesced onto its slot.
        // Before the `SlotOutcome` cell, the panic escaped `get_or_init`
        // with the cell unset — waiters blocked on it were stuck forever
        // (or killed by `Once` poisoning).
        const WAITERS: usize = 4;
        let cache = Cache::new(1, 16, None);
        let entered = Barrier::new(2);
        let release = Barrier::new(2);
        std::thread::scope(|scope| {
            let panicker = scope.spawn(|| {
                cache.get_or_compute(9, || {
                    entered.wait();
                    release.wait();
                    panic!("solver died mid-flight");
                })
            });
            entered.wait();
            // Every waiter joins the in-flight solve before it panics.
            let waiters: Vec<_> = (0..WAITERS)
                .map(|_| scope.spawn(|| cache.get_or_compute(9, || Ok(99))))
                .collect();
            while cache.stats().coalesced < WAITERS as u64 {
                std::thread::yield_now();
            }
            release.wait();
            // The panicking thread re-raises; its join reports the panic.
            assert!(panicker.join().is_err(), "panic re-raised in its thread");
            // Waiters retry with their own closures and complete.
            for w in waiters {
                assert_eq!(w.join().unwrap().unwrap(), 99, "waiter released");
            }
        });
        assert_eq!(cache.stats().panics, 1);
        // The dead slot was torn down and replaced by a retry's entry.
        assert_eq!(cache.peek(&9), Some(99));
        // The shard survived: later traffic behaves normally.
        assert_eq!(cache.get_or_compute(9, || Ok(0)).unwrap(), 99);
    }

    #[test]
    fn panicked_entry_is_removed_and_next_request_resolves() {
        let cache = Cache::new(2, 8, None);
        let died = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_compute(5, || -> Result<u64, String> { panic!("boom") })
        }));
        assert!(died.is_err());
        assert_eq!(cache.len(), 0, "panicked entry torn down");
        assert_eq!(cache.stats().panics, 1);
        assert_eq!(cache.get_or_compute(5, || Ok(50)).unwrap(), 50);
        assert_eq!(cache.stats().panics, 1, "clean retry counts no panic");
    }

    #[test]
    fn traced_lookups_label_every_disposition() {
        let cache = Cache::new(1, 4, None);
        let (_, first) = cache.get_or_compute_traced(1, || Ok(10));
        let (_, second) = cache.get_or_compute_traced(1, || Ok(10));
        assert_eq!(first, CacheLookup::Miss);
        assert_eq!(second, CacheLookup::Hit);
        assert_eq!(CacheLookup::Miss.label(), "miss");
        assert_eq!(CacheLookup::Hit.label(), "hit");
        assert_eq!(CacheLookup::Coalesced.label(), "coalesced");
    }

    #[test]
    fn ttl_expires_entries_lazily_and_in_bulk() {
        let cache = Cache::new(2, 8, Some(Duration::from_millis(40)));
        cache.get_or_compute(1, || Ok(10)).unwrap();
        cache.get_or_compute(2, || Ok(20)).unwrap();
        assert_eq!(cache.peek(&1), Some(10), "fresh entry servable");
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(cache.peek(&1), None, "expired entry not servable");
        // Lazy eviction on access re-solves.
        let solves = AtomicUsize::new(0);
        cache
            .get_or_compute(1, || {
                solves.fetch_add(1, Ordering::Relaxed);
                Ok(11)
            })
            .unwrap();
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().expiries, 1);
        // Bulk purge drops the remaining expired entry but keeps the
        // freshly re-solved one.
        assert_eq!(cache.purge_expired(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().expiries, 2);
        assert_eq!(cache.peek(&1), Some(11));
    }

    #[test]
    fn no_ttl_means_no_expiry() {
        let cache = Cache::new(1, 4, None);
        cache.get_or_compute(1, || Ok(10)).unwrap();
        assert_eq!(cache.purge_expired(), 0);
        assert_eq!(cache.peek(&1), Some(10));
    }

    #[test]
    fn clear_and_capacity() {
        let cache = Cache::new(0, 0, None);
        assert_eq!(cache.capacity(), 1);
        cache.get_or_compute(1, || Ok(1)).unwrap();
        cache.get_or_compute(2, || Ok(2)).unwrap();
        assert_eq!(cache.len(), 1, "capacity-1 cache keeps one entry");
        assert_eq!(cache.stats().evictions, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2, "stats survive clear");
    }

    #[test]
    fn hit_rate_counts_coalesced_as_served() {
        let s = SolutionCacheStats {
            hits: 2,
            misses: 1,
            coalesced: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SolutionCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn cache_is_send_sync_static() {
        fn takes<T: Send + Sync + 'static>(_: &T) {}
        takes(&Cache::new(2, 8, None));
    }
}
