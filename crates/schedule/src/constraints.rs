//! Constraint bookkeeping for the scheduler: the `Conflict` subroutine of
//! Figure 7, precompiled from the SOC model.

use soctam_soc::{CoreIdx, Soc};

use crate::bitset::BitSet;

/// Precompiled constraint tables for one SOC.
///
/// Precedence is stored as, per core, the list of cores that must complete
/// *before* it; concurrency (including hierarchy-derived pairs) as a
/// per-core adjacency list; BIST engines as per-core engine ids. The
/// scheduler queries [`ConstraintSet::conflicts`] (the paper's `Conflict`)
/// before every assignment, feeding it incrementally maintained state so
/// the check allocates nothing.
#[derive(Debug, Clone)]
pub struct ConstraintSet {
    predecessors: Vec<Vec<CoreIdx>>,
    excludes: Vec<Vec<CoreIdx>>,
    /// `pred_masks[i]` — the predecessor list of core `i` as a bitset, so
    /// the precedence check is a word-level subset test against `complete`.
    pred_masks: Vec<BitSet>,
    /// `excl_masks[i]` — the exclusion list of core `i` as a bitset, so the
    /// concurrency check is a word-AND any-set scan against `scheduled`.
    excl_masks: Vec<BitSet>,
    bist: Vec<Option<usize>>,
    power: Vec<u64>,
    num_bist_engines: usize,
}

impl ConstraintSet {
    /// Compiles the constraint tables from an SOC model.
    pub fn compile(soc: &Soc) -> Self {
        crate::instrument::note_constraint_compile();
        let n = soc.len();
        let mut predecessors = vec![Vec::new(); n];
        for &(before, after) in soc.precedence() {
            predecessors[after].push(before);
        }
        let mut excludes = vec![Vec::new(); n];
        for (a, b) in soc.effective_concurrency() {
            excludes[a].push(b);
            excludes[b].push(a);
        }
        // Raw engine ids are arbitrary (sparse, possibly huge); remap them
        // to dense indices so the occupancy table stays at most n entries.
        let mut engine_ids: Vec<usize> = Vec::new();
        let bist: Vec<Option<usize>> = soc
            .cores()
            .iter()
            .map(|c| {
                c.bist_engine().map(|raw| {
                    engine_ids
                        .iter()
                        .position(|&e| e == raw)
                        .unwrap_or_else(|| {
                            engine_ids.push(raw);
                            engine_ids.len() - 1
                        })
                })
            })
            .collect();
        let power: Vec<u64> = soc.cores().iter().map(|c| c.power()).collect();
        let num_bist_engines = engine_ids.len();
        let masks = |lists: &[Vec<CoreIdx>]| {
            lists
                .iter()
                .map(|list| {
                    let mut mask = BitSet::new(n);
                    for &i in list {
                        mask.insert(i);
                    }
                    mask
                })
                .collect()
        };
        let pred_masks = masks(&predecessors);
        let excl_masks = masks(&excludes);
        Self {
            predecessors,
            excludes,
            pred_masks,
            excl_masks,
            bist,
            power,
            num_bist_engines,
        }
    }

    /// Number of cores covered.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// Whether the set covers no cores.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Cores that must complete before `core` may start.
    pub fn predecessors(&self, core: CoreIdx) -> &[CoreIdx] {
        &self.predecessors[core]
    }

    /// Cores that may never run concurrently with `core`.
    pub fn excludes(&self, core: CoreIdx) -> &[CoreIdx] {
        &self.excludes[core]
    }

    /// Power rating of `core`'s test.
    pub fn power(&self, core: CoreIdx) -> u64 {
        self.power[core]
    }

    /// Dense BIST-engine index of `core`, if it shares an engine. Raw SOC
    /// engine ids are remapped to `0..num_bist_engines()` at compile time;
    /// two cores share an engine iff their dense indices are equal.
    pub fn bist_engine(&self, core: CoreIdx) -> Option<usize> {
        self.bist[core]
    }

    /// Number of distinct BIST engines; occupancy tables passed to
    /// [`ConstraintSet::conflicts`] must have this length.
    pub fn num_bist_engines(&self) -> usize {
        self.num_bist_engines
    }

    /// The paper's `Conflict` check (Figure 7): would starting `core` now
    /// violate a precedence, concurrency, power, or BIST constraint?
    ///
    /// * `complete` and `scheduled` are per-core status bitsets, maintained
    ///   incrementally by the caller as tests are assigned and retired;
    /// * `bist_load` counts the scheduled tests per BIST engine
    ///   ([`ConstraintSet::num_bist_engines`] entries);
    /// * `scheduled_power` is the power of currently scheduled tests;
    /// * `p_max` is the optional ceiling.
    ///
    /// `core` itself must not be scheduled. The check reads the shared
    /// state directly and performs no heap allocation; the precedence and
    /// concurrency legs are word-level mask scans over the precompiled
    /// per-core bitsets — a handful of `u64` ops per candidate instead of a
    /// per-index walk ([`ConstraintSet::conflicts_reference`] is the naive
    /// equivalent, pinned bit-identical by the `conflict_masks` proptest).
    pub fn conflicts(
        &self,
        core: CoreIdx,
        complete: &BitSet,
        scheduled: &BitSet,
        bist_load: &[u32],
        scheduled_power: u64,
        p_max: Option<u64>,
    ) -> bool {
        debug_assert!(!scheduled.contains(core), "candidate already scheduled");
        // (i) precedence: all predecessors must have completed.
        if !complete.contains_all(&self.pred_masks[core]) {
            return true;
        }
        // (ii) concurrency: no excluded core may be scheduled.
        if scheduled.intersects(&self.excl_masks[core]) {
            return true;
        }
        // (iii) power ceiling.
        if let Some(p_max) = p_max {
            if scheduled_power + self.power[core] > p_max {
                return true;
            }
        }
        // (iv) BIST-engine sharing: any scheduled occupant blocks (the
        // candidate is unscheduled, so occupancy > 0 means someone else).
        if let Some(engine) = self.bist[core] {
            if bist_load[engine] > 0 {
                return true;
            }
        }
        false
    }

    /// The naive per-index reference implementation of
    /// [`ConstraintSet::conflicts`]: walks the predecessor and exclusion
    /// adjacency lists one core at a time. Kept as the semantic ground
    /// truth for the mask path — the `conflict_masks` proptest and the
    /// `conflicts` criterion microbench compare against it. Not used on any
    /// hot path.
    pub fn conflicts_reference(
        &self,
        core: CoreIdx,
        complete: &BitSet,
        scheduled: &BitSet,
        bist_load: &[u32],
        scheduled_power: u64,
        p_max: Option<u64>,
    ) -> bool {
        debug_assert!(!scheduled.contains(core), "candidate already scheduled");
        for &p in &self.predecessors[core] {
            if !complete.contains(p) {
                return true;
            }
        }
        for &x in &self.excludes[core] {
            if scheduled.contains(x) {
                return true;
            }
        }
        if let Some(p_max) = p_max {
            if scheduled_power + self.power[core] > p_max {
                return true;
            }
        }
        if let Some(engine) = self.bist[core] {
            if bist_load[engine] > 0 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_soc::{Core, Soc};
    use soctam_wrapper::CoreTest;

    fn tiny(name: &str) -> Core {
        Core::new(name, CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
    }

    fn soc_with(f: impl FnOnce(&mut Soc)) -> Soc {
        let mut soc = Soc::new("t");
        soc.add_core(tiny("a"));
        soc.add_core(tiny("b"));
        soc.add_core(tiny("c"));
        f(&mut soc);
        soc
    }

    /// Drives the bitset-based `conflicts` from plain boolean slices,
    /// recomputing the BIST occupancy the scheduler maintains incrementally.
    fn conflicts(
        cs: &ConstraintSet,
        core: CoreIdx,
        complete: &[bool],
        scheduled: &[bool],
        scheduled_power: u64,
        p_max: Option<u64>,
    ) -> bool {
        let mut bist_load = vec![0u32; cs.num_bist_engines()];
        for (j, &s) in scheduled.iter().enumerate() {
            if s {
                if let Some(e) = cs.bist_engine(j) {
                    bist_load[e] += 1;
                }
            }
        }
        let complete = BitSet::from_bools(complete);
        let scheduled = BitSet::from_bools(scheduled);
        let masked = cs.conflicts(
            core,
            &complete,
            &scheduled,
            &bist_load,
            scheduled_power,
            p_max,
        );
        let reference = cs.conflicts_reference(
            core,
            &complete,
            &scheduled,
            &bist_load,
            scheduled_power,
            p_max,
        );
        assert_eq!(masked, reference, "mask path diverged from reference");
        masked
    }

    #[test]
    fn precedence_blocks_until_complete() {
        let soc = soc_with(|s| s.add_precedence(0, 1).unwrap());
        let cs = ConstraintSet::compile(&soc);
        let scheduled = [false; 3];
        assert!(conflicts(
            &cs,
            1,
            &[false, false, false],
            &scheduled,
            0,
            None
        ));
        assert!(!conflicts(
            &cs,
            1,
            &[true, false, false],
            &scheduled,
            0,
            None
        ));
        // Core 0 itself is unconstrained.
        assert!(!conflicts(&cs, 0, &[false; 3], &scheduled, 0, None));
    }

    #[test]
    fn concurrency_blocks_while_scheduled() {
        let soc = soc_with(|s| s.add_concurrency(0, 2).unwrap());
        let cs = ConstraintSet::compile(&soc);
        let complete = [false; 3];
        assert!(conflicts(&cs, 2, &complete, &[true, false, false], 0, None));
        assert!(conflicts(&cs, 0, &complete, &[false, false, true], 0, None));
        assert!(!conflicts(
            &cs,
            2,
            &complete,
            &[false, true, false],
            0,
            None
        ));
    }

    #[test]
    fn hierarchy_pairs_included() {
        let mut soc = Soc::new("t");
        let p = soc.add_core(tiny("p"));
        soc.add_core(
            Core::builder("child", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .parent(p)
                .build(),
        );
        let cs = ConstraintSet::compile(&soc);
        assert!(conflicts(&cs, 1, &[false; 2], &[true, false], 0, None));
    }

    #[test]
    fn power_ceiling_enforced() {
        let soc = soc_with(|_| ());
        let cs = ConstraintSet::compile(&soc);
        let p = cs.power(0);
        assert!(p > 0);
        // Another core already burns p; ceiling 2p-1 blocks, 2p admits.
        assert!(conflicts(
            &cs,
            0,
            &[false; 3],
            &[false; 3],
            p,
            Some(2 * p - 1)
        ));
        assert!(!conflicts(&cs, 0, &[false; 3], &[false; 3], p, Some(2 * p)));
        // No ceiling, no conflict.
        assert!(!conflicts(
            &cs,
            0,
            &[false; 3],
            &[false; 3],
            u64::MAX - p,
            None
        ));
    }

    #[test]
    fn bist_engine_sharing_blocks() {
        let mut soc = Soc::new("t");
        soc.add_core(
            Core::builder("a", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .bist_engine(0)
                .build(),
        );
        soc.add_core(
            Core::builder("b", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .bist_engine(0)
                .build(),
        );
        soc.add_core(
            Core::builder("c", CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                .bist_engine(1)
                .build(),
        );
        let cs = ConstraintSet::compile(&soc);
        assert!(conflicts(
            &cs,
            1,
            &[false; 3],
            &[true, false, false],
            0,
            None
        ));
        assert!(!conflicts(
            &cs,
            2,
            &[false; 3],
            &[true, false, false],
            0,
            None
        ));
    }

    #[test]
    fn sparse_huge_bist_ids_are_densified() {
        // Raw ids are arbitrary (sparse, possibly usize::MAX); the
        // occupancy table must stay small and sharing must still be
        // detected by id equality, not by indexing with the raw id.
        let mut soc = Soc::new("t");
        for (name, id) in [("a", usize::MAX), ("b", 10_000_000), ("c", usize::MAX)] {
            soc.add_core(
                Core::builder(name, CoreTest::new(2, 2, 0, vec![4], 5).unwrap())
                    .bist_engine(id)
                    .build(),
            );
        }
        let cs = ConstraintSet::compile(&soc);
        assert_eq!(cs.num_bist_engines(), 2);
        assert_eq!(cs.bist_engine(0), cs.bist_engine(2));
        assert_ne!(cs.bist_engine(0), cs.bist_engine(1));
        // a and c share an engine; b does not.
        assert!(conflicts(
            &cs,
            2,
            &[false; 3],
            &[true, false, false],
            0,
            None
        ));
        assert!(!conflicts(
            &cs,
            1,
            &[false; 3],
            &[true, false, false],
            0,
            None
        ));
    }
}
