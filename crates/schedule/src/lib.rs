//! # soctam-schedule
//!
//! Constraint-driven, selectively preemptive SOC test scheduling via
//! generalized rectangle packing — the primary contribution of Iyengar,
//! Chakrabarty & Marinissen, DAC 2002 (Figures 4–8).
//!
//! Given an SOC model ([`soctam_soc::Soc`]) and a total TAM width `W`, the
//! scheduler:
//!
//! 1. builds every core's Pareto-optimal rectangle menu and *preferred TAM
//!    width* (smallest width within `m`% of the core's best time, bumped to
//!    the highest Pareto-optimal width when at most `d` wires away);
//! 2. packs one rectangle per core into the `W × time` bin with a
//!    three-priority selection rule, filling idle wires by squeezing
//!    near-fit rectangles (within 3 wires) and widening rectangles that
//!    begin at the current instant;
//! 3. honours precedence, concurrency, power, and BIST-engine constraints,
//!    and preempts tests within each core's preemption budget, charging one
//!    extra scan-in + scan-out per actual interruption.
//!
//! The result is a [`Schedule`] of time slices that an independent
//! [`validate`](crate::validate::validate) re-checks against every
//! constraint.
//!
//! # Amortizing sweeps: [`CompiledSoc`]
//!
//! Everything a run derives from the SOC alone — per-core Pareto rectangle
//! menus, compiled constraint tables, lower-bound ingredients — is
//! invariant across the `(m, d, slack) × width` parameter sweeps the
//! paper's methodology calls for. [`CompiledSoc::compile`] precomputes it
//! once; [`ScheduleBuilder::with_context`],
//! [`CompiledSoc::lower_bound`], and
//! [`validate_with`](crate::validate::validate_with) then reuse it with
//! bit-identical results, as do the `soctam-baseline` architectures and
//! the `soctam-core` flow.
//!
//! # Ownership model: contexts outlive requests
//!
//! A [`CompiledSoc`] *owns* its SOC (`Arc<Soc>`), so it carries no
//! lifetime: it can be compiled once, moved across threads, cached, and
//! shared by any number of later requests. Short-lived handles —
//! [`ScheduleBuilder`], validation calls — borrow a context; long-lived
//! ownership lives in `Arc<CompiledSoc>`, usually managed by a
//! [`ContextRegistry`]: a sharded, bounded, thread-safe cache keyed by
//! `(SOC content, w_max, power budget)` with LRU eviction and hit/miss
//! instrumentation. `soctam_core`'s `Engine` serves whole request batches
//! through one registry; cross-request caching falls out of the keying.
//! Per-cap rectangle menus inside a context are prefix-derived from the
//! full-cap build ([`RectangleMenus::prefix`]) instead of rebuilt.
//!
//! One tier above the registry, a [`SolutionCache`] memoizes whole solved
//! *results* (sharded, LRU+TTL-bounded, with in-flight request
//! coalescing), so a repeat request skips the solver entirely; the same
//! TTL machinery gives the registry time-based expiry
//! ([`ContextRegistry::with_ttl`]) for long-lived daemons.
//!
//! # Example
//!
//! ```
//! use soctam_schedule::{ScheduleBuilder, SchedulerConfig};
//! use soctam_soc::benchmarks;
//!
//! # fn main() -> Result<(), soctam_schedule::ScheduleError> {
//! let soc = benchmarks::d695();
//! let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(16)).run()?;
//! assert!(schedule.makespan() > 0);
//! soctam_schedule::validate::validate(&soc, &schedule)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod bounds;
mod config;
mod constraints;
mod context;
mod error;
mod expiry;
pub mod instrument;
mod menus;
pub mod obs;
mod optimizer;
mod registry;
mod schedule;
mod solution_cache;
mod state;
mod svg;
pub mod sync;
pub mod validate;

pub use bitset::BitSet;
pub use config::{HeuristicToggles, SchedulerConfig};
pub use constraints::ConstraintSet;
pub use context::CompiledSoc;
pub use error::ScheduleError;
pub use menus::RectangleMenus;
pub use optimizer::{
    schedule_best, schedule_best_with, schedule_best_with_stats, ScheduleBuilder, SweepStats,
};
pub use registry::{ContextRegistry, RegistryStats};
pub use schedule::{CoreScheduleStats, Schedule, Slice};
pub use solution_cache::{CacheLookup, SolutionCache, SolutionCacheStats};
pub use svg::SvgOptions;
pub use sync::{lock_unpoisoned, panic_message};

pub use soctam_wrapper::{Cycles, TamWidth};
