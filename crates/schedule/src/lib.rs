//! # soctam-schedule
//!
//! Constraint-driven, selectively preemptive SOC test scheduling via
//! generalized rectangle packing — the primary contribution of Iyengar,
//! Chakrabarty & Marinissen, DAC 2002 (Figures 4–8).
//!
//! Given an SOC model ([`soctam_soc::Soc`]) and a total TAM width `W`, the
//! scheduler:
//!
//! 1. builds every core's Pareto-optimal rectangle menu and *preferred TAM
//!    width* (smallest width within `m`% of the core's best time, bumped to
//!    the highest Pareto-optimal width when at most `d` wires away);
//! 2. packs one rectangle per core into the `W × time` bin with a
//!    three-priority selection rule, filling idle wires by squeezing
//!    near-fit rectangles (within 3 wires) and widening rectangles that
//!    begin at the current instant;
//! 3. honours precedence, concurrency, power, and BIST-engine constraints,
//!    and preempts tests within each core's preemption budget, charging one
//!    extra scan-in + scan-out per actual interruption.
//!
//! The result is a [`Schedule`] of time slices that an independent
//! [`validate`](crate::validate::validate) re-checks against every
//! constraint.
//!
//! # Amortizing sweeps: [`CompiledSoc`]
//!
//! Everything a run derives from the SOC alone — per-core Pareto rectangle
//! menus, compiled constraint tables, lower-bound ingredients — is
//! invariant across the `(m, d, slack) × width` parameter sweeps the
//! paper's methodology calls for. [`CompiledSoc::compile`] precomputes it
//! once; [`ScheduleBuilder::with_context`],
//! [`CompiledSoc::lower_bound`], and
//! [`validate_with`](crate::validate::validate_with) then reuse it with
//! bit-identical results, as do the `soctam-baseline` architectures and
//! the `soctam-core` flow.
//!
//! # Example
//!
//! ```
//! use soctam_schedule::{ScheduleBuilder, SchedulerConfig};
//! use soctam_soc::benchmarks;
//!
//! # fn main() -> Result<(), soctam_schedule::ScheduleError> {
//! let soc = benchmarks::d695();
//! let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(16)).run()?;
//! assert!(schedule.makespan() > 0);
//! soctam_schedule::validate::validate(&soc, &schedule)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod bounds;
mod config;
mod constraints;
mod context;
mod error;
pub mod instrument;
mod menus;
mod optimizer;
mod schedule;
mod state;
mod svg;
pub mod validate;

pub use bitset::BitSet;
pub use config::{HeuristicToggles, SchedulerConfig};
pub use constraints::ConstraintSet;
pub use context::CompiledSoc;
pub use error::ScheduleError;
pub use menus::RectangleMenus;
pub use optimizer::{schedule_best, ScheduleBuilder};
pub use schedule::{CoreScheduleStats, Schedule, Slice};
pub use svg::SvgOptions;

pub use soctam_wrapper::{Cycles, TamWidth};
