//! The per-core scheduling state of Figure 3.

use soctam_wrapper::{Cycles, RectangleSet, TamWidth};

/// Mutable scheduling state of one core, mirroring the paper's Figure 3
/// data structure field for field.
#[derive(Debug, Clone)]
pub(crate) struct CoreState {
    /// `width_pref[i]` — preferred TAM width.
    pub width_pref: TamWidth,
    /// `width_assigned[i]` — TAM width in force (fixed once begun).
    pub width_assigned: TamWidth,
    /// `first_begin_time[i]` — when the core first started testing.
    pub first_begin: Option<Cycles>,
    /// `end[i]` — projected end of the current run while scheduled; after a
    /// descheduling, the time the core last ran.
    pub end: Cycles,
    /// `sched_times[i]` — begin time of the current run (slice emission).
    pub run_begin: Cycles,
    /// `time_left[i]` — remaining testing time, including accrued
    /// preemption penalties.
    pub time_left: Cycles,
    /// `begun[i]`.
    pub begun: bool,
    /// `scheduled[i]`.
    pub scheduled: bool,
    /// `complete[i]`.
    pub complete: bool,
    /// `preempts[i]` — preemptions suffered so far.
    pub preempts: u32,
    /// `max_preempts[i]` — preemption budget.
    pub max_preempts: u32,
    /// The rectangle menu for this core.
    pub rects: RectangleSet,
}

impl CoreState {
    /// Fresh state for a core whose rectangle menu and preferred width were
    /// computed by `Initialize`.
    pub fn new(rects: RectangleSet, width_pref: TamWidth, max_preempts: u32) -> Self {
        Self {
            width_pref,
            width_assigned: 0,
            first_begin: None,
            end: 0,
            run_begin: 0,
            time_left: 0,
            begun: false,
            scheduled: false,
            complete: false,
            preempts: 0,
            max_preempts,
            rects,
        }
    }

    /// Testing time of this core at width `w` (monotone staircase lookup).
    pub fn time_at(&self, w: TamWidth) -> Cycles {
        self.rects.time_at(w)
    }

    /// Whether the core is waiting to resume and has exhausted its
    /// preemption budget (the paper's Priority 1 predicate).
    pub fn must_continue(&self) -> bool {
        self.begun && !self.scheduled && !self.complete && self.preempts >= self.max_preempts
    }

    /// Whether the core is waiting to resume with budget remaining
    /// (Priority 2 candidate).
    pub fn can_resume(&self) -> bool {
        self.begun && !self.scheduled && !self.complete
    }

    /// Whether the core has not started yet (Priority 3 / idle-fill
    /// candidate).
    pub fn unstarted(&self) -> bool {
        !self.begun && !self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_wrapper::CoreTest;

    fn state() -> CoreState {
        let core = CoreTest::new(4, 4, 0, vec![16, 8], 10).unwrap();
        CoreState::new(RectangleSet::build(&core, 8), 2, 1)
    }

    #[test]
    fn predicates_follow_lifecycle() {
        let mut s = state();
        assert!(s.unstarted());
        assert!(!s.can_resume());
        assert!(!s.must_continue());

        s.begun = true;
        s.scheduled = true;
        assert!(!s.unstarted());
        assert!(!s.can_resume());

        s.scheduled = false; // descheduled at an update point
        assert!(s.can_resume());
        assert!(!s.must_continue()); // budget 1, used 0

        s.preempts = 1;
        assert!(s.must_continue());

        s.complete = true;
        assert!(!s.can_resume());
        assert!(!s.must_continue());
    }

    #[test]
    fn time_lookup_delegates_to_rects() {
        let s = state();
        assert_eq!(s.time_at(2), s.rects.time_at(2));
    }
}
