//! The per-core scheduling state of Figure 3.

use soctam_wrapper::{Cycles, RectangleSet, TamWidth};

/// Mutable scheduling state of one core, mirroring the paper's Figure 3
/// data structure field for field.
///
/// The rectangle menu is borrowed from a shared
/// [`RectangleMenus`](crate::RectangleMenus) so that a whole parameter
/// sweep reuses one menu build instead of cloning per run.
#[derive(Debug, Clone)]
pub(crate) struct CoreState<'m> {
    /// `width_pref[i]` — preferred TAM width.
    pub width_pref: TamWidth,
    /// `width_assigned[i]` — TAM width in force (fixed once begun).
    pub width_assigned: TamWidth,
    /// `first_begin_time[i]` — when the core first started testing.
    pub first_begin: Option<Cycles>,
    /// `end[i]` — projected end of the current run while scheduled; after a
    /// descheduling, the time the core last ran.
    pub end: Cycles,
    /// `sched_times[i]` — begin time of the current run (slice emission).
    pub run_begin: Cycles,
    /// `time_left[i]` — remaining testing time, including accrued
    /// preemption penalties.
    pub time_left: Cycles,
    /// `begun[i]`.
    pub begun: bool,
    /// `scheduled[i]`.
    pub scheduled: bool,
    /// `complete[i]`.
    pub complete: bool,
    /// `preempts[i]` — preemptions suffered so far.
    pub preempts: u32,
    /// `max_preempts[i]` — preemption budget.
    pub max_preempts: u32,
    /// The rectangle menu for this core (shared across runs).
    pub rects: &'m RectangleSet,
}

impl<'m> CoreState<'m> {
    /// Fresh state for a core whose rectangle menu and preferred width were
    /// computed by `Initialize`.
    pub fn new(rects: &'m RectangleSet, width_pref: TamWidth, max_preempts: u32) -> Self {
        Self {
            width_pref,
            width_assigned: 0,
            first_begin: None,
            end: 0,
            run_begin: 0,
            time_left: 0,
            begun: false,
            scheduled: false,
            complete: false,
            preempts: 0,
            max_preempts,
            rects,
        }
    }

    /// Testing time of this core at width `w` (monotone staircase lookup).
    pub fn time_at(&self, w: TamWidth) -> Cycles {
        self.rects.time_at(w)
    }

    /// Whether the core is waiting to resume and has exhausted its
    /// preemption budget (the paper's Priority 1 predicate).
    pub fn must_continue(&self) -> bool {
        self.begun && !self.scheduled && !self.complete && self.preempts >= self.max_preempts
    }

    /// Whether the core is waiting to resume with budget remaining
    /// (Priority 2 candidate).
    pub fn can_resume(&self) -> bool {
        self.begun && !self.scheduled && !self.complete
    }

    /// Whether the core has not started yet (Priority 3 / idle-fill
    /// candidate).
    pub fn unstarted(&self) -> bool {
        !self.begun && !self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_wrapper::CoreTest;

    fn rects() -> RectangleSet {
        let core = CoreTest::new(4, 4, 0, vec![16, 8], 10).unwrap();
        RectangleSet::build(&core, 8)
    }

    #[test]
    fn predicates_follow_lifecycle() {
        let rects = rects();
        let mut s = CoreState::new(&rects, 2, 1);
        assert!(s.unstarted());
        assert!(!s.can_resume());
        assert!(!s.must_continue());

        s.begun = true;
        s.scheduled = true;
        assert!(!s.unstarted());
        assert!(!s.can_resume());

        s.scheduled = false; // descheduled at an update point
        assert!(s.can_resume());
        assert!(!s.must_continue()); // budget 1, used 0

        s.preempts = 1;
        assert!(s.must_continue());

        s.complete = true;
        assert!(!s.can_resume());
        assert!(!s.must_continue());
    }

    #[test]
    fn time_lookup_delegates_to_rects() {
        let rects = rects();
        let s = CoreState::new(&rects, 2, 1);
        assert_eq!(s.time_at(2), s.rects.time_at(2));
    }
}
