use soctam_wrapper::TamWidth;

/// Enables or disables the individual packing heuristics of §4, for
/// ablation studies (see the `ablation_heuristics` bench target).
///
/// All heuristics are on by default; the paper's algorithm corresponds to
/// [`HeuristicToggles::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicToggles {
    /// Bump preferred widths to the highest Pareto-optimal width when it is
    /// at most `d` wires away (Figure 5, lines 5–6).
    pub pareto_bump: bool,
    /// Squeeze an unstarted core whose preferred width is within
    /// [`SchedulerConfig::idle_fill_slack`] wires of the idle width
    /// (Figure 4, lines 13–14).
    pub idle_fill: bool,
    /// Give leftover wires to a rectangle that begins at the current
    /// instant (Figure 4, lines 15–16).
    pub width_increase: bool,
}

impl Default for HeuristicToggles {
    fn default() -> Self {
        Self {
            pareto_bump: true,
            idle_fill: true,
            width_increase: true,
        }
    }
}

impl HeuristicToggles {
    /// All heuristics disabled — the plain three-priority packer.
    pub fn none() -> Self {
        Self {
            pareto_bump: false,
            idle_fill: false,
            width_increase: false,
        }
    }
}

/// Configuration of one scheduling run.
///
/// `tam_width` is the SOC-level TAM width `W`. The remaining knobs default
/// to the paper's choices: `w_max = 64`, preferred-width percentage
/// `m = 5`, Pareto bump distance `d = 1`, idle-fill slack of 3 wires, no
/// power limit, preemption honoured.
///
/// # Example
///
/// ```
/// use soctam_schedule::SchedulerConfig;
///
/// let cfg = SchedulerConfig::new(32).with_percent(3).with_power_limit(4000);
/// assert_eq!(cfg.tam_width, 32);
/// assert_eq!(cfg.p_max, Some(4000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Total SOC TAM width `W`.
    pub tam_width: TamWidth,
    /// Maximum width considered when building rectangle menus and
    /// preferred widths (the paper's `W_max = 64`).
    pub w_max: TamWidth,
    /// The preferred-width percentage `m` (usually 1–10).
    pub percent: u32,
    /// The Pareto bump distance `d` (usually 0–4).
    pub bump: TamWidth,
    /// How many wires short a rectangle may be squeezed during idle fill
    /// (the paper found 3 most useful).
    pub idle_fill_slack: TamWidth,
    /// Maximum simultaneous power dissipation, if constrained.
    pub p_max: Option<u64>,
    /// If `false`, all preemption budgets are treated as zero.
    pub allow_preemption: bool,
    /// Heuristic ablation switches.
    pub toggles: HeuristicToggles,
}

impl SchedulerConfig {
    /// Paper-default configuration for a given SOC TAM width.
    pub fn new(tam_width: TamWidth) -> Self {
        Self {
            tam_width,
            w_max: 64,
            percent: 5,
            bump: 1,
            idle_fill_slack: 3,
            p_max: None,
            allow_preemption: true,
            toggles: HeuristicToggles::default(),
        }
    }

    /// Sets the preferred-width percentage `m`.
    pub fn with_percent(mut self, percent: u32) -> Self {
        self.percent = percent;
        self
    }

    /// Sets the Pareto bump distance `d`.
    pub fn with_bump(mut self, bump: TamWidth) -> Self {
        self.bump = bump;
        self
    }

    /// Sets the power ceiling `P_max`.
    pub fn with_power_limit(mut self, p_max: u64) -> Self {
        self.p_max = Some(p_max);
        self
    }

    /// Disables preemption regardless of per-core budgets.
    pub fn without_preemption(mut self) -> Self {
        self.allow_preemption = false;
        self
    }

    /// Replaces the heuristic toggles.
    pub fn with_toggles(mut self, toggles: HeuristicToggles) -> Self {
        self.toggles = toggles;
        self
    }

    /// The widest rectangle any core may use under this configuration.
    pub fn effective_w_max(&self) -> TamWidth {
        self.w_max.min(self.tam_width).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SchedulerConfig::new(16);
        assert_eq!(cfg.w_max, 64);
        assert_eq!(cfg.idle_fill_slack, 3);
        assert!(cfg.allow_preemption);
        assert_eq!(cfg.p_max, None);
        assert_eq!(cfg.toggles, HeuristicToggles::default());
    }

    #[test]
    fn effective_w_max_clamps_to_tam() {
        assert_eq!(SchedulerConfig::new(16).effective_w_max(), 16);
        let mut cfg = SchedulerConfig::new(100);
        assert_eq!(cfg.effective_w_max(), 64);
        cfg.w_max = 0;
        assert_eq!(cfg.effective_w_max(), 1);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = SchedulerConfig::new(48)
            .with_percent(7)
            .with_bump(2)
            .with_power_limit(1234)
            .without_preemption()
            .with_toggles(HeuristicToggles::none());
        assert_eq!(cfg.percent, 7);
        assert_eq!(cfg.bump, 2);
        assert_eq!(cfg.p_max, Some(1234));
        assert!(!cfg.allow_preemption);
        assert!(!cfg.toggles.idle_fill);
    }
}
