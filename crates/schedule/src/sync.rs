//! Poison-recovering locking and panic-payload helpers shared by every
//! mutex in the scheduling/serving stack.
//!
//! A poisoned `Mutex` means *some* thread panicked while holding the
//! guard — it says nothing about the integrity of the data behind it.
//! Every structure in this workspace that takes a lock (cache shards,
//! registry shards, the server's connection table) holds only
//! crash-consistent state: each critical section either completes a map
//! operation or leaves the map as it was, so the value behind a poisoned
//! lock is always safe to keep using. Propagating the poison instead
//! (`.lock().expect(..)`) turns one recovered panic into a process-wide
//! cascade: every later request touching the same shard dies too. A
//! resilient daemon wants exactly the opposite — recover the guard,
//! serve the request, and let the original panic be reported once, where
//! it was caught.

use std::any::Any;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Use this instead of `.lock().expect("poisoned")` everywhere the
/// guarded data is crash-consistent (see the [module docs](self)).
pub fn lock_unpoisoned<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload (from `std::panic::catch_unwind`) as a
/// human-readable message.
///
/// `panic!("...")` payloads are `&str` or `String`; anything else (a
/// `panic_any` value) is reported by a placeholder rather than lost.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn recovers_a_poisoned_lock() {
        let m = Mutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        let mut guard = lock_unpoisoned(&m);
        assert_eq!(*guard, 7, "data behind a poisoned lock is intact");
        *guard = 8;
        drop(guard);
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn renders_str_string_and_opaque_payloads() {
        let p = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "plain str");
        let p = catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 42");
        let p = catch_unwind(|| std::panic::panic_any(17u8)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
