use std::error::Error;
use std::fmt;

use soctam_soc::SocError;

/// Errors from scheduling or schedule validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The SOC model itself is inconsistent.
    Soc(SocError),
    /// The configuration is unusable (e.g. zero TAM width).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// No progress is possible: some cores can never be scheduled under the
    /// given constraints (e.g. a core whose power rating alone exceeds
    /// `P_max`, or an unsatisfiable concurrency clique).
    Stuck {
        /// Indices of the cores that remain unscheduled.
        remaining: Vec<usize>,
        /// The time at which the scheduler stalled.
        at_time: u64,
    },
    /// Produced by the validator: the schedule violates a constraint.
    Invalid {
        /// Description of the violated invariant.
        reason: String,
    },
    /// The solver panicked while serving this request (or a
    /// fault-injection plan forced a failure). The panic was caught and
    /// isolated; the request failed but the process — and every other
    /// request — is unaffected. Transient by construction: retrying the
    /// same request may well succeed.
    SolverPanic {
        /// The rendered panic payload.
        message: String,
    },
}

impl ScheduleError {
    /// Whether this error is transient — caused by a recovered fault
    /// (solver panic, injected failure) rather than by the request
    /// itself — so clients know a retry is worthwhile.
    pub fn is_transient(&self) -> bool {
        matches!(self, ScheduleError::SolverPanic { .. })
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Soc(e) => write!(f, "invalid SOC model: {e}"),
            ScheduleError::InvalidConfig { reason } => {
                write!(f, "invalid scheduler configuration: {reason}")
            }
            ScheduleError::Stuck { remaining, at_time } => write!(
                f,
                "scheduler stuck at time {at_time}: cores {remaining:?} cannot be scheduled"
            ),
            ScheduleError::Invalid { reason } => write!(f, "invalid schedule: {reason}"),
            ScheduleError::SolverPanic { message } => {
                write!(f, "solver panicked (recovered): {message}")
            }
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Soc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SocError> for ScheduleError {
    fn from(e: SocError) -> Self {
        ScheduleError::Soc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_message_names_cores() {
        let e = ScheduleError::Stuck {
            remaining: vec![1, 4],
            at_time: 99,
        };
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains('4'));
    }

    #[test]
    fn solver_panic_is_the_only_transient_error() {
        let p = ScheduleError::SolverPanic {
            message: "index out of bounds".to_owned(),
        };
        assert!(p.is_transient());
        assert!(p.to_string().contains("recovered"));
        assert!(!ScheduleError::Invalid {
            reason: "x".to_owned()
        }
        .is_transient());
    }

    #[test]
    fn soc_error_is_source() {
        let e = ScheduleError::from(SocError::PrecedenceCycle);
        assert!(e.source().is_some());
    }
}
