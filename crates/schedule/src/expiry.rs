//! Shared time-to-live machinery for the caching subsystems.
//!
//! Both caches in this crate — [`ContextRegistry`](crate::ContextRegistry)
//! (compiled contexts) and [`SolutionCache`](crate::SolutionCache) (solved
//! results) — bound entry *lifetime* the same way they bound entry *count*:
//! a [`TtlPolicy`] stamps every insertion with a deadline, expired entries
//! are evicted lazily on access, and an explicit `purge_expired()` sweeps
//! the whole cache for long-lived daemons that want bounded staleness even
//! on cold keys.

use std::time::{Duration, Instant};

/// How long a cache entry stays servable after insertion. `None` means
/// entries never expire (the pre-daemon behavior, and the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct TtlPolicy {
    ttl: Option<Duration>,
}

impl TtlPolicy {
    pub(crate) fn new(ttl: Option<Duration>) -> Self {
        Self { ttl }
    }

    /// The deadline a fresh entry inserted *now* carries.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.ttl.map(|ttl| Instant::now() + ttl)
    }

    /// Whether an entry stamped with `deadline` is expired at `now`.
    /// Entries without a deadline never expire.
    pub(crate) fn expired(deadline: Option<Instant>, now: Instant) -> bool {
        deadline.is_some_and(|d| now >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ttl_never_expires() {
        let policy = TtlPolicy::new(None);
        assert_eq!(policy.deadline(), None);
        assert!(!TtlPolicy::expired(None, Instant::now()));
    }

    #[test]
    fn deadline_expires_after_the_ttl() {
        let policy = TtlPolicy::new(Some(Duration::from_millis(1)));
        let deadline = policy.deadline();
        assert!(deadline.is_some());
        assert!(!TtlPolicy::expired(deadline, Instant::now()));
        assert!(TtlPolicy::expired(
            deadline,
            Instant::now() + Duration::from_millis(5)
        ));
    }
}
