//! TAM width sweeps: the data behind Figures 9(a) and 9(b).

use soctam_schedule::bounds::lower_bound;
use soctam_schedule::{schedule_best, ScheduleBuilder, ScheduleError, SchedulerConfig};
use soctam_soc::Soc;
use soctam_wrapper::{Cycles, TamWidth};

use crate::model::volume_of;

/// One point of a TAM-width sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// SOC TAM width `W`.
    pub width: TamWidth,
    /// SOC testing time `T(W)` achieved by the scheduler.
    pub time: Cycles,
    /// Tester data volume `V(W) = W · T(W)`.
    pub volume: u64,
    /// Testing-time lower bound at this width.
    pub lower_bound: Cycles,
}

/// Schedules the SOC at every width in `widths` with a fixed configuration
/// and reports `T`, `V`, and the lower bound per width.
///
/// `base.tam_width` is overridden by each sweep width.
///
/// # Errors
///
/// Propagates the first [`ScheduleError`]; all widths share one
/// configuration, so a failure at one width (e.g. an unsatisfiable power
/// ceiling) fails the sweep.
pub fn sweep(
    soc: &Soc,
    widths: impl IntoIterator<Item = TamWidth>,
    base: &SchedulerConfig,
) -> Result<Vec<SweepPoint>, ScheduleError> {
    let mut out = Vec::new();
    for w in widths {
        let mut cfg = base.clone();
        cfg.tam_width = w;
        let schedule = ScheduleBuilder::new(soc, cfg).run()?;
        let time = schedule.makespan();
        out.push(SweepPoint {
            width: w,
            time,
            volume: volume_of(w, time),
            lower_bound: lower_bound(soc, w, base.w_max),
        });
    }
    Ok(out)
}

/// Like [`sweep`], but runs the paper's best-of search over `m ∈ percents`
/// and `d ∈ bumps` at every width (slower, tighter times).
///
/// # Errors
///
/// Propagates the first width at which every parameter combination fails.
pub fn sweep_best(
    soc: &Soc,
    widths: impl IntoIterator<Item = TamWidth>,
    base: &SchedulerConfig,
    percents: impl IntoIterator<Item = u32> + Clone,
    bumps: impl IntoIterator<Item = TamWidth> + Clone,
) -> Result<Vec<SweepPoint>, ScheduleError> {
    let mut out = Vec::new();
    for w in widths {
        let mut cfg = base.clone();
        cfg.tam_width = w;
        let (schedule, _, _) = schedule_best(soc, &cfg, percents.clone(), bumps.clone())?;
        let time = schedule.makespan();
        out.push(SweepPoint {
            width: w,
            time,
            volume: volume_of(w, time),
            lower_bound: lower_bound(soc, w, base.w_max),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_soc::benchmarks;

    #[test]
    fn sweep_times_are_roughly_staircase() {
        let soc = benchmarks::d695();
        let pts = sweep(
            &soc,
            (8..=32).step_by(4).map(|w| w as u16),
            &SchedulerConfig::new(1),
        )
        .unwrap();
        assert_eq!(pts.len(), 7);
        // Heuristic times may wobble a little, but the broad trend must
        // fall: the widest point is well below the narrowest.
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(last.time < first.time);
        for p in &pts {
            assert!(p.time >= p.lower_bound);
            assert_eq!(p.volume, u64::from(p.width) * p.time);
        }
    }

    #[test]
    fn volume_dips_at_pareto_drops() {
        // Where T stays flat between consecutive widths, V must rise;
        // local V minima therefore sit at time-staircase drops.
        let soc = benchmarks::d695();
        let pts = sweep(&soc, 8..=40, &SchedulerConfig::new(1)).unwrap();
        let mut rises_on_flat = true;
        for pair in pts.windows(2) {
            if pair[1].time == pair[0].time && pair[1].volume <= pair[0].volume {
                rises_on_flat = false;
            }
        }
        assert!(rises_on_flat);
    }

    #[test]
    fn sweep_best_is_no_worse_pointwise() {
        let soc = benchmarks::d695();
        let base = SchedulerConfig::new(1);
        let plain = sweep(&soc, [16u16, 32], &base).unwrap();
        let best = sweep_best(&soc, [16u16, 32], &base, [1u32, 5, 10], [0u16, 1]).unwrap();
        for (p, b) in plain.iter().zip(&best) {
            assert!(b.time <= p.time, "width {}", p.width);
        }
    }
}
