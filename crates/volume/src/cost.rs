//! The normalized time/volume cost function and effective-width search
//! (Figures 9(c)–(d), Table 2).

use soctam_wrapper::TamWidth;

use crate::sweep::SweepPoint;

/// One evaluated point of the cost curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// SOC TAM width.
    pub width: TamWidth,
    /// Testing time at this width.
    pub time: u64,
    /// Tester data volume at this width.
    pub volume: u64,
    /// Normalized cost `C(W) = α·T/T_min + (1−α)·V/V_min`.
    pub cost: f64,
}

/// The full normalized cost curve for one `α`.
///
/// As `α` sweeps 0 → 1 the curve morphs from the (normalized) volume curve
/// into the time curve; in between it is "U"-shaped with a single practical
/// minimum, the *effective TAM width*.
///
/// # Example
///
/// ```
/// use soctam_volume::{CostCurve, SweepPoint};
///
/// let pts = vec![
///     SweepPoint { width: 8, time: 100, volume: 800, lower_bound: 90 },
///     SweepPoint { width: 16, time: 60, volume: 960, lower_bound: 45 },
/// ];
/// let curve = CostCurve::new(&pts, 1.0); // pure time: widest wins
/// assert_eq!(curve.effective_width(), 16);
/// let curve = CostCurve::new(&pts, 0.0); // pure volume: cheapest data wins
/// assert_eq!(curve.effective_width(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostCurve {
    alpha: f64,
    t_min: u64,
    v_min: u64,
    points: Vec<CostPoint>,
}

impl CostCurve {
    /// Evaluates the cost function over a sweep.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or `alpha` is outside `[0, 1]`.
    pub fn new(points: &[SweepPoint], alpha: f64) -> Self {
        assert!(!points.is_empty(), "cost curve needs at least one point");
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must lie in [0, 1], got {alpha}"
        );
        let t_min = points.iter().map(|p| p.time).min().expect("non-empty");
        let v_min = points.iter().map(|p| p.volume).min().expect("non-empty");
        let evaluated = points
            .iter()
            .map(|p| CostPoint {
                width: p.width,
                time: p.time,
                volume: p.volume,
                cost: alpha * p.time as f64 / t_min as f64
                    + (1.0 - alpha) * p.volume as f64 / v_min as f64,
            })
            .collect();
        Self {
            alpha,
            t_min,
            v_min,
            points: evaluated,
        }
    }

    /// The trade-off weight `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Minimum testing time over the sweep (`T_min`).
    pub fn t_min(&self) -> u64 {
        self.t_min
    }

    /// Minimum data volume over the sweep (`V_min`).
    pub fn v_min(&self) -> u64 {
        self.v_min
    }

    /// All evaluated points, in sweep order.
    pub fn points(&self) -> &[CostPoint] {
        &self.points
    }

    /// The point minimizing `C(W)`; ties break toward the *narrower* TAM
    /// (fewer wires, better multisite).
    pub fn effective_point(&self) -> CostPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .expect("costs are finite")
                    .then(a.width.cmp(&b.width))
            })
            .expect("non-empty")
    }

    /// Shorthand for `effective_point().width` — the paper's `W_eff`.
    pub fn effective_width(&self) -> TamWidth {
        self.effective_point().width
    }

    /// Minimum cost value `C_min` (1.0 means a width achieves both minima).
    pub fn min_cost(&self) -> f64 {
        self.effective_point().cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<SweepPoint> {
        vec![
            SweepPoint {
                width: 8,
                time: 200,
                volume: 1600,
                lower_bound: 0,
            },
            SweepPoint {
                width: 16,
                time: 110,
                volume: 1760,
                lower_bound: 0,
            },
            SweepPoint {
                width: 24,
                time: 80,
                volume: 1920,
                lower_bound: 0,
            },
            SweepPoint {
                width: 32,
                time: 70,
                volume: 2240,
                lower_bound: 0,
            },
        ]
    }

    #[test]
    fn alpha_one_tracks_time() {
        let c = CostCurve::new(&pts(), 1.0);
        assert_eq!(c.effective_width(), 32);
        assert!((c.min_cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_tracks_volume() {
        let c = CostCurve::new(&pts(), 0.0);
        assert_eq!(c.effective_width(), 8);
        assert!((c.min_cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intermediate_alpha_compromises() {
        let c = CostCurve::new(&pts(), 0.5);
        let w = c.effective_width();
        assert!(w > 8 && w < 32, "expected a middle width, got {w}");
    }

    #[test]
    fn cost_is_at_least_one() {
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let c = CostCurve::new(&pts(), alpha);
            for p in c.points() {
                assert!(p.cost >= 1.0 - 1e-12);
            }
        }
    }

    #[test]
    fn extrema_recorded() {
        let c = CostCurve::new(&pts(), 0.5);
        assert_eq!(c.t_min(), 70);
        assert_eq!(c.v_min(), 1600);
        assert!((c.alpha() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tie_breaks_to_narrow_width() {
        let flat = vec![
            SweepPoint {
                width: 8,
                time: 100,
                volume: 800,
                lower_bound: 0,
            },
            SweepPoint {
                width: 16,
                time: 100,
                volume: 800,
                lower_bound: 0,
            },
        ];
        let c = CostCurve::new(&flat, 0.5);
        assert_eq!(c.effective_width(), 8);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = CostCurve::new(&pts(), 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty() {
        let _ = CostCurve::new(&[], 0.5);
    }
}
