//! # soctam-volume
//!
//! Tester data volume modelling and effective TAM width identification —
//! the third component of the DAC 2002 framework (§5).
//!
//! Testing time `T(W)` falls in a staircase as the SOC TAM widens, but the
//! tester must fill one memory channel per TAM pin for the whole schedule,
//! so the *total data volume* `V(W) = W · T(W)` is non-monotonic: it dips
//! at exactly the Pareto-optimal points of the `T` curve and climbs in
//! between. The normalized cost
//!
//! ```text
//! C(W) = α · T(W)/T_min + (1 − α) · V(W)/V_min
//! ```
//!
//! is "U"-shaped in `W`; its minimizer `W_eff` lets the system integrator
//! trade testing time against tester memory (multisite test, buffer
//! limits).
//!
//! # Example
//!
//! ```
//! use soctam_soc::benchmarks;
//! use soctam_volume::{sweep, CostCurve};
//! use soctam_schedule::SchedulerConfig;
//!
//! # fn main() -> Result<(), soctam_schedule::ScheduleError> {
//! let soc = benchmarks::d695();
//! let points = sweep(&soc, 4..=32, &SchedulerConfig::new(1))?;
//! let curve = CostCurve::new(&points, 0.5);
//! let eff = curve.effective_point();
//! assert!(eff.cost >= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod model;
mod sweep;

pub use cost::{CostCurve, CostPoint};
pub use model::{volume_of, TesterMemoryModel};
pub use sweep::{sweep, sweep_best, SweepPoint};
