//! The tester memory model.

use soctam_wrapper::{Cycles, TamWidth};

/// Total tester data volume implied by a schedule of length `time` on
/// `width` TAM pins: every pin's channel holds one bit per cycle of the
/// schedule, so `V = W · T`.
///
/// This reproduces the paper's Table 2 identity — e.g. p22810's reported
/// volume at `W = 48`, `T = 164,420` is `48 × 164,420 = 7,892,160` bits.
pub fn volume_of(width: TamWidth, time: Cycles) -> u64 {
    u64::from(width) * time
}

/// A tester memory configuration: per-pin buffer depth and channel count.
///
/// Reduced TAM widths that keep the per-pin depth within a single buffer
/// are what enable multisite test (§5); [`TesterMemoryModel::fits`] answers
/// whether a schedule fits without buffer reloads, and
/// [`TesterMemoryModel::sites`] how many SOCs one tester can serve in
/// parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TesterMemoryModel {
    /// Bits of vector memory behind each tester pin.
    pub depth_per_pin: u64,
    /// Number of tester channels (pins) available.
    pub channels: u32,
}

impl TesterMemoryModel {
    /// Creates a model with the given per-pin depth and channel count.
    pub fn new(depth_per_pin: u64, channels: u32) -> Self {
        Self {
            depth_per_pin,
            channels,
        }
    }

    /// Whether a schedule of `time` cycles fits in one buffer fill.
    pub fn fits(&self, time: Cycles) -> bool {
        time <= self.depth_per_pin
    }

    /// How many SOCs with TAM width `width` can be tested in parallel
    /// (multisite), limited only by channel count; 0 if one SOC needs more
    /// channels than the tester has.
    pub fn sites(&self, width: TamWidth) -> u32 {
        if width == 0 {
            return 0;
        }
        self.channels / u32::from(width)
    }

    /// Effective time to test a production batch of `batch` SOCs, assuming
    /// perfect multisite parallelism: `ceil(batch / sites) · T`.
    ///
    /// Returns `None` if the SOC does not fit the tester at all.
    pub fn batch_time(&self, width: TamWidth, time: Cycles, batch: u64) -> Option<u64> {
        let sites = u64::from(self.sites(width));
        if sites == 0 || !self.fits(time) {
            return None;
        }
        Some(batch.div_ceil(sites) * time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_reproduces_table2_identity() {
        assert_eq!(volume_of(48, 164_420), 7_892_160);
        assert_eq!(volume_of(44, 167_670), 7_377_480);
        assert_eq!(volume_of(27, 617_018), 16_659_486);
        assert_eq!(volume_of(22, 1_336_348), 29_399_656);
    }

    #[test]
    fn fits_is_a_threshold() {
        let m = TesterMemoryModel::new(1000, 64);
        assert!(m.fits(1000));
        assert!(!m.fits(1001));
    }

    #[test]
    fn sites_divide_channels() {
        let m = TesterMemoryModel::new(1000, 64);
        assert_eq!(m.sites(16), 4);
        assert_eq!(m.sites(33), 1);
        assert_eq!(m.sites(65), 0);
        assert_eq!(m.sites(0), 0);
    }

    #[test]
    fn narrower_tam_can_win_on_batches() {
        // Narrow TAM: slower per chip but 4 sites; wide: fast but 1 site.
        let m = TesterMemoryModel::new(1_000_000, 64);
        let narrow = m.batch_time(16, 40_000, 100).unwrap();
        let wide = m.batch_time(64, 11_000, 100).unwrap();
        assert!(narrow < wide, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn batch_time_requires_fit() {
        let m = TesterMemoryModel::new(10, 64);
        assert_eq!(m.batch_time(16, 11, 5), None);
        assert_eq!(m.batch_time(128, 5, 5), None);
    }
}
