//! # soctam-core
//!
//! The integrated SOC test automation framework of Iyengar, Chakrabarty &
//! Marinissen (DAC 2002), assembled from the workspace substrates:
//!
//! * wrapper/TAM co-optimization ([`soctam_wrapper`]),
//! * constraint-driven, selectively preemptive test scheduling
//!   ([`soctam_schedule`]),
//! * concrete fork-and-merge wire assignment ([`soctam_tam`]),
//! * tester data volume reduction and effective TAM width identification
//!   ([`soctam_volume`]),
//! * baseline architectures for comparison ([`soctam_baseline`]),
//! * the SOC substrate, ITC'02-style format, and benchmark models
//!   ([`soctam_soc`]).
//!
//! The [`flow`] module exposes the one-stop API; [`engine`] serves whole
//! request batches concurrently; [`protocol`] defines the request grammar
//! and JSON response shape shared by `soctam batch` and the
//! `soctam-server` wire format; [`report`] regenerates the paper's tables
//! and figures as plain-text artifacts.
//!
//! # Ownership model
//!
//! All of it shares one precompiled schedule context per SOC
//! ([`schedule::CompiledSoc`]): rectangle menus, constraint tables, and
//! lower-bound ingredients are compiled once and reused — bit-identically —
//! by the scheduler, the bounds, the validator, and every baseline
//! architecture across a whole parameter/width sweep. The context *owns*
//! its SOC (`Arc<Soc>`), so it is lifetime-free; [`flow::TestFlow`] holds
//! an `Arc<CompiledSoc>` and is itself `Send + Sync + 'static`. Long-lived
//! services cache contexts in a [`schedule::ContextRegistry`], keyed by
//! `(SOC content, w_max, power budget)` with LRU eviction, and serve
//! mixed batches through [`engine::Engine`] — each distinct key compiles
//! exactly once per registry lifetime, across requests and threads alike.
//!
//! # Quickstart
//!
//! ```
//! use soctam_core::flow::{FlowConfig, TestFlow};
//! use soctam_core::soc::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = benchmarks::d695();
//! let flow = TestFlow::new(&soc, FlowConfig::quick());
//! let run = flow.run(16)?;
//! assert!(run.schedule.makespan() >= run.lower_bound);
//! println!("{}", run.schedule.gantt(&|i| soc.core(i).name().to_string(), 72));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod flow;
pub mod protocol;
pub mod report;

/// Re-export of the baseline comparators.
pub use soctam_baseline as baseline;
/// Re-export of the scheduling crate.
pub use soctam_schedule as schedule;
/// Re-export of the scan/tester simulation crate.
pub use soctam_sim as sim;
/// Re-export of the SOC substrate crate.
pub use soctam_soc as soc;
/// Re-export of the TAM wire-assignment crate.
pub use soctam_tam as tam;
/// Re-export of the tester-data-volume crate.
pub use soctam_volume as volume;
/// Re-export of the wrapper-design crate.
pub use soctam_wrapper as wrapper;
