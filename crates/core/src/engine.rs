//! The batch-serving facade: many scheduling requests, one registry.
//!
//! [`Engine`] is the entry point for serving *traffic* rather than running
//! one experiment: it accepts a batch of [`EngineRequest`]s — mixed SOCs,
//! TAM widths, scheduling modes, and operation kinds (best-of schedule,
//! width sweep, lower bounds) — and executes them on scoped worker
//! threads. Every request draws its [`CompiledSoc`] from a shared
//! [`ContextRegistry`], so a batch (and any later batch over the same
//! engine) compiles each distinct `(SOC, w_max, power budget)` key exactly
//! once, no matter how many requests or threads touch it.
//!
//! Results come back in request order and are bit-identical to serving
//! the same requests sequentially, one private flow each — pinned by the
//! `sweep_equivalence` suite.
//!
//! For serving *repeat* traffic, [`Engine::with_solution_cache`] layers a
//! [`SolutionCache`] of whole request outcomes over the registry: a
//! repeat `(SOC, width cap, budget, op, mode, grid)` request returns the
//! cached result without invoking the solver at all, and concurrent
//! identical requests coalesce onto one solve. `soctam-server` runs an
//! engine configured this way behind its TCP listener.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use soctam_core::engine::{Engine, EngineOutput, EngineRequest};
//! use soctam_core::flow::FlowConfig;
//! use soctam_core::soc::benchmarks;
//!
//! let engine = Engine::new();
//! let soc = Arc::new(benchmarks::d695());
//! let results = engine.serve(&[
//!     EngineRequest::schedule(Arc::clone(&soc), FlowConfig::quick(), 16),
//!     EngineRequest::bounds(Arc::clone(&soc), FlowConfig::quick(), vec![16, 32]),
//! ]);
//! assert_eq!(results.len(), 2);
//! let EngineOutput::Schedule(run) = results[0].as_ref().unwrap() else {
//!     panic!("first request was a schedule");
//! };
//! assert!(run.schedule.makespan() >= run.lower_bound);
//! // Both requests shared one compiled context.
//! assert_eq!(engine.registry().stats().misses, 1);
//! ```

use std::hash::{DefaultHasher, Hash, Hasher};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use soctam_schedule::obs;
use soctam_schedule::{
    panic_message, CacheLookup, ContextRegistry, Cycles, ScheduleError, SolutionCache,
    SolutionCacheStats, TamWidth,
};
use soctam_soc::Soc;
use soctam_volume::SweepPoint;

use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::flow::{FlowConfig, FlowRun, ParamSweep, TestFlow};

/// What one request asks the engine to compute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EngineOp {
    /// Best-of-sweep schedule, wires, bound, and volume at one width
    /// ([`TestFlow::run`]).
    Schedule {
        /// SOC TAM width `W`.
        width: TamWidth,
    },
    /// The `T(W)`/`V(W)` series over several widths
    /// ([`TestFlow::sweep_widths`]).
    Sweep {
        /// Widths to sweep, in order.
        widths: Vec<TamWidth>,
    },
    /// Testing-time lower bounds at several widths
    /// ([`CompiledSoc::lower_bounds`](soctam_schedule::CompiledSoc::lower_bounds)).
    Bounds {
        /// Widths to bound, in order.
        widths: Vec<TamWidth>,
    },
}

/// One unit of engine work: an SOC, a flow configuration (width cap,
/// parameter sweep, power policy, preemption mode), and an operation.
#[derive(Debug, Clone)]
pub struct EngineRequest {
    /// The SOC under test (shared, so a thousand requests over one SOC
    /// carry one model).
    pub soc: Arc<Soc>,
    /// Flow configuration; `w_max` and the resolved power budget select
    /// the registry key.
    pub flow: FlowConfig,
    /// The operation to perform.
    pub op: EngineOp,
    /// Whether the caller asked for the phase trace in the response
    /// (`--trace` / `trace=1`). Presentation-only: *excluded* from
    /// [`solution_cache_digest`] and the solution key, so traced and
    /// untraced twins share one cache entry and one balancer shard.
    pub trace: bool,
}

impl EngineRequest {
    /// A best-of-schedule request at one width.
    pub fn schedule(soc: Arc<Soc>, flow: FlowConfig, width: TamWidth) -> Self {
        Self {
            soc,
            flow,
            op: EngineOp::Schedule { width },
            trace: false,
        }
    }

    /// A width-sweep request.
    pub fn sweep(soc: Arc<Soc>, flow: FlowConfig, widths: Vec<TamWidth>) -> Self {
        Self {
            soc,
            flow,
            op: EngineOp::Sweep { widths },
            trace: false,
        }
    }

    /// A lower-bounds request.
    pub fn bounds(soc: Arc<Soc>, flow: FlowConfig, widths: Vec<TamWidth>) -> Self {
        Self {
            soc,
            flow,
            op: EngineOp::Bounds { widths },
            trace: false,
        }
    }
}

/// The successful payload of one request.
#[derive(Debug, Clone)]
pub enum EngineOutput {
    /// Result of an [`EngineOp::Schedule`] request.
    Schedule(Box<FlowRun>),
    /// Result of an [`EngineOp::Sweep`] request.
    Sweep(Vec<SweepPoint>),
    /// Result of an [`EngineOp::Bounds`] request.
    Bounds(Vec<Cycles>),
}

/// Outcome of one request: requests fail independently (an infeasible
/// power ceiling on one SOC does not poison the batch).
pub type EngineResult = Result<EngineOutput, ScheduleError>;

/// How the solution cache disposed of one request — reported by
/// [`Engine::serve_one_traced`] so a serving tier can log the cache
/// outcome per request instead of diffing racy global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from a completed cached result; the solver never ran.
    Hit,
    /// No usable cached entry; this request ran the solve.
    Miss,
    /// Joined a solve already in flight for an identical request.
    Coalesced,
    /// The engine has no solution cache; every request solves.
    Uncached,
}

impl CacheDisposition {
    /// The disposition as a lowercase label
    /// (`hit`/`miss`/`coalesced`/`uncached`), the form request logs use.
    pub fn label(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Coalesced => "coalesced",
            Self::Uncached => "uncached",
        }
    }
}

impl From<CacheLookup> for CacheDisposition {
    fn from(lookup: CacheLookup) -> Self {
        match lookup {
            CacheLookup::Hit => Self::Hit,
            CacheLookup::Miss => Self::Miss,
            CacheLookup::Coalesced => Self::Coalesced,
        }
    }
}

/// The identity of one cacheable request outcome: everything that can
/// change the result. That is the [`ContextRegistry`] key — SOC content,
/// width cap, resolved power budget — plus the operation (kind and
/// widths), the scheduling mode, and the parameter grid searched. The
/// flow's `parallel` switch and the engine's thread count are *excluded*:
/// the equivalence suites pin that they never change an output bit.
#[derive(Debug, Clone)]
struct SolutionKey {
    w_max: TamWidth,
    budget: Option<u64>,
    preemption: bool,
    soc_hash: u64,
    op: EngineOp,
    sweep: ParamSweep,
    soc: Arc<Soc>,
}

impl SolutionKey {
    fn new(request: &EngineRequest, budget: Option<u64>) -> Self {
        // Same cached content hash as the registry's ContextKey: shard
        // selection and probing hash a u64 instead of re-walking the model.
        let mut h = DefaultHasher::new();
        request.soc.hash(&mut h);
        Self {
            w_max: request.flow.w_max.max(1),
            budget,
            preemption: request.flow.allow_preemption,
            soc_hash: h.finish(),
            op: request.op.clone(),
            sweep: request.flow.sweep.clone(),
            soc: Arc::clone(&request.soc),
        }
    }
}

impl PartialEq for SolutionKey {
    fn eq(&self, other: &Self) -> bool {
        // Cheap fields first; full SOC content comparison only on a hash
        // match, so a 64-bit collision can never alias two different SOCs.
        self.w_max == other.w_max
            && self.budget == other.budget
            && self.preemption == other.preemption
            && self.soc_hash == other.soc_hash
            && self.op == other.op
            && self.sweep == other.sweep
            && self.soc == other.soc
    }
}

impl Eq for SolutionKey {}

impl Hash for SolutionKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal keys have equal SOC content and therefore equal cached
        // hashes, so skipping the model upholds the Hash/Eq contract.
        self.w_max.hash(state);
        self.budget.hash(state);
        self.preemption.hash(state);
        self.soc_hash.hash(state);
        self.op.hash(state);
        self.sweep.hash(state);
    }
}

/// A stable 64-bit digest of `request`'s solution-cache identity: the
/// exact fields [`SolutionKey`] hashes (SOC content, width cap, resolved
/// power budget, preemption mode, operation, parameter grid), fed through
/// the same `DefaultHasher`. Two requests digest equally exactly when the
/// solution cache would hash them onto the same entry, which is what a
/// cluster front needs to pin each cache key to one backend shard — see
/// [`protocol::route_key`](crate::protocol::route_key). `DefaultHasher`
/// uses fixed SipHash keys, so the digest is stable across processes and
/// runs of the same build.
#[must_use]
pub fn solution_cache_digest(request: &EngineRequest) -> u64 {
    let budget = request.flow.power.resolve(&request.soc);
    let mut h = DefaultHasher::new();
    SolutionKey::new(request, budget).hash(&mut h);
    h.finish()
}

/// Concurrent batch-serving facade over a shared [`ContextRegistry`].
///
/// Construction is cheap; the engine is `Sync`, so one instance can serve
/// overlapping batches from many caller threads — the registry below it
/// is the single source of compiled contexts.
#[derive(Debug)]
pub struct Engine {
    registry: Arc<ContextRegistry>,
    solutions: Option<Arc<SolutionCache<SolutionKey, EngineOutput, ScheduleError>>>,
    threads: Option<NonZeroUsize>,
    faults: Option<Arc<FaultPlan>>,
    recovered_panics: AtomicU64,
}

impl Engine {
    /// An engine over a fresh default registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(ContextRegistry::default()))
    }

    /// An engine over an existing (possibly shared) registry.
    pub fn with_registry(registry: Arc<ContextRegistry>) -> Self {
        Self {
            registry,
            solutions: None,
            threads: None,
            faults: None,
            recovered_panics: AtomicU64::new(0),
        }
    }

    /// Layers a [`SolutionCache`] over the engine: repeat requests with
    /// the same result-relevant fields (SOC content, width cap, resolved
    /// power budget, operation, scheduling mode, parameter grid — the
    /// registry key plus width, mode, and grid) return the cached result
    /// without invoking the solver, and concurrent identical requests
    /// coalesce onto one solve. `capacity` bounds resident results (0
    /// disables caching entirely); `ttl`, when set, bounds result
    /// staleness — expired results are lazily evicted and re-solved.
    ///
    /// Cached or not, responses are bit-identical: the cache key covers
    /// every result-relevant request field, and the equivalence suites pin
    /// warm responses against direct solves.
    pub fn with_solution_cache(mut self, capacity: usize, ttl: Option<Duration>) -> Self {
        self.solutions = (capacity > 0).then(|| {
            Arc::new(SolutionCache::new(
                SolutionCache::<SolutionKey, EngineOutput, ScheduleError>::DEFAULT_SHARDS,
                capacity,
                ttl,
            ))
        });
        self
    }

    /// Caps the worker-thread count (default: available parallelism).
    /// `1` forces fully sequential serving.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads.max(1));
        self
    }

    /// Arms a deterministic [`FaultPlan`]: `solve`-site faults fire
    /// inside this engine's panic-isolation boundary, so an injected
    /// panic exercises exactly the recovery path a genuine solver bug
    /// would. Chaos suites and the `serve --fault-inject` flag use this;
    /// production engines never arm one.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// How many solver panics this engine has caught and converted into
    /// [`ScheduleError::SolverPanic`] responses.
    pub fn recovered_panics(&self) -> u64 {
        self.recovered_panics.load(Ordering::Relaxed)
    }

    /// The registry serving this engine's contexts.
    pub fn registry(&self) -> &Arc<ContextRegistry> {
        &self.registry
    }

    /// Traffic counters of the solution cache, or `None` when result
    /// caching is disabled.
    pub fn solution_stats(&self) -> Option<SolutionCacheStats> {
        self.solutions.as_ref().map(|c| c.stats())
    }

    /// Number of solved results currently resident (0 when result caching
    /// is disabled).
    pub fn solutions_len(&self) -> usize {
        self.solutions.as_ref().map_or(0, |c| c.len())
    }

    /// Total solution-cache capacity (0 when result caching is disabled).
    pub fn solutions_capacity(&self) -> usize {
        self.solutions.as_ref().map_or(0, |c| c.capacity())
    }

    /// Sweeps both caches for TTL-expired entries, returning
    /// `(contexts dropped, solutions dropped)`. A long-lived daemon calls
    /// this periodically so cold keys don't outstay their TTL.
    pub fn purge_expired(&self) -> (usize, usize) {
        (
            self.registry.purge_expired(),
            self.solutions.as_ref().map_or(0, |c| c.purge_expired()),
        )
    }

    /// Serves a batch: results are returned in request order and are
    /// bit-identical to calling [`Engine::serve_one`] per request in
    /// sequence (each request's work is independent; the winner rules and
    /// grid orders inside a request never depend on batch scheduling).
    ///
    /// Requests are distributed over scoped worker threads. When the
    /// batch alone saturates the machine (at least as many requests as
    /// cores), each request's *inner* parameter grid runs sequentially —
    /// batch-level parallelism replaces it, results are identical either
    /// way, and thread oversubscription is avoided. A small batch on a
    /// wide machine keeps the inner grid parallelism its flow
    /// configuration asks for, so two requests on sixteen cores don't
    /// idle fourteen of them.
    pub fn serve(&self, requests: &[EngineRequest]) -> Vec<EngineResult> {
        let n = requests.len();
        let hardware = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let threads = self
            .threads
            .map(NonZeroUsize::get)
            .unwrap_or(hardware)
            .min(n.max(1));
        if threads <= 1 {
            return requests.iter().map(|r| self.serve_one(r)).collect();
        }
        let inner_sequential = threads >= hardware;

        // Work-stealing over an atomic cursor: long requests (headline
        // sweeps) don't leave a statically chunked worker idle. Each
        // worker tags results with the request index, so the merge below
        // restores request order deterministically.
        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, EngineResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, self.serve_request(&requests[i], inner_sequential)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<EngineResult>> = (0..n).map(|_| None).collect();
        for (i, result) in per_worker.into_iter().flatten() {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every request served"))
            .collect()
    }

    /// Serves a single request through the registry.
    pub fn serve_one(&self, request: &EngineRequest) -> EngineResult {
        self.serve_request(request, false)
    }

    /// [`Engine::serve_one`], additionally reporting how the solution
    /// cache disposed of the request (hit / miss / coalesced, or
    /// [`CacheDisposition::Uncached`] when no cache is configured).
    pub fn serve_one_traced(&self, request: &EngineRequest) -> (EngineResult, CacheDisposition) {
        let budget = request.flow.power.resolve(&request.soc);
        match &self.solutions {
            Some(cache) => {
                // The span covers the whole cache interaction: a hit or a
                // coalesced wait is all cache_lookup; a miss nests the
                // solve's compile/menu/sweep spans inside it (the closure
                // runs on this thread).
                let _lookup_span = obs::span(obs::Phase::CacheLookup);
                let (result, lookup) = cache
                    .get_or_compute_traced(SolutionKey::new(request, budget), || {
                        self.solve(request, budget, false)
                    });
                (result, lookup.into())
            }
            None => (
                self.solve(request, budget, false),
                CacheDisposition::Uncached,
            ),
        }
    }

    fn serve_request(&self, request: &EngineRequest, inner_sequential: bool) -> EngineResult {
        let budget = request.flow.power.resolve(&request.soc);
        match &self.solutions {
            Some(cache) => cache.get_or_compute(SolutionKey::new(request, budget), || {
                self.solve(request, budget, inner_sequential)
            }),
            None => self.solve(request, budget, inner_sequential),
        }
    }

    /// The uncached solve, under the engine's panic-isolation boundary:
    /// a panic anywhere below — the registry compile, the scheduler, the
    /// wire assigner, an armed `solve`-site fault — is caught here and
    /// rendered as a per-request [`ScheduleError::SolverPanic`] instead
    /// of unwinding through the caller's worker thread. Because this
    /// boundary sits *inside* the solution cache's solve closure, a
    /// panicking solve publishes an error into the rendezvous cell like
    /// any other failure: coalesced waiters receive it and the entry is
    /// torn down, never cached.
    fn solve(
        &self,
        request: &EngineRequest,
        budget: Option<u64>,
        inner_sequential: bool,
    ) -> EngineResult {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.fire_solve_faults()?;
            self.solve_unguarded(request, budget, inner_sequential)
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                self.recovered_panics.fetch_add(1, Ordering::Relaxed);
                Err(ScheduleError::SolverPanic {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// Applies any armed `solve`-site faults: latency stalls compose,
    /// then the first panic/error action strikes.
    fn fire_solve_faults(&self) -> Result<(), ScheduleError> {
        let Some(plan) = &self.faults else {
            return Ok(());
        };
        let mut strike = None;
        for action in plan.fire(FaultSite::Solve) {
            match action {
                FaultAction::Latency(d) => std::thread::sleep(d),
                other => strike = strike.or(Some(other)),
            }
        }
        match strike {
            Some(FaultAction::Panic) => panic!("injected fault: solver panic"),
            Some(FaultAction::Error) => Err(ScheduleError::SolverPanic {
                message: "injected fault: solver error".to_owned(),
            }),
            _ => Ok(()),
        }
    }

    /// The solve body proper: context from the registry, then the
    /// requested operation over it.
    fn solve_unguarded(
        &self,
        request: &EngineRequest,
        budget: Option<u64>,
        inner_sequential: bool,
    ) -> EngineResult {
        let ctx = self
            .registry
            .get_or_compile(&request.soc, request.flow.w_max, budget);
        let mut cfg = request.flow.clone();
        cfg.w_max = ctx.w_max(); // the registry clamps w_max to >= 1
        if inner_sequential {
            cfg.parallel = false;
        }
        let flow = TestFlow::with_context(ctx, cfg);
        match &request.op {
            EngineOp::Schedule { width } => flow
                .run(*width)
                .map(|run| EngineOutput::Schedule(Box::new(run))),
            EngineOp::Sweep { widths } => flow
                .sweep_widths(widths.iter().copied())
                .map(EngineOutput::Sweep),
            EngineOp::Bounds { widths } => {
                if widths.contains(&0) {
                    return Err(ScheduleError::InvalidConfig {
                        reason: "lower bounds need at least one wire".to_owned(),
                    });
                }
                Ok(EngineOutput::Bounds(flow.context().lower_bounds(widths)))
            }
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{ParamSweep, PowerPolicy};
    use soctam_soc::benchmarks;

    fn quick() -> FlowConfig {
        FlowConfig {
            sweep: ParamSweep::quick(),
            ..FlowConfig::new()
        }
    }

    fn mixed_batch() -> Vec<EngineRequest> {
        let d695 = Arc::new(benchmarks::d695());
        let p34392 = Arc::new(benchmarks::p34392());
        vec![
            EngineRequest::schedule(Arc::clone(&d695), quick(), 16),
            EngineRequest::bounds(Arc::clone(&p34392), quick(), vec![16, 24, 32]),
            EngineRequest::schedule(Arc::clone(&d695), quick().without_preemption(), 32),
            EngineRequest::sweep(p34392, quick(), vec![16, 24]),
            EngineRequest::schedule(d695, quick().with_power(PowerPolicy::MaxCorePower), 24),
        ]
    }

    #[test]
    fn batch_matches_sequential_single_flows() {
        let requests = mixed_batch();
        let engine = Engine::new();
        let batch = engine.serve(&requests);
        for (req, result) in requests.iter().zip(&batch) {
            let private = TestFlow::new(&req.soc, req.flow.clone());
            match (&req.op, result.as_ref().unwrap()) {
                (EngineOp::Schedule { width }, EngineOutput::Schedule(run)) => {
                    let want = private.run(*width).unwrap();
                    assert_eq!(run.schedule, want.schedule);
                    assert_eq!(run.params, want.params);
                    assert_eq!(run.lower_bound, want.lower_bound);
                    assert_eq!(run.volume, want.volume);
                }
                (EngineOp::Sweep { widths }, EngineOutput::Sweep(points)) => {
                    let want = private.sweep_widths(widths.iter().copied()).unwrap();
                    assert_eq!(*points, want);
                }
                (EngineOp::Bounds { widths }, EngineOutput::Bounds(bounds)) => {
                    assert_eq!(*bounds, private.context().lower_bounds(widths));
                }
                (op, out) => panic!("op {op:?} produced mismatched output {out:?}"),
            }
        }
    }

    #[test]
    fn one_compile_per_key_across_a_batch() {
        let requests = mixed_batch();
        let engine = Engine::new();
        let _ = engine.serve(&requests);
        // Keys: (d695, 64, None) shared by two requests, (d695, 64,
        // Some(P)) for the power-constrained one, (p34392, 64, None)
        // shared by two requests.
        let stats = engine.registry().stats();
        assert_eq!(stats.misses, 3, "one compile per (SOC, w_max, budget)");
        assert_eq!(stats.hits, 2, "repeat keys served from the registry");
        // A second identical batch compiles nothing.
        let _ = engine.serve(&requests);
        assert_eq!(engine.registry().stats().misses, 3);
    }

    #[test]
    fn sequential_engine_matches_parallel_engine() {
        let requests = mixed_batch();
        let par = Engine::new().serve(&requests);
        let seq = Engine::new().with_threads(1).serve(&requests);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            match (a.as_ref().unwrap(), b.as_ref().unwrap()) {
                (EngineOutput::Schedule(x), EngineOutput::Schedule(y)) => {
                    assert_eq!(x.schedule, y.schedule);
                    assert_eq!(x.params, y.params);
                }
                (EngineOutput::Sweep(x), EngineOutput::Sweep(y)) => assert_eq!(x, y),
                (EngineOutput::Bounds(x), EngineOutput::Bounds(y)) => assert_eq!(x, y),
                _ => panic!("output kinds diverged between parallel and sequential"),
            }
        }
    }

    #[test]
    fn failures_are_per_request() {
        let d695 = Arc::new(benchmarks::d695());
        let impossible = quick().with_power(PowerPolicy::Absolute(1));
        let requests = vec![
            EngineRequest::schedule(Arc::clone(&d695), impossible, 16),
            EngineRequest::schedule(Arc::clone(&d695), quick(), 16),
            EngineRequest::bounds(d695, quick(), vec![0]),
        ];
        let results = Engine::new().serve(&requests);
        assert!(results[0].is_err(), "1-unit power ceiling is infeasible");
        assert!(results[1].is_ok(), "healthy request unaffected");
        assert!(results[2].is_err(), "zero-wire bound rejected, not a panic");
    }

    fn assert_same_output(a: &EngineOutput, b: &EngineOutput) {
        match (a, b) {
            (EngineOutput::Schedule(x), EngineOutput::Schedule(y)) => {
                assert_eq!(x.schedule, y.schedule);
                assert_eq!(x.params, y.params);
                assert_eq!(x.lower_bound, y.lower_bound);
                assert_eq!(x.volume, y.volume);
            }
            (EngineOutput::Sweep(x), EngineOutput::Sweep(y)) => assert_eq!(x, y),
            (EngineOutput::Bounds(x), EngineOutput::Bounds(y)) => assert_eq!(x, y),
            _ => panic!("output kinds diverged between cached and uncached"),
        }
    }

    #[test]
    fn cached_engine_matches_uncached_bit_for_bit() {
        let requests = mixed_batch();
        let cached = Engine::new().with_solution_cache(64, None);
        let plain = Engine::new();
        let cold = cached.serve(&requests);
        let warm = cached.serve(&requests);
        let want = plain.serve(&requests);
        for ((c, w), p) in cold.iter().zip(&warm).zip(&want) {
            assert_same_output(c.as_ref().unwrap(), p.as_ref().unwrap());
            assert_same_output(w.as_ref().unwrap(), p.as_ref().unwrap());
        }
        let stats = cached.solution_stats().unwrap();
        assert_eq!(stats.misses, requests.len() as u64, "cold pass solves all");
        assert_eq!(
            stats.hits,
            requests.len() as u64,
            "warm pass solves nothing"
        );
        // The warm pass never touched the registry either: solution hits
        // short-circuit before context lookup.
        assert_eq!(cached.registry().stats().misses, 3);
        assert_eq!(cached.solutions_len(), requests.len());
    }

    #[test]
    fn concurrent_identical_requests_coalesce_onto_one_solve() {
        let engine = Arc::new(Engine::new().with_solution_cache(16, None));
        let d695 = Arc::new(benchmarks::d695());
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let soc = Arc::clone(&d695);
                    scope
                        .spawn(move || engine.serve_one(&EngineRequest::schedule(soc, quick(), 16)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in results.windows(2) {
            assert_same_output(pair[0].as_ref().unwrap(), pair[1].as_ref().unwrap());
        }
        let stats = engine.solution_stats().unwrap();
        assert_eq!(stats.misses, 1, "four identical requests, one solve");
        assert_eq!(stats.hits + stats.coalesced, 3);
    }

    #[test]
    fn traced_serving_reports_cache_dispositions() {
        let engine = Engine::new().with_solution_cache(16, None);
        let d695 = Arc::new(benchmarks::d695());
        let req = EngineRequest::bounds(Arc::clone(&d695), quick(), vec![16]);
        let (first, d1) = engine.serve_one_traced(&req);
        let (second, d2) = engine.serve_one_traced(&req);
        assert_same_output(first.as_ref().unwrap(), second.as_ref().unwrap());
        assert_eq!(d1, CacheDisposition::Miss);
        assert_eq!(d2, CacheDisposition::Hit);

        let plain = Engine::new();
        let (result, d) = plain.serve_one_traced(&req);
        assert!(result.is_ok());
        assert_eq!(d, CacheDisposition::Uncached);
        assert_eq!(d.label(), "uncached");
    }

    #[test]
    fn failed_requests_are_not_cached() {
        let engine = Engine::new().with_solution_cache(16, None);
        let d695 = Arc::new(benchmarks::d695());
        let bad = EngineRequest::bounds(Arc::clone(&d695), quick(), vec![0]);
        assert!(engine.serve_one(&bad).is_err());
        assert!(engine.serve_one(&bad).is_err());
        let stats = engine.solution_stats().unwrap();
        assert_eq!(stats.misses, 2, "errors are retried, not cached");
        assert_eq!(stats.failures, 2);
        assert_eq!(engine.solutions_len(), 0);
    }

    #[test]
    fn ttl_expires_solutions_and_contexts() {
        let ttl = std::time::Duration::from_millis(40);
        let registry = Arc::new(ContextRegistry::default().with_ttl(ttl));
        let engine = Engine::with_registry(registry).with_solution_cache(16, Some(ttl));
        let d695 = Arc::new(benchmarks::d695());
        let req = EngineRequest::bounds(Arc::clone(&d695), quick(), vec![16, 32]);
        let cold = engine.serve_one(&req).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(120));
        let reheated = engine.serve_one(&req).unwrap();
        assert_same_output(&cold, &reheated);
        let stats = engine.solution_stats().unwrap();
        assert_eq!(stats.expiries, 1, "the solution expired and re-solved");
        assert_eq!(stats.misses, 2);
        assert_eq!(
            engine.registry().stats().expiries,
            1,
            "the context expired and recompiled"
        );
        // purge_expired sweeps both tiers once the fresh entries age out.
        std::thread::sleep(std::time::Duration::from_millis(120));
        assert_eq!(engine.purge_expired(), (1, 1));
        assert_eq!(engine.solutions_len(), 0);
        assert!(engine.registry().is_empty());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let engine = Engine::new().with_solution_cache(0, None);
        assert!(engine.solution_stats().is_none());
        assert_eq!(engine.solutions_capacity(), 0);
        let d695 = Arc::new(benchmarks::d695());
        let req = EngineRequest::bounds(d695, quick(), vec![16]);
        assert!(engine.serve_one(&req).is_ok());
        assert_eq!(engine.solutions_len(), 0);
    }

    #[test]
    fn injected_solver_panics_become_transient_errors_and_are_not_cached() {
        let plan = Arc::new(FaultPlan::parse("solve:panic:every=2").unwrap());
        let engine = Engine::new()
            .with_solution_cache(16, None)
            .with_fault_plan(Arc::clone(&plan));
        let d695 = Arc::new(benchmarks::d695());
        let req = EngineRequest::bounds(Arc::clone(&d695), quick(), vec![16]);

        // Solve #1 is clean and caches; evict it so solve #2 happens.
        assert!(engine.serve_one(&req).is_ok());
        engine.solutions.as_ref().unwrap().clear();
        // Solve #2 hits the fault: the panic is caught, rendered as a
        // transient SolverPanic, and the worker thread survives.
        let err = engine.serve_one(&req).unwrap_err();
        assert!(err.is_transient(), "recovered panic is transient: {err}");
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(engine.recovered_panics(), 1);
        assert_eq!(plan.injected_total(), 1);
        // The failure was not cached: solve #3 retries and succeeds.
        assert!(engine.serve_one(&req).is_ok());
        assert_eq!(engine.solutions_len(), 1);
        // The cache never saw a raw panic — the engine caught it first.
        assert_eq!(engine.solution_stats().unwrap().panics, 0);
    }

    #[test]
    fn concurrent_identical_requests_all_receive_the_recovered_panic() {
        // Coalesced waiters on a panicking solve must get the error, not
        // hang: the engine's catch_unwind sits inside the cache's solve
        // closure, so the panic is published into the rendezvous cell as
        // an ordinary failed result.
        let plan = Arc::new(FaultPlan::parse("solve:panic").unwrap());
        let engine = Arc::new(
            Engine::new()
                .with_solution_cache(16, None)
                .with_fault_plan(plan),
        );
        let d695 = Arc::new(benchmarks::d695());
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let soc = Arc::clone(&d695);
                    scope
                        .spawn(move || engine.serve_one(&EngineRequest::schedule(soc, quick(), 16)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for result in results {
            assert!(result.unwrap_err().is_transient(), "every request errored");
        }
        assert_eq!(engine.solutions_len(), 0, "no panicked result was cached");
    }

    #[test]
    fn batch_with_injected_faults_fails_only_the_struck_requests() {
        // Deterministic plan: solves 2 and 4 are struck. With a
        // single-threaded engine the solve order equals request order.
        let plan = Arc::new(FaultPlan::parse("solve:error:every=2").unwrap());
        let engine = Engine::new().with_threads(1).with_fault_plan(plan);
        let d695 = Arc::new(benchmarks::d695());
        let req = |w| EngineRequest::bounds(Arc::clone(&d695), quick(), vec![w]);
        let results = engine.serve(&[req(8), req(16), req(24), req(32)]);
        assert!(results[0].is_ok());
        assert!(results[1].as_ref().is_err_and(ScheduleError::is_transient));
        assert!(results[2].is_ok());
        assert!(results[3].as_ref().is_err_and(ScheduleError::is_transient));
    }

    #[test]
    fn injected_latency_delays_but_does_not_corrupt() {
        let plan = Arc::new(FaultPlan::parse("solve:latency=1ms").unwrap());
        let faulted = Engine::new().with_fault_plan(plan);
        let clean = Engine::new();
        let d695 = Arc::new(benchmarks::d695());
        let req = EngineRequest::bounds(Arc::clone(&d695), quick(), vec![16, 32]);
        assert_same_output(
            &faulted.serve_one(&req).unwrap(),
            &clean.serve_one(&req).unwrap(),
        );
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = Arc::new(Engine::new());
        let d695 = Arc::new(benchmarks::d695());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let soc = Arc::clone(&d695);
            handles.push(std::thread::spawn(move || {
                engine.serve(&[EngineRequest::bounds(soc, quick(), vec![16, 32])])
            }));
        }
        for h in handles {
            let results = h.join().unwrap();
            let EngineOutput::Bounds(b) = results[0].as_ref().unwrap() else {
                panic!("bounds request");
            };
            assert_eq!(b.len(), 2);
        }
        assert_eq!(
            engine.registry().stats().misses,
            1,
            "four threads, one compile"
        );
    }
}
