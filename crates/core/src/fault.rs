//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] is a comma-separated list of fault specs parsed from
//! the `serve --fault-inject` flag:
//!
//! ```text
//! solve:panic:every=97,io:latency=5ms:every=13
//! ```
//!
//! Each spec is `site:action[=param][:every=N]`:
//!
//! * **site** — where the fault strikes: `solve` (inside the engine's
//!   solve path, under its panic isolation) or `io` (the daemon's
//!   per-request connection handling);
//! * **action** — `panic` (the site panics), `error` (the site fails with
//!   a transient error; at the `io` site the connection is severed as if
//!   the transport died), or `latency=DUR` (the site stalls for `DUR`,
//!   e.g. `5ms`, `2s`, `250us`);
//! * **every=N** — the fault fires on every `N`th occurrence at its site
//!   (default 1: every occurrence).
//!
//! Firing is counter-based, not random: the `k`th solve (or request)
//! hits a fault if and only if `k ≡ 0 (mod N)`, so a chaos run is exactly
//! reproducible and the non-faulted requests are knowable in advance —
//! which is what lets the chaos suite assert they stay bit-identical to a
//! fault-free run. Each spec counts how often it fired
//! ([`FaultPlan::injected`]); the serving layer exports those counts (and
//! the matching recovery counters) through `/metrics`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The engine's solve path (under its `catch_unwind` isolation).
    Solve,
    /// The serving daemon's per-request connection handling.
    Io,
}

impl FaultSite {
    fn label(self) -> &'static str {
        match self {
            FaultSite::Solve => "solve",
            FaultSite::Io => "io",
        }
    }
}

/// What a firing fault does to its site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// The site panics.
    Panic,
    /// The site fails with a transient error (the `io` site severs the
    /// connection, as a dead transport would).
    Error,
    /// The site stalls for the given duration before proceeding.
    Latency(Duration),
}

/// One parsed fault spec with its deterministic firing counters.
#[derive(Debug)]
pub struct FaultSpec {
    site: FaultSite,
    action: FaultAction,
    every: u64,
    hits: AtomicU64,
    injected: AtomicU64,
}

impl FaultSpec {
    /// The canonical label for this spec (`site:action`, e.g.
    /// `solve:panic` or `io:latency`), the form `/metrics` uses.
    pub fn label(&self) -> String {
        let action = match &self.action {
            FaultAction::Panic => "panic",
            FaultAction::Error => "error",
            FaultAction::Latency(_) => "latency",
        };
        format!("{}:{}", self.site.label(), action)
    }

    /// How often this fault has fired.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// A parsed `--fault-inject` plan. See the [module docs](self) for the
/// grammar and determinism guarantees.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parses a comma-separated plan (`site:action[=param][:every=N]`, …).
    ///
    /// # Errors
    ///
    /// A message naming the malformed spec and what was expected.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut specs = Vec::new();
        for raw in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            specs.push(Self::parse_spec(raw)?);
        }
        if specs.is_empty() {
            return Err("empty fault plan: expected site:action[=param][:every=N], ...".to_owned());
        }
        Ok(Self { specs })
    }

    fn parse_spec(raw: &str) -> Result<FaultSpec, String> {
        let mut parts = raw.split(':');
        let site = match parts.next() {
            Some("solve") => FaultSite::Solve,
            Some("io") => FaultSite::Io,
            other => {
                return Err(format!(
                    "fault spec `{raw}`: unknown site `{}` (expected solve or io)",
                    other.unwrap_or("")
                ))
            }
        };
        let action = match parts.next() {
            Some("panic") => FaultAction::Panic,
            Some("error") => FaultAction::Error,
            Some(a) if a.starts_with("latency=") => FaultAction::Latency(
                parse_duration(&a["latency=".len()..])
                    .map_err(|e| format!("fault spec `{raw}`: {e}"))?,
            ),
            other => {
                return Err(format!(
                "fault spec `{raw}`: unknown action `{}` (expected panic, error, or latency=DUR)",
                other.unwrap_or("")
            ))
            }
        };
        let every = match parts.next() {
            None => 1,
            Some(e) if e.starts_with("every=") => e["every=".len()..]
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("fault spec `{raw}`: every=N needs a positive integer"))?,
            Some(junk) => return Err(format!("fault spec `{raw}`: unexpected `{junk}`")),
        };
        if let Some(junk) = parts.next() {
            return Err(format!("fault spec `{raw}`: unexpected trailing `{junk}`"));
        }
        Ok(FaultSpec {
            site,
            action,
            every,
            hits: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Advances every spec's occurrence counter for `site` and returns
    /// the actions that fire on this occurrence, in plan order. Callers
    /// apply latency actions first (they compose), then the first
    /// panic/error action.
    pub fn fire(&self, site: FaultSite) -> Vec<FaultAction> {
        let mut fired = Vec::new();
        for spec in self.specs.iter().filter(|s| s.site == site) {
            let occurrence = spec.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if occurrence % spec.every == 0 {
                spec.injected.fetch_add(1, Ordering::Relaxed);
                fired.push(spec.action.clone());
            }
        }
        fired
    }

    /// Per-spec injection counts as `(label, count)` pairs, in plan
    /// order — the rows `/metrics` renders.
    pub fn injected(&self) -> Vec<(String, u64)> {
        self.specs
            .iter()
            .map(|s| (s.label(), s.injected()))
            .collect()
    }

    /// Total injections across the plan.
    pub fn injected_total(&self) -> u64 {
        self.specs.iter().map(FaultSpec::injected).sum()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match &spec.action {
                FaultAction::Latency(d) => {
                    write!(f, "{}:latency={}us", spec.site.label(), d.as_micros())?
                }
                _ => write!(f, "{}", spec.label())?,
            }
            if spec.every != 1 {
                write!(f, ":every={}", spec.every)?;
            }
        }
        Ok(())
    }
}

/// Parses `250us` / `5ms` / `2s` into a [`Duration`].
fn parse_duration(text: &str) -> Result<Duration, String> {
    let (digits, unit): (String, String) = text.chars().partition(|c| c.is_ascii_digit());
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration `{text}` (expected e.g. 5ms, 2s, 250us)"))?;
    match unit.as_str() {
        "us" => Ok(Duration::from_micros(n)),
        "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        _ => Err(format!(
            "bad duration unit in `{text}` (expected us, ms, or s)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_grammar() {
        let plan = FaultPlan::parse("solve:panic:every=97,io:latency=5ms:every=13").unwrap();
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.specs[0].site, FaultSite::Solve);
        assert_eq!(plan.specs[0].action, FaultAction::Panic);
        assert_eq!(plan.specs[0].every, 97);
        assert_eq!(plan.specs[1].site, FaultSite::Io);
        assert_eq!(
            plan.specs[1].action,
            FaultAction::Latency(Duration::from_millis(5))
        );
        assert_eq!(plan.specs[1].every, 13);
        assert_eq!(
            plan.to_string(),
            "solve:panic:every=97,io:latency=5000us:every=13"
        );
    }

    #[test]
    fn every_defaults_to_one_and_error_action_parses() {
        let plan = FaultPlan::parse("io:error").unwrap();
        assert_eq!(plan.specs[0].every, 1);
        assert_eq!(plan.specs[0].action, FaultAction::Error);
        assert_eq!(plan.fire(FaultSite::Io), vec![FaultAction::Error]);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "solve",
            "solve:explode",
            "network:panic",
            "solve:panic:every=0",
            "solve:panic:every=x",
            "io:latency=5parsec",
            "solve:panic:every=3:extra",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn firing_is_deterministic_modulo_every() {
        let plan = FaultPlan::parse("solve:panic:every=3").unwrap();
        let fired: Vec<bool> = (1..=9)
            .map(|_| !plan.fire(FaultSite::Solve).is_empty())
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.injected(), vec![("solve:panic".to_owned(), 3)]);
        assert_eq!(plan.injected_total(), 3);
        // Occurrences at the other site never advance this spec.
        assert!(plan.fire(FaultSite::Io).is_empty());
        assert_eq!(plan.injected_total(), 3);
    }

    #[test]
    fn multiple_specs_at_one_site_fire_independently() {
        let plan = FaultPlan::parse("solve:latency=1us:every=2,solve:error:every=3").unwrap();
        let mut latencies = 0;
        let mut errors = 0;
        for _ in 1..=6 {
            for action in plan.fire(FaultSite::Solve) {
                match action {
                    FaultAction::Latency(_) => latencies += 1,
                    FaultAction::Error => errors += 1,
                    FaultAction::Panic => unreachable!(),
                }
            }
        }
        assert_eq!((latencies, errors), (3, 2));
    }

    #[test]
    fn durations_parse_in_all_units() {
        assert_eq!(parse_duration("250us").unwrap(), Duration::from_micros(250));
        assert_eq!(parse_duration("5ms").unwrap(), Duration::from_millis(5));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert!(parse_duration("5").is_err());
        assert!(parse_duration("ms").is_err());
    }
}
