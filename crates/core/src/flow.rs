//! The one-stop test automation flow: SOC in, schedule + wires + trade-off
//! data out.

use soctam_schedule::bounds::lower_bound;
use soctam_schedule::{Schedule, ScheduleBuilder, ScheduleError, SchedulerConfig, TamWidth};
use soctam_soc::Soc;
use soctam_tam::WireAssignment;
use soctam_volume::{volume_of, CostCurve, SweepPoint};

/// The parameter grid the flow searches per width, mirroring the paper's
/// "best result over all integer values of m and d" methodology, extended
/// with the idle-fill slack (which the paper fixes at 3 but explicitly
/// allows the system integrator to retune).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSweep {
    /// Preferred-width percentages `m` to try.
    pub percents: Vec<u32>,
    /// Pareto bump distances `d` to try.
    pub bumps: Vec<TamWidth>,
    /// Idle-fill slack values to try.
    pub slacks: Vec<TamWidth>,
}

impl ParamSweep {
    /// The paper's sweep: `1 ≤ m ≤ 10`, `0 ≤ d ≤ 4`, slack fixed at 3.
    pub fn paper() -> Self {
        Self {
            percents: (1..=10).collect(),
            bumps: (0..=4).collect(),
            slacks: vec![3],
        }
    }

    /// An extended sweep that also explores coarser preferred widths and
    /// wider idle-fill slack; used for the headline table reproductions.
    pub fn extended() -> Self {
        Self {
            percents: (1..=10)
                .chain([12, 15, 18, 22, 26, 30, 35, 40, 45, 52, 60])
                .collect(),
            bumps: (0..=4).collect(),
            slacks: vec![3, 5, 8, 12],
        }
    }

    /// A small sweep for unit tests and interactive use.
    pub fn quick() -> Self {
        Self {
            percents: vec![1, 5, 10, 25, 45],
            bumps: vec![0, 1, 3],
            slacks: vec![3, 8],
        }
    }

    /// Number of scheduler runs one width costs under this sweep.
    pub fn runs(&self) -> usize {
        self.percents.len() * self.bumps.len() * self.slacks.len()
    }
}

/// How the flow derives the power ceiling `P_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerPolicy {
    /// No power constraint.
    Unlimited,
    /// `P_max` = the largest single-core power rating — the tightest
    /// feasible ceiling; used for the Table 1 power-constrained column.
    MaxCorePower,
    /// `P_max` = an absolute value.
    Absolute(u64),
}

impl PowerPolicy {
    /// Resolves the policy against an SOC.
    pub fn resolve(self, soc: &Soc) -> Option<u64> {
        match self {
            PowerPolicy::Unlimited => None,
            PowerPolicy::MaxCorePower => Some(soc.max_core_power()),
            PowerPolicy::Absolute(v) => Some(v),
        }
    }
}

/// Configuration of the integrated flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowConfig {
    /// Per-core width cap (the paper's `W_max = 64`).
    pub w_max: TamWidth,
    /// The parameter grid searched per width.
    pub sweep: ParamSweep,
    /// Power policy.
    pub power: PowerPolicy,
    /// Whether per-core preemption budgets are honoured.
    pub allow_preemption: bool,
}

impl FlowConfig {
    /// Paper-faithful defaults with the extended sweep.
    pub fn new() -> Self {
        Self {
            w_max: 64,
            sweep: ParamSweep::extended(),
            power: PowerPolicy::Unlimited,
            allow_preemption: true,
        }
    }

    /// Cheap configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            sweep: ParamSweep::quick(),
            ..Self::new()
        }
    }

    /// Sets the power policy.
    pub fn with_power(mut self, power: PowerPolicy) -> Self {
        self.power = power;
        self
    }

    /// Disables preemption.
    pub fn without_preemption(mut self) -> Self {
        self.allow_preemption = false;
        self
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of one flow run at one TAM width.
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// The winning schedule.
    pub schedule: Schedule,
    /// Parameters that won the sweep: `(m, d, slack)`.
    pub params: (u32, TamWidth, TamWidth),
    /// Testing-time lower bound at this width.
    pub lower_bound: u64,
    /// Concrete fork-and-merge wire assignment (verified).
    pub wires: WireAssignment,
    /// Tester data volume `W · T`.
    pub volume: u64,
}

/// The integrated framework entry point.
///
/// Owns nothing: borrows the SOC, carries a configuration, runs the three
/// framework components on demand.
#[derive(Debug, Clone)]
pub struct TestFlow<'a> {
    soc: &'a Soc,
    cfg: FlowConfig,
}

impl<'a> TestFlow<'a> {
    /// Creates a flow over `soc` with the given configuration.
    pub fn new(soc: &'a Soc, cfg: FlowConfig) -> Self {
        Self { soc, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    /// Builds the scheduler configuration for one `(width, m, d, slack)`
    /// point.
    fn scheduler_config(
        &self,
        w: TamWidth,
        m: u32,
        d: TamWidth,
        slack: TamWidth,
    ) -> SchedulerConfig {
        let mut cfg = SchedulerConfig::new(w).with_percent(m).with_bump(d);
        cfg.w_max = self.cfg.w_max;
        cfg.idle_fill_slack = slack;
        cfg.allow_preemption = self.cfg.allow_preemption;
        cfg.p_max = self.cfg.power.resolve(self.soc);
        cfg
    }

    /// Finds the best schedule at `w` over the configured parameter sweep.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors if every parameter combination fails
    /// (e.g. an infeasible power ceiling).
    pub fn best_schedule(
        &self,
        w: TamWidth,
    ) -> Result<(Schedule, (u32, TamWidth, TamWidth)), ScheduleError> {
        let mut best: Option<(Schedule, (u32, TamWidth, TamWidth))> = None;
        let mut first_err = None;
        for &slack in &self.cfg.sweep.slacks {
            for &m in &self.cfg.sweep.percents {
                for &d in &self.cfg.sweep.bumps {
                    match ScheduleBuilder::new(self.soc, self.scheduler_config(w, m, d, slack))
                        .run()
                    {
                        Ok(s) => {
                            if best
                                .as_ref()
                                .is_none_or(|(b, _)| s.makespan() < b.makespan())
                            {
                                best = Some((s, (m, d, slack)));
                            }
                        }
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
            }
        }
        best.ok_or_else(|| {
            first_err.unwrap_or(ScheduleError::InvalidConfig {
                reason: "empty parameter sweep".to_owned(),
            })
        })
    }

    /// Runs the full flow at one width: best schedule, lower bound, wire
    /// assignment, data volume.
    ///
    /// # Errors
    ///
    /// Scheduling errors as in [`TestFlow::best_schedule`]; wire assignment
    /// cannot fail for schedules this flow produces.
    pub fn run(&self, w: TamWidth) -> Result<FlowRun, ScheduleError> {
        let (schedule, params) = self.best_schedule(w)?;
        let wires = WireAssignment::assign(&schedule).map_err(|e| ScheduleError::Invalid {
            reason: e.to_string(),
        })?;
        wires.verify().map_err(|e| ScheduleError::Invalid {
            reason: e.to_string(),
        })?;
        let volume = volume_of(w, schedule.makespan());
        Ok(FlowRun {
            lower_bound: lower_bound(self.soc, w, self.cfg.w_max),
            volume,
            schedule,
            params,
            wires,
        })
    }

    /// Sweeps a range of SOC TAM widths, producing the `T(W)`/`V(W)` series
    /// behind Figures 9(a)–(b) and Table 2.
    ///
    /// # Errors
    ///
    /// Fails on the first width whose entire parameter sweep fails.
    pub fn sweep_widths(
        &self,
        widths: impl IntoIterator<Item = TamWidth>,
    ) -> Result<Vec<SweepPoint>, ScheduleError> {
        let mut out = Vec::new();
        for w in widths {
            let (schedule, _) = self.best_schedule(w)?;
            let time = schedule.makespan();
            out.push(SweepPoint {
                width: w,
                time,
                volume: volume_of(w, time),
                lower_bound: lower_bound(self.soc, w, self.cfg.w_max),
            });
        }
        Ok(out)
    }

    /// Evaluates the normalized cost function over a sweep for one `α` —
    /// the effective-TAM-width analysis of §5.
    pub fn cost_curve(points: &[SweepPoint], alpha: f64) -> CostCurve {
        CostCurve::new(points, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::validate::{validate, validate_power};
    use soctam_soc::benchmarks;

    #[test]
    fn quick_flow_runs_and_validates() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let run = flow.run(16).unwrap();
        assert!(run.schedule.makespan() >= run.lower_bound);
        assert_eq!(run.volume, 16 * run.schedule.makespan());
        validate(&soc, &run.schedule).unwrap();
        run.wires.verify().unwrap();
    }

    #[test]
    fn power_policy_resolves() {
        let soc = benchmarks::d695();
        assert_eq!(PowerPolicy::Unlimited.resolve(&soc), None);
        assert_eq!(
            PowerPolicy::MaxCorePower.resolve(&soc),
            Some(soc.max_core_power())
        );
        assert_eq!(PowerPolicy::Absolute(7).resolve(&soc), Some(7));
    }

    #[test]
    fn power_constrained_flow_respects_ceiling() {
        let soc = benchmarks::d695();
        let cfg = FlowConfig::quick().with_power(PowerPolicy::MaxCorePower);
        let flow = TestFlow::new(&soc, cfg);
        let run = flow.run(32).unwrap();
        validate(&soc, &run.schedule).unwrap();
        validate_power(&soc, &run.schedule, soc.max_core_power()).unwrap();
    }

    #[test]
    fn sweep_produces_monotone_trend() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let pts = flow.sweep_widths([8u16, 16, 32, 64]).unwrap();
        assert!(pts.last().unwrap().time < pts.first().unwrap().time);
        for p in &pts {
            assert!(p.time >= p.lower_bound);
        }
    }

    #[test]
    fn best_schedule_beats_or_ties_every_single_run() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let (best, _) = flow.best_schedule(24).unwrap();
        let single = ScheduleBuilder::new(&soc, SchedulerConfig::new(24))
            .run()
            .unwrap();
        assert!(best.makespan() <= single.makespan());
    }

    #[test]
    fn param_sweep_run_counts() {
        assert_eq!(ParamSweep::paper().runs(), 10 * 5);
        assert!(ParamSweep::extended().runs() > ParamSweep::paper().runs());
        assert_eq!(ParamSweep::quick().runs(), 5 * 3 * 2);
    }
}
