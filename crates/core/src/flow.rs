//! The one-stop test automation flow: SOC in, schedule + wires + trade-off
//! data out.
//!
//! The flow's `(m, d, slack)` best-of search is the system's hot path: one
//! table reproduction executes the scheduler hundreds of times per TAM
//! width. Three sweep-scale optimizations keep it fast without changing a
//! single output bit:
//!
//! 1. **Shared menus** — rectangle menus are invariant across the grid, so
//!    one [`RectangleMenus`] build per width feeds every run;
//! 2. **Deduplication** — `(m, d)` pairs that resolve to identical per-core
//!    preferred-width vectors schedule identically and run once;
//! 3. **Parallelism** — the surviving runs execute on scoped threads, and
//!    the winner is reduced in grid order, bit-identical to the
//!    sequential sweep.
//! 4. **One compilation per SOC** — every SOC-level precomputation
//!    (rectangle menus, constraint tables, lower-bound ingredients) lives
//!    in a shared [`CompiledSoc`]; a whole `(m, d, slack) × width` sweep
//!    compiles the SOC exactly once, and several flows over the same SOC
//!    (e.g. the three Table 1 scheduling modes) can share one context via
//!    [`TestFlow::with_context`].

use std::collections::HashSet;
use std::num::NonZeroUsize;
use std::sync::Arc;

use soctam_schedule::obs;
use soctam_schedule::{
    CompiledSoc, RectangleMenus, Schedule, ScheduleBuilder, ScheduleError, SchedulerConfig,
    TamWidth,
};
use soctam_soc::Soc;
use soctam_tam::WireAssignment;
use soctam_volume::{volume_of, CostCurve, SweepPoint};

/// The parameter grid the flow searches per width, mirroring the paper's
/// "best result over all integer values of m and d" methodology, extended
/// with the idle-fill slack (which the paper fixes at 3 but explicitly
/// allows the system integrator to retune).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamSweep {
    /// Preferred-width percentages `m` to try.
    pub percents: Vec<u32>,
    /// Pareto bump distances `d` to try.
    pub bumps: Vec<TamWidth>,
    /// Idle-fill slack values to try.
    pub slacks: Vec<TamWidth>,
}

impl ParamSweep {
    /// The paper's sweep: `1 ≤ m ≤ 10`, `0 ≤ d ≤ 4`, slack fixed at 3.
    pub fn paper() -> Self {
        Self {
            percents: (1..=10).collect(),
            bumps: (0..=4).collect(),
            slacks: vec![3],
        }
    }

    /// An extended sweep that also explores coarser preferred widths and
    /// wider idle-fill slack; used for the headline table reproductions.
    pub fn extended() -> Self {
        Self {
            percents: (1..=10)
                .chain([12, 15, 18, 22, 26, 30, 35, 40, 45, 52, 60])
                .collect(),
            bumps: (0..=4).collect(),
            slacks: vec![3, 5, 8, 12],
        }
    }

    /// A small sweep for unit tests and interactive use.
    pub fn quick() -> Self {
        Self {
            percents: vec![1, 5, 10, 25, 45],
            bumps: vec![0, 1, 3],
            slacks: vec![3, 8],
        }
    }

    /// Number of scheduler runs one width costs under this sweep.
    pub fn runs(&self) -> usize {
        self.percents.len() * self.bumps.len() * self.slacks.len()
    }
}

/// How the flow derives the power ceiling `P_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerPolicy {
    /// No power constraint.
    Unlimited,
    /// `P_max` = the largest single-core power rating — the tightest
    /// feasible ceiling; used for the Table 1 power-constrained column.
    MaxCorePower,
    /// `P_max` = an absolute value.
    Absolute(u64),
}

impl PowerPolicy {
    /// Resolves the policy against an SOC.
    pub fn resolve(self, soc: &Soc) -> Option<u64> {
        match self {
            PowerPolicy::Unlimited => None,
            PowerPolicy::MaxCorePower => Some(soc.max_core_power()),
            PowerPolicy::Absolute(v) => Some(v),
        }
    }
}

/// Configuration of the integrated flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowConfig {
    /// Per-core width cap (the paper's `W_max = 64`).
    pub w_max: TamWidth,
    /// The parameter grid searched per width.
    pub sweep: ParamSweep,
    /// Power policy.
    pub power: PowerPolicy,
    /// Whether per-core preemption budgets are honoured.
    pub allow_preemption: bool,
    /// Run the parameter grid on scoped threads (`true`, the default) or
    /// sequentially. Results are bit-identical either way; the switch
    /// exists for debugging and for the equivalence test suite.
    pub parallel: bool,
}

impl FlowConfig {
    /// Paper-faithful defaults with the extended sweep.
    pub fn new() -> Self {
        Self {
            w_max: 64,
            sweep: ParamSweep::extended(),
            power: PowerPolicy::Unlimited,
            allow_preemption: true,
            parallel: true,
        }
    }

    /// Cheap configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            sweep: ParamSweep::quick(),
            ..Self::new()
        }
    }

    /// Sets the power policy.
    pub fn with_power(mut self, power: PowerPolicy) -> Self {
        self.power = power;
        self
    }

    /// Disables preemption.
    pub fn without_preemption(mut self) -> Self {
        self.allow_preemption = false;
        self
    }

    /// Selects parallel or sequential sweep execution.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Winning sweep parameters: `(m, d, slack)`.
pub type SweepParams = (u32, TamWidth, TamWidth);

pub use soctam_schedule::SweepStats;

/// Result of one flow run at one TAM width.
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// The winning schedule.
    pub schedule: Schedule,
    /// Parameters that won the sweep: `(m, d, slack)`.
    pub params: SweepParams,
    /// Testing-time lower bound at this width.
    pub lower_bound: u64,
    /// Concrete fork-and-merge wire assignment (verified).
    pub wires: WireAssignment,
    /// Tester data volume `W · T`.
    pub volume: u64,
    /// Sweep dedup tally.
    pub sweep: SweepStats,
}

/// The integrated framework entry point.
///
/// Owns (a shared handle on) a [`CompiledSoc`] — the once-per-SOC
/// precomputation, which itself owns the SOC model — plus a
/// configuration, and runs the three framework components on demand.
/// Lifetime-free: flows can be built per request, moved across threads,
/// and share one registry-cached context (see
/// [`Engine`](crate::engine::Engine)).
#[derive(Debug, Clone)]
pub struct TestFlow {
    cfg: FlowConfig,
    ctx: Arc<CompiledSoc>,
}

impl TestFlow {
    /// Creates a flow over `soc` with the given configuration, compiling a
    /// private schedule context for it (cloning the model into shared
    /// ownership).
    pub fn new(soc: &Soc, cfg: FlowConfig) -> Self {
        let ctx = Arc::new(CompiledSoc::compile(soc, cfg.w_max));
        Self { cfg, ctx }
    }

    /// Creates a flow over an existing context, sharing its compiled
    /// menus/constraints instead of recompiling. Use this when several
    /// flow configurations (scheduling modes, power policies) sweep the
    /// same SOC, or when a [`ContextRegistry`](soctam_schedule::ContextRegistry)
    /// serves contexts across requests. Accepts an `Arc<CompiledSoc>` (a
    /// refcount-cheap clone of a cached handle) or a `CompiledSoc` by
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.w_max` differs from the context's cap — the
    /// lower-bound ingredients are compiled per cap.
    pub fn with_context(ctx: impl Into<Arc<CompiledSoc>>, cfg: FlowConfig) -> Self {
        let ctx = ctx.into();
        assert_eq!(
            cfg.w_max.max(1),
            ctx.w_max(),
            "flow w_max must match the compiled context"
        );
        Self { cfg, ctx }
    }

    /// The SOC under test (owned by the flow's context).
    pub fn soc(&self) -> &Soc {
        self.ctx.soc()
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    /// The schedule context in use.
    pub fn context(&self) -> &CompiledSoc {
        &self.ctx
    }

    /// Shared handle on the schedule context, for handing the same
    /// compilation to another flow or thread.
    pub fn context_arc(&self) -> &Arc<CompiledSoc> {
        &self.ctx
    }

    /// Builds the scheduler configuration for one `(width, m, d, slack)`
    /// point.
    fn scheduler_config(
        &self,
        w: TamWidth,
        m: u32,
        d: TamWidth,
        slack: TamWidth,
    ) -> SchedulerConfig {
        let mut cfg = SchedulerConfig::new(w).with_percent(m).with_bump(d);
        cfg.w_max = self.cfg.w_max;
        cfg.idle_fill_slack = slack;
        cfg.allow_preemption = self.cfg.allow_preemption;
        cfg.p_max = self.cfg.power.resolve(self.soc());
        cfg
    }

    /// The per-core width cap a run at SOC width `w` uses. Delegates to
    /// `SchedulerConfig::effective_w_max` (the clamp the scheduler checks
    /// shared menus against) so the two can never drift apart; the sweep
    /// parameters passed here don't affect the cap.
    fn effective_w_max(&self, w: TamWidth) -> TamWidth {
        self.scheduler_config(w, 1, 0, 3).effective_w_max()
    }

    /// The shared rectangle menus for one SOC width, from the context's
    /// per-cap cache (built on first use, reused ever after).
    pub fn menus_for(&self, w: TamWidth) -> Arc<RectangleMenus> {
        self.context().menus_at(self.effective_w_max(w))
    }

    /// Finds the best schedule at `w` over the configured parameter sweep.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors if every parameter combination fails
    /// (e.g. an infeasible power ceiling).
    pub fn best_schedule(&self, w: TamWidth) -> Result<(Schedule, SweepParams), ScheduleError> {
        self.best_schedule_detailed(w)
            .map(|(schedule, params, _)| (schedule, params))
    }

    /// [`TestFlow::best_schedule`] plus the sweep dedup tally.
    ///
    /// # Errors
    ///
    /// As for [`TestFlow::best_schedule`].
    pub fn best_schedule_detailed(
        &self,
        w: TamWidth,
    ) -> Result<(Schedule, SweepParams, SweepStats), ScheduleError> {
        let menus = self.menus_for(w);
        let _sweep = obs::span(obs::Phase::Sweep);
        self.best_schedule_with_menus(w, &menus)
    }

    /// The sweep proper, over caller-provided menus (so a width sweep can
    /// reuse one build across widths with the same effective cap).
    fn best_schedule_with_menus(
        &self,
        w: TamWidth,
        menus: &RectangleMenus,
    ) -> Result<(Schedule, SweepParams, SweepStats), ScheduleError> {
        // Preferred widths depend only on (m, d), never on slack; compute
        // each vector once instead of once per slack value.
        let prefs_by_md: Vec<Vec<TamWidth>> = self
            .cfg
            .sweep
            .percents
            .iter()
            .flat_map(|&m| {
                self.cfg.sweep.bumps.iter().map(move |&d| {
                    // The slack knob is irrelevant to preferred widths.
                    menus.preferred_widths(&self.scheduler_config(w, m, d, 0))
                })
            })
            .collect();

        // Enumerate the grid in its canonical order (slack, then m, then d)
        // and drop points whose (slack, preferred-width vector) was already
        // seen: m and d influence a run only through the preferred widths,
        // so such points schedule identically to their representative, and
        // the strict `<` winner rule means skipping them cannot change the
        // winning schedule or the reported parameters.
        let mut unique: Vec<(SchedulerConfig, SweepParams)> = Vec::new();
        let mut seen: HashSet<(TamWidth, &[TamWidth])> = HashSet::new();
        let mut runs_total = 0usize;
        for &slack in &self.cfg.sweep.slacks {
            for (mi, &m) in self.cfg.sweep.percents.iter().enumerate() {
                for (di, &d) in self.cfg.sweep.bumps.iter().enumerate() {
                    runs_total += 1;
                    let prefs = &prefs_by_md[mi * self.cfg.sweep.bumps.len() + di];
                    if seen.insert((slack, prefs)) {
                        unique.push((self.scheduler_config(w, m, d, slack), (m, d, slack)));
                    }
                }
            }
        }
        let stats = SweepStats {
            runs_total,
            runs_executed: unique.len(),
            runs_skipped: runs_total - unique.len(),
            runs_cut: 0,
        };

        // Execute the surviving runs, in parallel when configured. Each
        // slot is written by exactly one thread; the reduction below walks
        // the slots in grid order, so the winner (first strictly smaller
        // makespan) and the reported error (first failing grid point) are
        // bit-identical to the sequential sweep. Menus and constraint
        // tables come from the shared context: zero per-run compilation.
        let ctx = self.context();
        let run_one = |cfg: &SchedulerConfig| {
            ScheduleBuilder::new(ctx.soc(), cfg.clone())
                .with_menus(menus)
                .with_context(ctx)
                .run()
        };
        let mut results: Vec<Option<Result<Schedule, ScheduleError>>> =
            (0..unique.len()).map(|_| None).collect();
        let threads = if self.cfg.parallel {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
                .min(unique.len().max(1))
        } else {
            1
        };
        if threads <= 1 {
            for (slot, (cfg, _)) in results.iter_mut().zip(&unique) {
                *slot = Some(run_one(cfg));
            }
        } else {
            let chunk = unique.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (slots, cfgs) in results.chunks_mut(chunk).zip(unique.chunks(chunk)) {
                    scope.spawn(move || {
                        for (slot, (cfg, _)) in slots.iter_mut().zip(cfgs) {
                            *slot = Some(run_one(cfg));
                        }
                    });
                }
            });
        }

        let mut best: Option<(Schedule, SweepParams)> = None;
        let mut first_err = None;
        for ((_, params), result) in unique.iter().zip(results) {
            match result.expect("every slot filled") {
                Ok(s) => {
                    if best
                        .as_ref()
                        .is_none_or(|(b, _)| s.makespan() < b.makespan())
                    {
                        best = Some((s, *params));
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        best.map(|(schedule, params)| (schedule, params, stats))
            .ok_or_else(|| {
                first_err.unwrap_or(ScheduleError::InvalidConfig {
                    reason: "empty parameter sweep".to_owned(),
                })
            })
    }

    /// Runs the full flow at one width: best schedule, lower bound, wire
    /// assignment, data volume.
    ///
    /// # Errors
    ///
    /// Scheduling errors as in [`TestFlow::best_schedule`]; wire assignment
    /// cannot fail for schedules this flow produces.
    pub fn run(&self, w: TamWidth) -> Result<FlowRun, ScheduleError> {
        let (schedule, params, sweep) = self.best_schedule_detailed(w)?;
        let _validate = obs::span(obs::Phase::Validate);
        let wires = WireAssignment::assign(&schedule).map_err(|e| ScheduleError::Invalid {
            reason: e.to_string(),
        })?;
        wires.verify().map_err(|e| ScheduleError::Invalid {
            reason: e.to_string(),
        })?;
        let volume = volume_of(w, schedule.makespan());
        Ok(FlowRun {
            lower_bound: self.context().lower_bound(w),
            volume,
            schedule,
            params,
            wires,
            sweep,
        })
    }

    /// Sweeps a range of SOC TAM widths, producing the `T(W)`/`V(W)` series
    /// behind Figures 9(a)–(b) and Table 2.
    ///
    /// # Errors
    ///
    /// Fails on the first width whose entire parameter sweep fails.
    pub fn sweep_widths(
        &self,
        widths: impl IntoIterator<Item = TamWidth>,
    ) -> Result<Vec<SweepPoint>, ScheduleError> {
        // Widths above `w_max` share one effective cap and hence one menu
        // build; the context's per-cap cache covers the whole width sweep
        // (and any later sweep over the same context).
        let mut out = Vec::new();
        for w in widths {
            let menus = self.menus_for(w);
            let (schedule, _, _) = self.best_schedule_with_menus(w, &menus)?;
            let time = schedule.makespan();
            out.push(SweepPoint {
                width: w,
                time,
                volume: volume_of(w, time),
                lower_bound: self.context().lower_bound(w),
            });
        }
        Ok(out)
    }

    /// Evaluates the normalized cost function over a sweep for one `α` —
    /// the effective-TAM-width analysis of §5.
    pub fn cost_curve(points: &[SweepPoint], alpha: f64) -> CostCurve {
        CostCurve::new(points, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::validate::{validate, validate_power};
    use soctam_soc::benchmarks;

    #[test]
    fn quick_flow_runs_and_validates() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let run = flow.run(16).unwrap();
        assert!(run.schedule.makespan() >= run.lower_bound);
        assert_eq!(run.volume, 16 * run.schedule.makespan());
        validate(&soc, &run.schedule).unwrap();
        run.wires.verify().unwrap();
    }

    #[test]
    fn power_policy_resolves() {
        let soc = benchmarks::d695();
        assert_eq!(PowerPolicy::Unlimited.resolve(&soc), None);
        assert_eq!(
            PowerPolicy::MaxCorePower.resolve(&soc),
            Some(soc.max_core_power())
        );
        assert_eq!(PowerPolicy::Absolute(7).resolve(&soc), Some(7));
    }

    #[test]
    fn power_constrained_flow_respects_ceiling() {
        let soc = benchmarks::d695();
        let cfg = FlowConfig::quick().with_power(PowerPolicy::MaxCorePower);
        let flow = TestFlow::new(&soc, cfg);
        let run = flow.run(32).unwrap();
        validate(&soc, &run.schedule).unwrap();
        validate_power(&soc, &run.schedule, soc.max_core_power()).unwrap();
    }

    #[test]
    fn sweep_produces_monotone_trend() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let pts = flow.sweep_widths([8u16, 16, 32, 64]).unwrap();
        assert!(pts.last().unwrap().time < pts.first().unwrap().time);
        for p in &pts {
            assert!(p.time >= p.lower_bound);
        }
    }

    #[test]
    fn best_schedule_beats_or_ties_every_single_run() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let (best, _) = flow.best_schedule(24).unwrap();
        let single = ScheduleBuilder::new(&soc, SchedulerConfig::new(24))
            .run()
            .unwrap();
        assert!(best.makespan() <= single.makespan());
    }

    #[test]
    fn param_sweep_run_counts() {
        assert_eq!(ParamSweep::paper().runs(), 10 * 5);
        assert!(ParamSweep::extended().runs() > ParamSweep::paper().runs());
        assert_eq!(ParamSweep::quick().runs(), 5 * 3 * 2);
    }

    #[test]
    fn dedup_skips_runs_and_reports_them() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let (_, _, stats) = flow.best_schedule_detailed(16).unwrap();
        assert_eq!(stats.runs_total, ParamSweep::quick().runs());
        assert_eq!(stats.runs_executed + stats.runs_skipped, stats.runs_total);
        // The quick grid's coarse m values collapse heavily.
        assert!(stats.runs_skipped > 0, "expected duplicate grid points");
    }

    #[test]
    fn shared_context_matches_private_compilation() {
        let soc = benchmarks::d695();
        let ctx = Arc::new(CompiledSoc::compile(&soc, FlowConfig::quick().w_max));
        for cfg in [
            FlowConfig::quick(),
            FlowConfig::quick().without_preemption(),
            FlowConfig::quick().with_power(PowerPolicy::MaxCorePower),
        ] {
            let shared = TestFlow::with_context(Arc::clone(&ctx), cfg.clone());
            let private = TestFlow::new(&soc, cfg);
            let (ss, ps, sts) = shared.best_schedule_detailed(24).unwrap();
            let (sp, pp, stp) = private.best_schedule_detailed(24).unwrap();
            assert_eq!(ss, sp);
            assert_eq!(ps, pp);
            assert_eq!(sts, stp);
            assert_eq!(shared.context().lower_bound(24), ctx.lower_bound(24));
        }
    }

    #[test]
    #[should_panic(expected = "must match the compiled context")]
    fn mismatched_context_cap_panics() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 32);
        let _ = TestFlow::with_context(ctx, FlowConfig::quick()); // w_max 64
    }

    #[test]
    fn flow_is_lifetime_free_and_sendable() {
        fn takes<T: Send + Sync + 'static>(_: &T) {}
        let flow = {
            // The borrowed SOC dies here; the flow owns its own model.
            let soc = benchmarks::d695();
            TestFlow::new(&soc, FlowConfig::quick())
        };
        takes(&flow);
        assert_eq!(flow.soc().name(), "d695");
        let run = std::thread::spawn(move || flow.run(16).unwrap())
            .join()
            .unwrap();
        assert!(run.schedule.makespan() >= run.lower_bound);
    }

    #[test]
    fn flow_reuses_one_menu_build_per_cap() {
        let soc = benchmarks::d695();
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        let a = flow.menus_for(16);
        let b = flow.menus_for(16);
        assert!(Arc::ptr_eq(&a, &b), "same cap must share one build");
        // 16 and 64 are distinct caps; 100 clamps to w_max = 64.
        let c = flow.menus_for(100);
        assert_eq!(c.w_max(), 64);
        assert!(Arc::ptr_eq(&c, &flow.menus_for(64)));
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let soc = benchmarks::d695();
        let par = TestFlow::new(&soc, FlowConfig::quick());
        let seq = TestFlow::new(&soc, FlowConfig::quick().with_parallel(false));
        let (sp, pp, statp) = par.best_schedule_detailed(24).unwrap();
        let (ss, ps, stats) = seq.best_schedule_detailed(24).unwrap();
        assert_eq!(sp, ss);
        assert_eq!(pp, ps);
        assert_eq!(statp, stats);
    }
}
