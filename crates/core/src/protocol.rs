//! The request/response protocol shared by `soctam batch` and the wire.
//!
//! One grammar, one parser, one response renderer: a *request* is a single
//! line of text, whether it comes from a `soctam batch` request file or
//! over a `soctam-server` TCP connection, and a *response* is a single
//! JSON object, whether it is embedded in the batch report or written back
//! as one line on the wire. Factoring both here means the batch file
//! format and the network protocol can never drift apart.
//!
//! # Request grammar
//!
//! ```text
//! schedule <soc> --width W   [--power] [--no-preempt] [--trace]
//! sweep    <soc> [--from A] [--to B]   [--power] [--no-preempt] [--trace]
//! bounds   <soc> [--widths a,b,c]      [--power] [--no-preempt] [--trace]
//! ```
//!
//! `--trace` (or the spelling `trace=1`) asks the serving daemon to embed
//! the request's phase trace — per-phase microseconds, the span tree, the
//! cache disposition, and solver-counter deltas — in the JSON response.
//! It never affects the computed result, and it is *excluded* from
//! [`route_key`]/the solution-cache identity, so a traced request and its
//! untraced twin share one cache entry and one balancer shard.
//!
//! `<soc>` is resolved by a caller-supplied [`SocResolver`] — the CLI
//! resolves benchmark names *and* `.soc` file paths, the serving daemon
//! (which must not read arbitrary paths on behalf of remote peers)
//! resolves benchmark names only ([`benchmark_resolver`]). Blank lines and
//! `#` comments are skipped. Unknown request kinds, unknown flags, and
//! malformed values are parse errors whose messages name the offending
//! field, as are requests naming more than [`MAX_WIDTHS_PER_REQUEST`]
//! widths (each width costs a solve; the cap keeps one wire request from
//! pinning a daemon worker indefinitely).
//!
//! # Response shape
//!
//! [`render_result`] produces one JSON object per request:
//!
//! ```text
//! {"op": "schedule", "soc": "d695", "width": 16, "ok": true, "makespan": ..., ...}
//! {"op": "bounds", "soc": "p34392", "widths": [16, 24], "ok": true, "bounds": [...]}
//! {"op": "sweep", "soc": "d695", "from": 16, "to": 24, "ok": false, "error": "..."}
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use soctam_soc::{benchmarks, Soc};

use crate::engine::{EngineOp, EngineOutput, EngineRequest, EngineResult};
use crate::flow::{FlowConfig, ParamSweep, PowerPolicy};

/// The most widths one `sweep`/`bounds` request may name. Every width
/// costs a full solve, and the grammar is served to network peers by
/// `soctam-server`: without a cap, one request line
/// (`sweep p93791 --from 1 --to 65535`) could pin a daemon worker for
/// hours. The limit is far above any legitimate sweep (the paper's widest
/// figure spans `W = 16..=80`); callers wanting more issue more requests.
pub const MAX_WIDTHS_PER_REQUEST: usize = 1024;

/// Maps the `<soc>` token of a request onto a shared SOC model.
///
/// Implementations decide what tokens are acceptable (benchmark names,
/// file paths, registry handles) and are expected to memoize, so a
/// thousand requests naming one SOC share one `Arc<Soc>`. Any
/// `FnMut(&str) -> Result<Arc<Soc>, String>` is a resolver.
pub trait SocResolver {
    /// Resolves `name`, or explains why it is not servable.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unresolvable token.
    fn resolve(&mut self, name: &str) -> Result<Arc<Soc>, String>;
}

impl<F: FnMut(&str) -> Result<Arc<Soc>, String>> SocResolver for F {
    fn resolve(&mut self, name: &str) -> Result<Arc<Soc>, String> {
        self(name)
    }
}

/// A memoizing [`SocResolver`] over a plain loader function: each distinct
/// name is loaded once and shared by every later request.
pub struct MemoResolver<F> {
    load: F,
    cache: HashMap<String, Arc<Soc>>,
}

impl<F: FnMut(&str) -> Result<Soc, String>> MemoResolver<F> {
    /// Wraps `load` with a per-name memo table.
    pub fn new(load: F) -> Self {
        Self {
            load,
            cache: HashMap::new(),
        }
    }

    /// Number of distinct SOCs resolved so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no SOC has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

impl<F: FnMut(&str) -> Result<Soc, String>> SocResolver for MemoResolver<F> {
    fn resolve(&mut self, name: &str) -> Result<Arc<Soc>, String> {
        if let Some(soc) = self.cache.get(name) {
            return Ok(Arc::clone(soc));
        }
        let soc = Arc::new((self.load)(name)?);
        self.cache.insert(name.to_owned(), Arc::clone(&soc));
        Ok(soc)
    }
}

/// The resolver a network-facing daemon uses: benchmark names only, never
/// the filesystem.
pub fn benchmark_resolver() -> MemoResolver<impl FnMut(&str) -> Result<Soc, String>> {
    MemoResolver::new(|name: &str| {
        benchmarks::by_name(name).ok_or_else(|| {
            format!(
                "unknown SOC `{name}` (this resolver serves benchmark models only: {})",
                benchmarks::NAMES.join(", ")
            )
        })
    })
}

/// Whether the bare flag `name` appears in `args`.
pub fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Looks up the value of a `--flag value` option. Present-but-valueless
/// options are an error — including the easy-to-make mistake of following
/// one flag directly with another (`--width --power`), which would
/// otherwise be swallowed as the value and produce a baffling parse
/// failure downstream. A repeated option is an error too: silently
/// honouring the first `--width` of `--width 16 --width 32` would run a
/// different request than the caller wrote and still report it `ok`.
///
/// # Errors
///
/// A message naming the offending option (and the swallowed flag, if any).
pub fn opt_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    let mut found = args.iter().enumerate().filter(|(_, a)| *a == name);
    let Some((i, _)) = found.next() else {
        return Ok(None);
    };
    if found.next().is_some() {
        return Err(format!("option `{name}` given more than once"));
    }
    match args.get(i + 1).map(String::as_str) {
        None => Err(format!("option `{name}` expects a value")),
        Some(v) if v.starts_with("--") => Err(format!(
            "option `{name}` expects a value, but found the flag `{v}`"
        )),
        Some(v) => Ok(Some(v)),
    }
}

/// [`opt_value`] for mandatory options.
///
/// # Errors
///
/// As [`opt_value`], plus `missing <name>` when the option is absent.
pub fn req_value<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    opt_value(args, name)?.ok_or_else(|| format!("missing {name}"))
}

/// Parses the numeric value of option `name` (already extracted as `v`),
/// naming both the field and the rejected token on failure.
fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("option `{name}`: invalid value `{v}`"))
}

/// Rejects any token the request kind does not understand: a misspelled
/// mode flag (`--no-premept`) must fail the parse, not silently run the
/// request in the wrong mode and report it `ok`.
///
/// # Errors
///
/// A message naming the unknown token.
pub fn check_known_args(
    args: &[String],
    value_options: &[&str],
    flags: &[&str],
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let tok = args[i].as_str();
        if value_options.contains(&tok) {
            i += 2; // the option plus its value (presence checked elsewhere)
        } else if flags.contains(&tok) {
            i += 1;
        } else {
            return Err(format!("unknown argument `{tok}`"));
        }
    }
    Ok(())
}

/// The flow configuration every protocol request uses (the quick
/// parameter sweep), specialized by the request's mode flags.
pub fn request_flow(power: bool, no_preempt: bool) -> FlowConfig {
    let mut cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    if power {
        cfg = cfg.with_power(PowerPolicy::MaxCorePower);
    }
    if no_preempt {
        cfg = cfg.without_preemption();
    }
    cfg
}

/// Parses one request line (see the [module docs](self) for the grammar),
/// resolving the SOC token through `resolver`.
///
/// # Errors
///
/// A message naming the offending field: the unknown request kind, the
/// unresolvable SOC, the unknown flag, or the malformed option value.
pub fn parse_request(line: &str, resolver: &mut impl SocResolver) -> Result<EngineRequest, String> {
    let words: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
    let (kind, rest) = words.split_first().ok_or("empty request")?;
    // Validate the request kind before touching the resolver: a garbage
    // line like `frobnicate d695` must not load d695 into the resolver's
    // memo as a side effect of failing to parse.
    let value_options: &[&str] = match kind.as_str() {
        "schedule" => &["--width"],
        "sweep" => &["--from", "--to"],
        "bounds" => &["--widths"],
        other => return Err(format!("unknown request kind `{other}`")),
    };
    let soc_name = rest.first().ok_or("missing SOC name")?;
    if soc_name.starts_with("--") {
        // `schedule --width 16` forgot the SOC; resolving `--width` would
        // report a baffling "unknown SOC `--width`".
        return Err(format!("missing SOC name (found the flag `{soc_name}`)"));
    }
    let soc = resolver.resolve(soc_name)?;
    let args = &rest[1..];
    check_known_args(
        args,
        value_options,
        &["--power", "--no-preempt", "--trace", "trace=1"],
    )?;
    let flow = request_flow(flag(args, "--power"), flag(args, "--no-preempt"));
    let trace = flag(args, "--trace") || flag(args, "trace=1");
    let op = match kind.as_str() {
        "schedule" => EngineOp::Schedule {
            width: num("--width", req_value(args, "--width")?)?,
        },
        "sweep" => {
            let from: u16 = num("--from", opt_value(args, "--from")?.unwrap_or("16"))?;
            let to: u16 = num("--to", opt_value(args, "--to")?.unwrap_or("64"))?;
            if from == 0 || from > to {
                return Err("need 0 < --from <= --to".to_owned());
            }
            let span = usize::from(to - from) + 1;
            if span > MAX_WIDTHS_PER_REQUEST {
                return Err(format!(
                    "option `--to`: sweep spans {span} widths \
                     (one request is limited to {MAX_WIDTHS_PER_REQUEST})"
                ));
            }
            EngineOp::Sweep {
                widths: (from..=to).collect(),
            }
        }
        "bounds" => {
            let widths = match opt_value(args, "--widths")? {
                Some(list) => {
                    if list.split(',').count() > MAX_WIDTHS_PER_REQUEST {
                        return Err(format!(
                            "option `--widths`: lists {} widths \
                             (one request is limited to {MAX_WIDTHS_PER_REQUEST})",
                            list.split(',').count()
                        ));
                    }
                    list.split(',')
                        .map(|w| num::<u16>("--widths", w.trim()))
                        .collect::<Result<Vec<_>, _>>()?
                }
                None => benchmarks::table1_widths(soc.name()).to_vec(),
            };
            EngineOp::Bounds { widths }
        }
        _ => unreachable!("kind validated above"),
    };
    Ok(EngineRequest {
        soc,
        flow,
        op,
        trace,
    })
}

/// Parses a whole request file: one request per line, blank lines and
/// `#` comments skipped.
///
/// # Errors
///
/// The first line's parse error, prefixed with its 1-based line number;
/// or an error if the file contains no requests at all.
pub fn parse_request_file(
    text: &str,
    resolver: &mut impl SocResolver,
) -> Result<Vec<EngineRequest>, String> {
    let mut requests = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        requests.push(parse_request(line, resolver).map_err(|e| format!("line {}: {e}", no + 1))?);
    }
    if requests.is_empty() {
        return Err("request file contains no requests".to_owned());
    }
    Ok(requests)
}

/// Escapes a string for embedding in a JSON document (the workspace is
/// vendored-only, so responses are rendered by hand, not by serde).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`json_escape`]: decodes the escape sequences that renderer
/// (and the daemon's request log) can produce. Unknown escapes are kept
/// verbatim rather than rejected — the input is our own output, so this is
/// defense in depth, not a general JSON parser.
pub fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    Some(decoded) => out.push(decoded),
                    None => {
                        out.push_str("\\u");
                        out.push_str(&hex);
                    }
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Extracts the (unescaped) value of a `"field": "..."` string member from
/// one flat JSON object line — enough to read back the JSONL request log
/// the daemon writes, without a JSON parser in the vendored-only workspace.
pub fn json_string_field(line: &str, field: &str) -> Option<String> {
    let marker = format!("\"{field}\": \"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    // Find the closing quote, skipping escaped ones.
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            '\\' if !escaped => escaped = true,
            '"' if !escaped => return Some(json_unescape(&rest[..i])),
            _ => escaped = false,
        }
    }
    None
}

/// Extracts the value of a *top-level* `"field": true|false` boolean
/// member from one JSON object line — the classification primitive for
/// response handling (`"ok"`, `"busy"`, `"transient"`). Unlike a raw
/// substring match, this cannot be fooled by request text echoed inside a
/// string value (a parse error quoting `"busy": true` back at the
/// client), nor by a member of a nested object: string contents are
/// skipped escape-aware and only depth-1 members are consulted. Returns
/// `None` when the field is absent (or not a boolean).
#[must_use]
pub fn json_bool_field(line: &str, field: &str) -> Option<bool> {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'"' => {
                // Scan the whole string, tracking escapes, so nothing
                // inside it — braces, quotes, `"busy": true` — counts.
                let start = i + 1;
                let mut j = start;
                let mut escaped = false;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' if !escaped => escaped = true,
                        b'"' if !escaped => break,
                        _ => escaped = false,
                    }
                    j += 1;
                }
                let content = &line[start..j.min(bytes.len())];
                // Past the closing quote (or end of line). A *key* is
                // followed by `:`; a string *value* is not.
                i = j + 1;
                let mut k = i;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if depth == 1 && content == field && bytes.get(k) == Some(&b':') {
                    let mut v = k + 1;
                    while v < bytes.len() && bytes[v].is_ascii_whitespace() {
                        v += 1;
                    }
                    let rest = &line[v.min(bytes.len())..];
                    if rest.starts_with("true") {
                        return Some(true);
                    }
                    if rest.starts_with("false") {
                        return Some(false);
                    }
                    return None; // present, but not a boolean
                }
            }
            _ => i += 1,
        }
    }
    None
}

/// The cluster-routing key of a parsed request: a stable digest of its
/// solution-cache identity (see
/// [`engine::solution_cache_digest`](crate::engine::solution_cache_digest)).
/// Requests the backend's `SolutionCache` would treat as one entry route
/// to one shard, so a consistent-hash front (`soctam balance`) keeps each
/// backend's cache hot and the shards' key sets disjoint.
#[must_use]
pub fn route_key(request: &EngineRequest) -> u64 {
    crate::engine::solution_cache_digest(request)
}

/// Extracts replayable request lines from `text`, which may be a plain
/// request file (one request per line, blank lines and `#` comments
/// skipped) *or* a JSONL request log written by the serving daemon (lines
/// starting with `{`; the `request` field is replayed, entries without one
/// — e.g. oversized-line records — are skipped). The two may be mixed
/// freely; `soctam client --file` and `soctam serve --warm` both accept
/// either.
pub fn replay_lines(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                None
            } else if line.starts_with('{') {
                json_string_field(line, "request")
            } else {
                Some(line.to_owned())
            }
        })
        .collect()
}

/// Renders one request's outcome as a single JSON object — the element
/// shape of the `soctam batch` report and, followed by a newline, the wire
/// response line.
pub fn render_result(req: &EngineRequest, result: &EngineResult) -> String {
    let mut out = String::new();
    let (kind, detail) = match &req.op {
        EngineOp::Schedule { width } => ("schedule", format!("\"width\": {width}")),
        EngineOp::Sweep { widths } => (
            "sweep",
            format!(
                "\"from\": {}, \"to\": {}",
                widths.first().copied().unwrap_or(0),
                widths.last().copied().unwrap_or(0)
            ),
        ),
        EngineOp::Bounds { widths } => (
            "bounds",
            format!(
                "\"widths\": [{}]",
                widths
                    .iter()
                    .map(u16::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
    };
    out.push_str(&format!(
        "{{\"op\": \"{kind}\", \"soc\": \"{}\", {detail}, ",
        req.soc.name().replace(['"', '\\'], "_")
    ));
    match result {
        Err(e) => {
            // A transient failure (a recovered solver panic or injected
            // fault) is marked so retrying clients know the request
            // itself is fine and a retry is worthwhile; genuine request
            // errors (infeasible config, bad widths) carry no flag and
            // are never retried.
            let transient = if e.is_transient() {
                "\"transient\": true, "
            } else {
                ""
            };
            out.push_str(&format!(
                "\"ok\": false, {transient}\"error\": \"{}\"}}",
                json_escape(&e.to_string())
            ));
        }
        Ok(EngineOutput::Schedule(run)) => out.push_str(&format!(
            "\"ok\": true, \"makespan\": {}, \"lower_bound\": {}, \"volume\": {}, \
             \"m\": {}, \"d\": {}, \"slack\": {}}}",
            run.schedule.makespan(),
            run.lower_bound,
            run.volume,
            run.params.0,
            run.params.1,
            run.params.2
        )),
        Ok(EngineOutput::Sweep(points)) => {
            out.push_str("\"ok\": true, \"points\": [");
            for (i, p) in points.iter().enumerate() {
                let sep = if i + 1 == points.len() { "" } else { ", " };
                out.push_str(&format!(
                    "{{\"width\": {}, \"time\": {}, \"volume\": {}, \"lower_bound\": {}}}{sep}",
                    p.width, p.time, p.volume, p.lower_bound
                ));
            }
            out.push_str("]}");
        }
        Ok(EngineOutput::Bounds(bounds)) => out.push_str(&format!(
            "\"ok\": true, \"bounds\": [{}]}}",
            bounds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
    out
}

/// Renders a line-level failure (a request that never parsed) as a wire
/// response object.
pub fn render_parse_error(error: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"}}", json_escape(error))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_resolver_memoizes_and_names_unknowns() {
        let mut r = benchmark_resolver();
        let a = r.resolve("d695").unwrap();
        let b = r.resolve("d695").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one load, one shared Arc");
        assert_eq!(r.len(), 1);
        let err = r.resolve("../../etc/passwd").unwrap_err();
        assert!(err.contains("../../etc/passwd"), "names the token: {err}");
        assert!(err.contains("d695"), "lists what is servable: {err}");
    }

    #[test]
    fn closures_are_resolvers() {
        let mut calls = 0;
        let mut resolver = |name: &str| {
            calls += 1;
            benchmarks::by_name(name)
                .map(Arc::new)
                .ok_or_else(|| format!("no `{name}`"))
        };
        let req = parse_request("bounds d695", &mut resolver).unwrap();
        assert_eq!(req.soc.name(), "d695");
        assert_eq!(calls, 1);
    }

    #[test]
    fn parse_errors_name_the_offending_field() {
        let mut r = benchmark_resolver();
        let err = parse_request("schedule d695 --width banana", &mut r).unwrap_err();
        assert!(err.contains("--width"), "names the field: {err}");
        assert!(err.contains("banana"), "names the rejected value: {err}");

        let err = parse_request("sweep d695 --from x", &mut r).unwrap_err();
        assert!(err.contains("--from") && err.contains('x'), "{err}");

        let err = parse_request("bounds d695 --widths 8,oops", &mut r).unwrap_err();
        assert!(err.contains("--widths") && err.contains("oops"), "{err}");

        let err = parse_request("frobnicate d695", &mut r).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");

        let err = parse_request("schedule d695 --width 16 --no-premept", &mut r).unwrap_err();
        assert!(err.contains("--no-premept"), "{err}");
    }

    #[test]
    fn oversized_requests_are_rejected_with_the_field_named() {
        let mut r = benchmark_resolver();
        let err = parse_request("sweep d695 --from 1 --to 65535", &mut r).unwrap_err();
        assert!(err.contains("--to") && err.contains("65535"), "{err}");
        let huge = format!("bounds d695 --widths {}", vec!["8"; 2000].join(","));
        let err = parse_request(&huge, &mut r).unwrap_err();
        assert!(err.contains("--widths") && err.contains("2000"), "{err}");
        // The cap itself is fine.
        assert!(parse_request("sweep d695 --from 1 --to 1024", &mut r).is_ok());
    }

    #[test]
    fn unknown_kind_is_rejected_before_the_soc_resolves() {
        let mut r = benchmark_resolver();
        let err = parse_request("frobnicate d695", &mut r).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        assert!(
            r.is_empty(),
            "a garbage line must not load SOCs into the resolver memo"
        );
    }

    #[test]
    fn flag_shaped_soc_token_reports_a_missing_soc_name() {
        let mut r = benchmark_resolver();
        let err = parse_request("schedule --width 16", &mut r).unwrap_err();
        assert!(err.contains("missing SOC name"), "{err}");
        assert!(err.contains("--width"), "names the found flag: {err}");
        assert!(r.is_empty(), "no resolver call for a flag-shaped token");
        // A kind alone still reports the missing name.
        let err = parse_request("bounds", &mut r).unwrap_err();
        assert!(err.contains("missing SOC name"), "{err}");
    }

    #[test]
    fn duplicate_value_options_are_parse_errors_naming_the_option() {
        let mut r = benchmark_resolver();
        let err = parse_request("schedule d695 --width 16 --width 32", &mut r).unwrap_err();
        assert!(err.contains("--width"), "{err}");
        assert!(err.contains("more than once"), "{err}");

        let err = parse_request("sweep d695 --from 8 --from 12 --to 16", &mut r).unwrap_err();
        assert!(
            err.contains("--from") && err.contains("more than once"),
            "{err}"
        );
        let err = parse_request("sweep d695 --from 8 --to 12 --to 16", &mut r).unwrap_err();
        assert!(
            err.contains("--to") && err.contains("more than once"),
            "{err}"
        );

        let err = parse_request("bounds d695 --widths 8 --widths 16", &mut r).unwrap_err();
        assert!(
            err.contains("--widths") && err.contains("more than once"),
            "{err}"
        );
    }

    #[test]
    fn json_unescape_round_trips() {
        for s in [
            "plain",
            "quotes \"inside\" and \\ backslash",
            "line\nbreak\ttab\rcr",
            "control \u{1} char",
            "unicode \u{0441}",
        ] {
            assert_eq!(json_unescape(&json_escape(s)), s, "{s:?}");
        }
        // Unknown escapes and truncated input survive verbatim.
        assert_eq!(json_unescape("a\\qb"), "a\\qb");
        assert_eq!(json_unescape("trailing\\"), "trailing\\");
    }

    #[test]
    fn json_string_field_reads_log_lines() {
        let line = "{\"ts_micros\": 1, \"peer\": \"127.0.0.1:9\", \
                    \"request\": \"schedule d695 --width 16\", \"outcome\": \"ok\"}";
        assert_eq!(
            json_string_field(line, "request").as_deref(),
            Some("schedule d695 --width 16")
        );
        assert_eq!(json_string_field(line, "outcome").as_deref(), Some("ok"));
        assert_eq!(json_string_field(line, "absent"), None);
        // Escaped quotes inside the value are handled.
        let line = "{\"request\": \"bounds \\\"x\\\" --widths 8\"}";
        assert_eq!(
            json_string_field(line, "request").as_deref(),
            Some("bounds \"x\" --widths 8")
        );
    }

    #[test]
    fn json_bool_field_reads_top_level_booleans_only() {
        let ok = "{\"op\": \"schedule\", \"soc\": \"d695\", \"ok\": true, \"makespan\": 41}";
        assert_eq!(json_bool_field(ok, "ok"), Some(true));
        assert_eq!(json_bool_field(ok, "busy"), None);
        let shed = "{\"ok\": false, \"busy\": true, \"transient\": true, \"error\": \"x\"}";
        assert_eq!(json_bool_field(shed, "ok"), Some(false));
        assert_eq!(json_bool_field(shed, "busy"), Some(true));
        assert_eq!(json_bool_field(shed, "transient"), Some(true));
        // Whitespace around the colon and value is tolerated.
        assert_eq!(json_bool_field("{ \"ok\" :  true }", "ok"), Some(true));
        // Present but not a boolean: absent, not a guess.
        assert_eq!(json_bool_field("{\"ok\": 1}", "ok"), None);
        assert_eq!(json_bool_field("{\"ok\": \"true\"}", "ok"), None);
    }

    #[test]
    fn json_bool_field_is_not_fooled_by_echoed_request_text() {
        // The exact bug class: a parse error echoing hostile request text
        // into its `error` string. Substring matching sees `"busy": true`
        // and `"ok": true`; field classification must not.
        let echo = render_parse_error("unknown request kind `{\"busy\": true, \"ok\": true}`");
        assert_eq!(json_bool_field(&echo, "ok"), Some(false));
        assert_eq!(json_bool_field(&echo, "busy"), None);
        assert_eq!(json_bool_field(&echo, "transient"), None);
        // Nested objects don't leak members to the top level either.
        let nested = "{\"ok\": false, \"detail\": {\"busy\": true}}";
        assert_eq!(json_bool_field(nested, "busy"), None);
        // A string *value* that equals the field name is not a key.
        let value = "{\"error\": \"busy\", \"busy\": false}";
        assert_eq!(json_bool_field(value, "busy"), Some(false));
    }

    #[test]
    fn route_key_is_the_solution_cache_identity() {
        let mut r = benchmark_resolver();
        let a = parse_request("bounds d695 --widths 16", &mut r).unwrap();
        let b = parse_request("bounds d695 --widths 16", &mut r).unwrap();
        assert_eq!(route_key(&a), route_key(&b), "same cache key, same shard");
        let widths = parse_request("bounds d695 --widths 24", &mut r).unwrap();
        assert_ne!(route_key(&a), route_key(&widths));
        let op = parse_request("schedule d695 --width 16", &mut r).unwrap();
        assert_ne!(route_key(&a), route_key(&op));
        let power = parse_request("bounds d695 --widths 16 --power", &mut r).unwrap();
        assert_ne!(route_key(&a), route_key(&power));
        let soc = parse_request("bounds p34392 --widths 16", &mut r).unwrap();
        assert_ne!(route_key(&a), route_key(&soc));
    }

    #[test]
    fn trace_is_parsed_but_never_part_of_the_route_key() {
        let mut r = benchmark_resolver();
        let plain = parse_request("schedule d695 --width 16", &mut r).unwrap();
        assert!(!plain.trace);
        let dashed = parse_request("schedule d695 --width 16 --trace", &mut r).unwrap();
        assert!(dashed.trace);
        let keyed = parse_request("schedule d695 --width 16 trace=1", &mut r).unwrap();
        assert!(keyed.trace);
        // Presentation-only: a traced request and its untraced twin land on
        // the same cache entry and the same balancer shard.
        assert_eq!(route_key(&plain), route_key(&dashed));
        assert_eq!(route_key(&plain), route_key(&keyed));
    }

    #[test]
    fn replay_lines_accepts_request_files_and_logs() {
        let text = "# a mixed replay input\n\
                    schedule d695 --width 16\n\
                    \n\
                    {\"ts_micros\": 5, \"request\": \"bounds d695\", \"outcome\": \"ok\"}\n\
                    {\"ts_micros\": 6, \"outcome\": \"oversized\"}\n\
                    sweep d695 --from 15 --to 17\n";
        assert_eq!(
            replay_lines(text),
            [
                "schedule d695 --width 16",
                "bounds d695",
                "sweep d695 --from 15 --to 17"
            ]
        );
    }

    #[test]
    fn render_parse_error_escapes() {
        let line = render_parse_error("bad \"token\"");
        assert_eq!(line, "{\"ok\": false, \"error\": \"bad \\\"token\\\"\"}");
    }

    #[test]
    fn transient_errors_are_flagged_and_genuine_errors_are_not() {
        let req = parse_request("bounds d695 --widths 16", &mut benchmark_resolver()).unwrap();
        let recovered = render_result(
            &req,
            &Err(soctam_schedule::ScheduleError::SolverPanic {
                message: "index out of bounds".to_owned(),
            }),
        );
        assert!(recovered.contains("\"ok\": false"));
        assert!(recovered.contains("\"transient\": true"));
        let genuine = render_result(
            &req,
            &Err(soctam_schedule::ScheduleError::InvalidConfig {
                reason: "zero width".to_owned(),
            }),
        );
        assert!(genuine.contains("\"ok\": false"));
        assert!(!genuine.contains("transient"));
    }

    #[test]
    fn file_and_line_parsers_agree() {
        let text = "# comment\n\nschedule d695 --width 16\nbounds p34392 --widths 16,24\n";
        let reqs = parse_request_file(text, &mut benchmark_resolver()).unwrap();
        assert_eq!(reqs.len(), 2);
        let solo = parse_request("schedule d695 --width 16", &mut benchmark_resolver()).unwrap();
        assert_eq!(reqs[0].op, solo.op);
        assert_eq!(reqs[0].soc, solo.soc);
    }
}
