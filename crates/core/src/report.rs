//! Experiment reports: the rows and series of every table and figure in
//! the paper's evaluation (§6), as plain data plus text renderers.

use std::fmt::Write as _;
use std::sync::Arc;

use soctam_schedule::{CompiledSoc, ContextRegistry, ScheduleError, TamWidth};
use soctam_soc::{benchmarks, Soc};
use soctam_volume::{CostCurve, SweepPoint};
use soctam_wrapper::{CoreTest, RectangleSet, StaircasePoint};

use crate::flow::{FlowConfig, PowerPolicy, TestFlow};

/// One row of Table 1: lower bound and the three scheduling modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// SOC name.
    pub soc: String,
    /// SOC TAM width `W`.
    pub width: TamWidth,
    /// Testing-time lower bound.
    pub lower_bound: u64,
    /// Non-preemptive testing time.
    pub non_preemptive: u64,
    /// Preemptive testing time (budget 2 on the larger cores).
    pub preemptive: u64,
    /// Preemptive + power-constrained testing time.
    pub power_constrained: u64,
}

/// Computes the Table 1 rows for one SOC at the paper's widths.
///
/// Preemption budgets (2 for the larger cores) and the power ceiling
/// (`P_max` = the largest core power) are applied as described in §6.
///
/// The SOC is compiled once ([`CompiledSoc`]) and shared by all three
/// scheduling modes, the lower-bound column, and every width — preemption
/// budgets and power ceilings are run parameters, so the compiled menus
/// and constraint tables are identical across the whole table.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn table1_rows(soc: &Soc, base: &FlowConfig) -> Result<Vec<Table1Row>, ScheduleError> {
    let mut budgeted = soc.clone();
    benchmarks::grant_preemption_to_large_cores(&mut budgeted, 2);
    let ctx = Arc::new(CompiledSoc::compile(&budgeted, base.w_max));

    let mut rows = Vec::new();
    for w in benchmarks::table1_widths(soc.name()) {
        let non_preemptive = {
            let cfg = base.clone().without_preemption();
            TestFlow::with_context(Arc::clone(&ctx), cfg)
                .best_schedule(w)?
                .0
                .makespan()
        };
        let preemptive = TestFlow::with_context(Arc::clone(&ctx), base.clone())
            .best_schedule(w)?
            .0
            .makespan();
        let power_constrained = {
            let cfg = base.clone().with_power(PowerPolicy::MaxCorePower);
            TestFlow::with_context(Arc::clone(&ctx), cfg)
                .best_schedule(w)?
                .0
                .makespan()
        };
        rows.push(Table1Row {
            soc: soc.name().to_owned(),
            width: w,
            lower_bound: ctx.lower_bound(w),
            non_preemptive,
            preemptive,
            power_constrained,
        });
    }
    Ok(rows)
}

/// Renders Table 1 rows in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>3} {:>12} {:>15} {:>12} {:>18}",
        "SOC", "W", "Lower bound", "Non-preemptive", "Preemptive", "Power-constrained"
    );
    let mut last_soc = "";
    for r in rows {
        let soc = if r.soc == last_soc { "" } else { &r.soc };
        last_soc = &r.soc;
        let _ = writeln!(
            out,
            "{:<8} {:>3} {:>12} {:>15} {:>12} {:>18}",
            soc, r.width, r.lower_bound, r.non_preemptive, r.preemptive, r.power_constrained
        );
    }
    out
}

/// One `α` entry of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Entry {
    /// The trade-off weight.
    pub alpha: f64,
    /// Minimum normalized cost `C_min`.
    pub c_min: f64,
    /// The effective TAM width `W_eff` achieving it.
    pub w_eff: TamWidth,
    /// Testing time at `W_eff`.
    pub time: u64,
    /// Data volume at `W_eff`.
    pub volume: u64,
}

/// Table 2 for one SOC: global minima of `T` and `V` plus the effective
/// widths for several `α` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// SOC name.
    pub soc: String,
    /// Minimum testing time over the sweep.
    pub t_min: u64,
    /// Width achieving `t_min`.
    pub w_at_t_min: TamWidth,
    /// Minimum data volume over the sweep.
    pub v_min: u64,
    /// Width achieving `v_min`.
    pub w_at_v_min: TamWidth,
    /// Per-α effective widths.
    pub entries: Vec<Table2Entry>,
    /// The raw sweep the table was computed from.
    pub sweep: Vec<SweepPoint>,
}

/// The `α` values each SOC's Table 2 block uses in the paper.
pub fn paper_alphas(soc_name: &str) -> Vec<f64> {
    match soc_name {
        "d695" => vec![0.1, 0.3, 0.5],
        "p22810" => vec![0.01, 0.3, 0.5],
        "p34392" => vec![0.2, 0.25, 0.3],
        "p93791" => vec![0.5, 0.95, 0.99],
        _ => vec![0.25, 0.5, 0.75],
    }
}

/// Computes Table 2 for one SOC by sweeping `W` over `widths` and
/// evaluating the cost function at each `α`.
///
/// # Errors
///
/// Propagates scheduling failures from the sweep.
pub fn table2(
    soc: &Soc,
    widths: impl IntoIterator<Item = TamWidth>,
    alphas: &[f64],
    base: &FlowConfig,
) -> Result<Table2, ScheduleError> {
    let flow = TestFlow::new(soc, base.clone());
    let sweep = flow.sweep_widths(widths)?;
    let t_min_pt = sweep
        .iter()
        .min_by_key(|p| (p.time, p.width))
        .expect("non-empty sweep");
    let v_min_pt = sweep
        .iter()
        .min_by_key(|p| (p.volume, p.width))
        .expect("non-empty sweep");
    let entries = alphas
        .iter()
        .map(|&alpha| {
            let curve = CostCurve::new(&sweep, alpha);
            let eff = curve.effective_point();
            Table2Entry {
                alpha,
                c_min: eff.cost,
                w_eff: eff.width,
                time: eff.time,
                volume: eff.volume,
            }
        })
        .collect();
    Ok(Table2 {
        soc: soc.name().to_owned(),
        t_min: t_min_pt.time,
        w_at_t_min: t_min_pt.width,
        v_min: v_min_pt.volume,
        w_at_v_min: v_min_pt.width,
        entries,
        sweep,
    })
}

/// Renders a Table 2 block in the paper's layout.
pub fn render_table2(t: &Table2) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", t.soc);
    let _ = writeln!(
        out,
        "  T_min = {} at W = {},  V_min = {} at W = {}",
        t.t_min, t.w_at_t_min, t.v_min, t.w_at_v_min
    );
    let _ = writeln!(
        out,
        "  {:>6} {:>8} {:>6} {:>12} {:>14}",
        "alpha", "C_min", "W_eff", "T at W_eff", "V at W_eff"
    );
    for e in &t.entries {
        let _ = writeln!(
            out,
            "  {:>6} {:>8.3} {:>6} {:>12} {:>14}",
            e.alpha, e.c_min, e.w_eff, e.time, e.volume
        );
    }
    out
}

/// One row of the preemption-budget study: scheduling outcome when every
/// "large" core is granted the same preemption budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptionSweepRow {
    /// Budget granted (`max_preempts`) to the larger cores.
    pub budget: u32,
    /// Best testing time at this budget.
    pub time: u64,
    /// Preemptions actually used across all cores.
    pub preemptions_used: u32,
    /// Extra scan cycles those preemptions cost.
    pub penalty_cycles: u64,
}

/// Sweeps the preemption budget — the paper's §6 closing remark calls for
/// "a careful investigation of the effects of preemption and the
/// `max_preempts` parameter"; this is that experiment.
///
/// For each budget, the larger cores get `max_preempts = budget` and the
/// flow's best schedule is measured, along with how many preemptions it
/// actually spent and their total scan penalty.
///
/// Compiles one private context per budget variant; ablation drivers that
/// revisit variants (several widths, several SOCs, repeated runs) should
/// hold a [`ContextRegistry`] and call [`preemption_sweep_with`], which
/// compiles each `(budgeted SOC, w_max, power)` key exactly once per
/// registry lifetime.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn preemption_sweep(
    soc: &Soc,
    width: TamWidth,
    budgets: &[u32],
    base: &FlowConfig,
) -> Result<Vec<PreemptionSweepRow>, ScheduleError> {
    preemption_sweep_with(&ContextRegistry::default(), soc, width, budgets, base)
}

/// [`preemption_sweep`] over a caller-held registry: each budget variant's
/// context is drawn from (and cached in) `registry`, so re-sweeping the
/// same variants — at another width, or in a later call — recompiles
/// nothing. Results are bit-identical to [`preemption_sweep`].
///
/// # Errors
///
/// As for [`preemption_sweep`].
pub fn preemption_sweep_with(
    registry: &ContextRegistry,
    soc: &Soc,
    width: TamWidth,
    budgets: &[u32],
    base: &FlowConfig,
) -> Result<Vec<PreemptionSweepRow>, ScheduleError> {
    let mut rows = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let mut budgeted = soc.clone();
        benchmarks::grant_preemption_to_large_cores(&mut budgeted, budget);
        let budgeted = Arc::new(budgeted);
        let ctx = registry.get_or_compile(&budgeted, base.w_max, base.power.resolve(&budgeted));
        let flow = TestFlow::with_context(ctx, base.clone());
        let (schedule, _) = flow.best_schedule(width)?;
        let mut preemptions_used = 0u32;
        let mut penalty_cycles = 0u64;
        for idx in 0..budgeted.len() {
            let stats = schedule.core_stats(idx).expect("all cores scheduled");
            if stats.preemptions > 0 {
                // Per-width rectangles are cap-prefix-stable, so the
                // context's full-cap menu reads the same rectangle a
                // fresh `RectangleSet::build(test, width)` would.
                let rect = flow.context().full_menus().menu(idx).rect_at(stats.width);
                preemptions_used += stats.preemptions;
                penalty_cycles += u64::from(stats.preemptions) * rect.preemption_penalty();
            }
        }
        rows.push(PreemptionSweepRow {
            budget,
            time: schedule.makespan(),
            preemptions_used,
            penalty_cycles,
        });
    }
    Ok(rows)
}

/// Renders a preemption sweep as a text table.
pub fn render_preemption_sweep(
    soc_name: &str,
    width: TamWidth,
    rows: &[PreemptionSweepRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{soc_name} at W = {width}:");
    let _ = writeln!(
        out,
        "  {:>6} {:>12} {:>10} {:>14}",
        "budget", "time", "preempts", "penalty cycles"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:>6} {:>12} {:>10} {:>14}",
            r.budget, r.time, r.preemptions_used, r.penalty_cycles
        );
    }
    out
}

/// The staircase data of Figure 1 for one core: every width's testing time
/// plus the Pareto-optimal widths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Staircase {
    /// The per-width points.
    pub points: Vec<StaircasePoint>,
    /// Pareto-optimal widths.
    pub pareto_widths: Vec<TamWidth>,
}

/// Computes the Figure 1 staircase for a single core.
pub fn staircase(core: &CoreTest, w_max: TamWidth) -> Staircase {
    let rects = RectangleSet::build(core, w_max);
    Staircase {
        points: rects.staircase(),
        pareto_widths: rects.pareto_widths(),
    }
}

/// Renders an ASCII line plot of `(x, y)` series; used for Figures 1
/// and 9.
pub fn render_plot(title: &str, series: &[(f64, f64)], rows: usize, cols: usize) -> String {
    let rows = rows.max(4);
    let cols = cols.max(10);
    let mut out = format!("{title}\n");
    if series.is_empty() {
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in series {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; cols]; rows];
    for &(x, y) in series {
        let c = (((x - x_min) / x_span) * (cols - 1) as f64).round() as usize;
        let r = (((y - y_min) / y_span) * (rows - 1) as f64).round() as usize;
        grid[rows - 1 - r][c] = '*';
    }
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>12.4}")
        } else if i == rows - 1 {
            format!("{y_min:>12.4}")
        } else {
            " ".repeat(12)
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label} |{line}");
    }
    let _ = writeln!(
        out,
        "{:>12}  {x_min:<.1}{:>width$.1}",
        "",
        x_max,
        width = cols - 3
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_soc::benchmarks;

    #[test]
    fn table1_rows_have_paper_shape() {
        let soc = benchmarks::d695();
        let rows = table1_rows(&soc, &FlowConfig::quick()).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.non_preemptive >= r.lower_bound);
            assert!(r.preemptive >= r.lower_bound);
            assert!(r.power_constrained >= r.lower_bound);
        }
        let text = render_table1(&rows);
        assert!(text.contains("d695"));
        assert!(text.contains("Lower bound"));
    }

    #[test]
    fn table2_minima_consistent_with_sweep() {
        let soc = benchmarks::d695();
        let t = table2(
            &soc,
            (8..=32).step_by(4).map(|w| w as u16),
            &[0.1, 0.5, 0.9],
            &FlowConfig::quick(),
        )
        .unwrap();
        assert_eq!(t.entries.len(), 3);
        for p in &t.sweep {
            assert!(p.time >= t.t_min);
            assert!(p.volume >= t.v_min);
        }
        for e in &t.entries {
            assert!(e.c_min >= 1.0 - 1e-12);
            assert!(t.sweep.iter().any(|p| p.width == e.w_eff));
        }
        let text = render_table2(&t);
        assert!(text.contains("T_min"));
    }

    #[test]
    fn paper_alphas_known_socs() {
        assert_eq!(paper_alphas("d695"), vec![0.1, 0.3, 0.5]);
        assert_eq!(paper_alphas("p93791"), vec![0.5, 0.95, 0.99]);
        assert_eq!(paper_alphas("other").len(), 3);
    }

    #[test]
    fn preemption_sweep_shapes() {
        let soc = benchmarks::d695();
        let rows = preemption_sweep(&soc, 16, &[0, 1, 2], &FlowConfig::quick()).unwrap();
        assert_eq!(rows.len(), 3);
        // Budget 0 must spend no preemptions and no penalty.
        assert_eq!(rows[0].preemptions_used, 0);
        assert_eq!(rows[0].penalty_cycles, 0);
        // Penalty only accrues when preemptions happen.
        for r in &rows {
            assert_eq!(r.penalty_cycles == 0, r.preemptions_used == 0);
        }
        let text = render_preemption_sweep("d695", 16, &rows);
        assert!(text.contains("budget"));
    }

    #[test]
    fn staircase_of_benchmark_core() {
        let soc = benchmarks::p93791();
        let s = staircase(soc.core(5).test(), 64);
        assert_eq!(s.points.len(), 64);
        assert!(!s.pareto_widths.is_empty());
        // Monotone non-increasing.
        for pair in s.points.windows(2) {
            assert!(pair[1].time <= pair[0].time);
        }
    }

    #[test]
    fn plot_renders_extremes() {
        let series: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, (i * i) as f64)).collect();
        let p = render_plot("parabola", &series, 10, 40);
        assert!(p.contains("parabola"));
        assert!(p.contains('*'));
        assert!(p.contains("400"));
    }

    #[test]
    fn plot_handles_empty_and_flat() {
        assert!(render_plot("empty", &[], 5, 20).contains("empty"));
        let flat = vec![(0.0, 1.0), (1.0, 1.0)];
        let p = render_plot("flat", &flat, 5, 20);
        assert!(p.contains('*'));
    }
}
