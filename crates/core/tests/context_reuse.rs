//! The test wall around `CompiledSoc` context reuse.
//!
//! Two kinds of pins:
//!
//! * **Amortization** — instrumentation counters
//!   (`soctam_schedule::instrument`, `soctam_wrapper::instrument`) prove
//!   that a whole `(m, d, slack)` sweep builds `RectangleMenus` and
//!   compiles `ConstraintSet` exactly once per SOC, that width sweeps
//!   *derive* smaller-cap menus from the full-cap build instead of
//!   rebuilding them, that baseline evaluations over a shared context
//!   rebuild *zero* menus, that a registry-backed preemption ablation
//!   compiles one context per budget variant, and that an `Engine` batch
//!   compiles one context per `(SOC, w_max, budget)` key.
//! * **Bit-identity** — every context-reuse path (scheduler, bounds,
//!   baselines) produces results identical to a rebuild-per-call run on
//!   all four benchmark SOCs.
//!
//! The counters are process-global, so every test in this binary
//! serializes on one mutex; keep counter-sensitive tests here and nowhere
//! else in this binary.

use std::sync::{Arc, Mutex, OnceLock};

use soctam_core::baseline::{fixed_width_best, session_schedule, shelf_pack};
use soctam_core::engine::{Engine, EngineRequest};
use soctam_core::flow::{FlowConfig, ParamSweep, TestFlow};
use soctam_core::report::{preemption_sweep, preemption_sweep_with};
use soctam_core::schedule::{instrument, CompiledSoc, ContextRegistry};
use soctam_core::soc::benchmarks;
use soctam_core::wrapper::instrument as wrapper_instrument;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn quick_flow() -> FlowConfig {
    FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Counters {
    menus: u64,
    menu_derives: u64,
    constraints: u64,
    contexts: u64,
    rects: u64,
    rect_derives: u64,
}

fn counters() -> Counters {
    Counters {
        menus: instrument::menu_builds(),
        menu_derives: instrument::menu_derives(),
        constraints: instrument::constraint_compiles(),
        contexts: instrument::context_compiles(),
        rects: wrapper_instrument::rectangle_set_builds(),
        rect_derives: wrapper_instrument::rectangle_set_derives(),
    }
}

#[test]
fn one_width_sweep_compiles_the_soc_exactly_once() {
    let _guard = lock();
    let soc = benchmarks::d695();

    let before = counters();
    // Width == w_max, so the context's seeded full-cap menus serve the
    // whole sweep: exactly one menu build, one constraint compilation.
    let flow = TestFlow::new(&soc, quick_flow());
    let run = flow.run(64).expect("schedulable");
    let after = counters();

    assert_eq!(
        after.menus - before.menus,
        1,
        "the (m, d, slack) sweep must build RectangleMenus exactly once"
    );
    assert_eq!(
        after.constraints - before.constraints,
        1,
        "the (m, d, slack) sweep must compile ConstraintSet exactly once"
    );
    assert_eq!(
        after.contexts - before.contexts,
        1,
        "the flow compiles exactly one CompiledSoc"
    );
    assert_eq!(
        after.rects - before.rects,
        soc.len() as u64,
        "one RectangleSet per core, never rebuilt"
    );
    assert!(run.sweep.runs_executed > 1, "the sweep really ran");
}

#[test]
fn width_sweep_derives_smaller_caps_from_the_full_build() {
    let _guard = lock();
    let soc = benchmarks::d695();

    let before = counters();
    let flow = TestFlow::new(&soc, quick_flow());
    // Compilation is lazy, so the first width (16) fresh-builds just its
    // narrow cap, and that width's bound query forces the one full-cap
    // (64) build. Caps 32 and 48 then prefix-derive from the full build,
    // 64 reuses it, and widths past w_max share the 64-wide cap.
    flow.sweep_widths([16u16, 32, 48, 64, 72]).unwrap();
    let after = counters();

    assert_eq!(
        after.menus - before.menus,
        2,
        "exactly two menu builds: the first narrow cap, then the full cap"
    );
    assert_eq!(
        after.menu_derives - before.menu_derives,
        2,
        "one prefix derivation per later smaller distinct effective cap"
    );
    assert_eq!(
        after.constraints - before.constraints,
        1,
        "one constraint compilation for the whole width sweep"
    );
    assert_eq!(
        after.rects - before.rects,
        2 * soc.len() as u64,
        "rectangle sets are built at the narrow and full caps, then prefixed"
    );
    assert_eq!(
        after.rect_derives - before.rect_derives,
        2 * soc.len() as u64
    );

    // A second sweep over the same flow is fully amortized.
    let before = counters();
    flow.sweep_widths([16u16, 32, 48, 64, 72]).unwrap();
    let after = counters();
    assert_eq!(
        after, before,
        "re-sweeping must rebuild and re-derive nothing"
    );
}

#[test]
fn table1_modes_share_one_compilation() {
    let _guard = lock();
    let soc = benchmarks::d695();
    let ctx = Arc::new(CompiledSoc::compile(&soc, 64));
    // Force the lazy full-cap build once; the three modes then share it.
    ctx.menus_at(64);

    let before = counters();
    for cfg in [
        quick_flow(),
        quick_flow().without_preemption(),
        quick_flow().with_power(soctam_core::flow::PowerPolicy::MaxCorePower),
    ] {
        TestFlow::with_context(Arc::clone(&ctx), cfg)
            .best_schedule(64)
            .expect("schedulable");
    }
    let after = counters();
    assert_eq!(after, before, "shared context: three modes, zero rebuilds");
}

#[test]
fn baseline_sweep_rebuilds_zero_menus() {
    let _guard = lock();
    let soc = benchmarks::d695();
    let widths = benchmarks::table1_widths("d695");
    let ctx = CompiledSoc::compile(&soc, 64);

    // Warm every cap the sweep touches (one derivation per distinct cap).
    for &w in &widths {
        ctx.menus_at(ctx.effective_cap(w));
    }

    let before = counters();
    for &w in &widths {
        let _ = fixed_width_best(&ctx, w, 3);
        let _ = fixed_width_best(&ctx, w, 2);
        let _ = shelf_pack(&ctx, w, 5, 1);
        let _ = session_schedule(&ctx, w);
        let _ = ctx.lower_bound(w);
    }
    let after = counters();
    assert_eq!(
        after, before,
        "baseline evaluations over a shared context must rebuild nothing"
    );
}

#[test]
fn preemption_ablation_compiles_one_context_per_budget_variant() {
    let _guard = lock();
    let soc = benchmarks::d695();
    let registry = ContextRegistry::default();
    let budgets = [0u32, 1, 2];

    let before = counters();
    let first = preemption_sweep_with(&registry, &soc, 16, &budgets, &quick_flow()).unwrap();
    let after = counters();
    assert_eq!(
        after.contexts - before.contexts,
        budgets.len() as u64,
        "one context compile per budget variant"
    );
    assert_eq!(registry.stats().misses, budgets.len() as u64);

    // Re-sweeping the same variants at the same width compiles and builds
    // nothing: the registry serves every budget's context, and every cap
    // those sweeps touch is already cached.
    let before = counters();
    let again = preemption_sweep_with(&registry, &soc, 16, &budgets, &quick_flow()).unwrap();
    let after = counters();
    assert_eq!(
        after.contexts - before.contexts,
        0,
        "zero redundant compiles across the ablation"
    );
    assert_eq!(after.menus - before.menus, 0);
    assert_eq!(after.constraints - before.constraints, 0);

    // Another width also reuses every context; the only new work allowed
    // is the lazy first-touch menu build for that cap on contexts no
    // earlier request forced to the full cap.
    let before = counters();
    let other_width = preemption_sweep_with(&registry, &soc, 24, &budgets, &quick_flow()).unwrap();
    let after = counters();
    assert_eq!(after.contexts - before.contexts, 0);
    assert_eq!(after.constraints - before.constraints, 0);
    assert!(
        after.menus - before.menus <= budgets.len() as u64,
        "at most one first-touch menu build per budget context"
    );
    assert_eq!(registry.stats().hits, 2 * budgets.len() as u64);
    assert_eq!(again, first, "registry reuse is bit-identical");
    assert_eq!(other_width.len(), budgets.len());

    // And the registry path matches the private-compilation path bit for
    // bit.
    let private = preemption_sweep(&soc, 16, &budgets, &quick_flow()).unwrap();
    assert_eq!(first, private);
}

#[test]
fn engine_batch_compiles_one_context_per_key() {
    let _guard = lock();
    let engine = Engine::new();
    let d695 = Arc::new(benchmarks::d695());
    let p34392 = Arc::new(benchmarks::p34392());
    let power = quick_flow().with_power(soctam_core::flow::PowerPolicy::MaxCorePower);
    let requests = vec![
        EngineRequest::schedule(Arc::clone(&d695), quick_flow(), 16),
        EngineRequest::schedule(Arc::clone(&d695), quick_flow(), 32),
        EngineRequest::bounds(Arc::clone(&d695), quick_flow(), vec![16, 32, 48, 64]),
        EngineRequest::schedule(Arc::clone(&d695), power.clone(), 16),
        EngineRequest::sweep(Arc::clone(&p34392), quick_flow(), vec![16, 24]),
        EngineRequest::bounds(Arc::clone(&p34392), quick_flow(), vec![16, 24]),
    ];
    // Distinct keys: (d695, 64, None), (d695, 64, P_max), (p34392, 64,
    // None).
    let before = counters();
    let results = engine.serve(&requests);
    let after = counters();
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(
        after.contexts - before.contexts,
        3,
        "exactly one context compile per (SOC, w_max, budget) key"
    );
    assert_eq!(engine.registry().stats().misses, 3);
    assert_eq!(engine.registry().stats().hits, 3);

    // A repeat batch is served entirely from the registry.
    let before = counters();
    let _ = engine.serve(&requests);
    let after = counters();
    assert_eq!(after.contexts - before.contexts, 0);
}

#[test]
fn baselines_bit_identical_to_rebuild_per_call_on_all_benchmarks() {
    let _guard = lock();
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let shared = CompiledSoc::compile(&soc, 64);
        for w in benchmarks::table1_widths(name) {
            // A fresh context per call *is* the rebuild-per-call path.
            let fresh = CompiledSoc::compile(&soc, 64);
            assert_eq!(
                fixed_width_best(&shared, w, 2),
                fixed_width_best(&fresh, w, 2),
                "{name} W={w}: fixed-width diverged"
            );
            assert_eq!(
                shelf_pack(&shared, w, 5, 1),
                shelf_pack(&fresh, w, 5, 1),
                "{name} W={w}: shelf diverged"
            );
            assert_eq!(
                session_schedule(&shared, w),
                session_schedule(&fresh, w),
                "{name} W={w}: sessions diverged"
            );
            assert_eq!(
                shared.lower_bound(w),
                fresh.lower_bound(w),
                "{name} W={w}: bound diverged"
            );
        }
    }
}

#[test]
fn scheduler_context_reuse_bit_identical_on_larger_benchmarks() {
    let _guard = lock();
    for (name, w) in [("p34392", 24u16), ("p93791", 32u16)] {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let ctx = CompiledSoc::compile(&soc, quick_flow().w_max);
        let shared = TestFlow::with_context(ctx, quick_flow());
        let private = TestFlow::new(&soc, quick_flow());
        let (ss, ps, sts) = shared.best_schedule_detailed(w).unwrap();
        let (sp, pp, stp) = private.best_schedule_detailed(w).unwrap();
        assert_eq!(ss, sp, "{name}: schedule diverged");
        assert_eq!(ps, pp, "{name}: winning params diverged");
        assert_eq!(sts, stp, "{name}: sweep stats diverged");
    }
}
