//! Equivalence suite for the sweep-scale optimizations: shared rectangle
//! menus, run deduplication, and parallel grid execution must all be
//! bit-identical to the naive sequential rebuild-per-run sweep.

use soctam_core::flow::{FlowConfig, ParamSweep, TestFlow};
use soctam_core::schedule::{Schedule, ScheduleBuilder, SchedulerConfig, TamWidth};
use soctam_core::soc::{benchmarks, Soc};

fn quick_flow() -> FlowConfig {
    FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    }
}

/// The pre-optimization sweep, verbatim: sequential grid order (slack,
/// then m, then d), no menu sharing, no dedup, strict-`<` winner rule.
fn reference_best_schedule(
    soc: &Soc,
    cfg: &FlowConfig,
    w: TamWidth,
) -> (Schedule, (u32, TamWidth, TamWidth)) {
    let mut best: Option<(Schedule, (u32, TamWidth, TamWidth))> = None;
    for &slack in &cfg.sweep.slacks {
        for &m in &cfg.sweep.percents {
            for &d in &cfg.sweep.bumps {
                let mut scfg = SchedulerConfig::new(w).with_percent(m).with_bump(d);
                scfg.w_max = cfg.w_max;
                scfg.idle_fill_slack = slack;
                scfg.allow_preemption = cfg.allow_preemption;
                let s = ScheduleBuilder::new(soc, scfg).run().expect("schedulable");
                if best
                    .as_ref()
                    .is_none_or(|(b, _)| s.makespan() < b.makespan())
                {
                    best = Some((s, (m, d, slack)));
                }
            }
        }
    }
    best.expect("non-empty sweep")
}

fn assert_flow_matches_reference(soc: &Soc, w: TamWidth) {
    let (ref_schedule, ref_params) = reference_best_schedule(soc, &quick_flow(), w);
    let (opt_schedule, opt_params, stats) = TestFlow::new(soc, quick_flow())
        .best_schedule_detailed(w)
        .expect("schedulable");
    assert_eq!(
        opt_schedule,
        ref_schedule,
        "cached-menu/dedup/parallel sweep diverged from rebuild-per-run on {}",
        soc.name()
    );
    assert_eq!(opt_params, ref_params, "winning (m, d, slack) diverged");
    assert_eq!(stats.runs_total, ParamSweep::quick().runs());
    assert_eq!(stats.runs_executed + stats.runs_skipped, stats.runs_total);
}

#[test]
fn cached_menus_match_rebuild_per_run_d695() {
    assert_flow_matches_reference(&benchmarks::d695(), 16);
    assert_flow_matches_reference(&benchmarks::d695(), 48);
}

#[test]
fn cached_menus_match_rebuild_per_run_p22810() {
    assert_flow_matches_reference(&benchmarks::p22810(), 32);
}

#[test]
fn cached_menus_match_rebuild_per_run_p34392() {
    assert_flow_matches_reference(&benchmarks::p34392(), 24);
}

#[test]
fn cached_menus_match_rebuild_per_run_p93791() {
    assert_flow_matches_reference(&benchmarks::p93791(), 32);
}

#[test]
fn parallel_matches_sequential_d695() {
    let soc = benchmarks::d695();
    for w in [16u16, 32, 64] {
        let (sp, pp, statp) = TestFlow::new(&soc, quick_flow())
            .best_schedule_detailed(w)
            .unwrap();
        let (ss, ps, stats) = TestFlow::new(&soc, quick_flow().with_parallel(false))
            .best_schedule_detailed(w)
            .unwrap();
        assert_eq!(sp, ss, "parallel sweep diverged at W={w}");
        assert_eq!(pp, ps);
        assert_eq!(statp, stats);
    }
}

#[test]
fn parallel_matches_sequential_p22810() {
    let soc = benchmarks::p22810();
    let (sp, pp, _) = TestFlow::new(&soc, quick_flow())
        .best_schedule_detailed(48)
        .unwrap();
    let (ss, ps, _) = TestFlow::new(&soc, quick_flow().with_parallel(false))
        .best_schedule_detailed(48)
        .unwrap();
    assert_eq!(sp, ss);
    assert_eq!(pp, ps);
}

#[test]
fn context_bounds_match_free_functions_on_all_benchmarks() {
    use soctam_core::schedule::bounds::{lower_bound, lower_bounds};
    use soctam_core::schedule::CompiledSoc;
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let ctx = CompiledSoc::compile(&soc, 64);
        let widths: Vec<TamWidth> = benchmarks::table1_widths(name).to_vec();
        assert_eq!(
            ctx.lower_bounds(&widths),
            lower_bounds(&soc, &widths, 64),
            "{name}: batch bound diverged"
        );
        for &w in &widths {
            assert_eq!(
                ctx.lower_bound(w),
                lower_bound(&soc, w, 64),
                "{name}: bound at W={w} diverged"
            );
        }
    }
}

#[test]
fn context_validator_agrees_on_flow_schedules() {
    use soctam_core::schedule::validate::{validate, validate_with};
    let soc = benchmarks::d695();
    let flow = TestFlow::new(&soc, quick_flow());
    let run = flow.run(24).unwrap();
    validate(&soc, &run.schedule).expect("flow schedule is valid");
    validate_with(flow.context(), &run.schedule).expect("context validator agrees");
}

#[test]
fn power_constrained_sweep_is_also_equivalent() {
    // Dedup keys only on (slack, preferred widths); make sure a sweep with
    // an active power ceiling stays equivalent too.
    use soctam_core::flow::PowerPolicy;
    let soc = benchmarks::d695();
    let cfg = quick_flow().with_power(PowerPolicy::MaxCorePower);
    let (par, pp, _) = TestFlow::new(&soc, cfg.clone())
        .best_schedule_detailed(32)
        .unwrap();
    let (seq, ps, _) = TestFlow::new(&soc, cfg.with_parallel(false))
        .best_schedule_detailed(32)
        .unwrap();
    assert_eq!(par, seq);
    assert_eq!(pp, ps);
}
