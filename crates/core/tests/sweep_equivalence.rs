//! Equivalence suite for the sweep-scale optimizations: shared rectangle
//! menus, run deduplication, parallel grid execution, and concurrent
//! registry/engine serving must all be bit-identical to the naive
//! sequential rebuild-per-run sweep.

use std::sync::Arc;

use soctam_core::engine::{Engine, EngineOutput, EngineRequest};
use soctam_core::flow::{FlowConfig, ParamSweep, PowerPolicy, TestFlow};
use soctam_core::schedule::{
    ContextRegistry, Schedule, ScheduleBuilder, SchedulerConfig, TamWidth,
};
use soctam_core::soc::{benchmarks, Soc};

fn quick_flow() -> FlowConfig {
    FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    }
}

/// The pre-optimization sweep, verbatim: sequential grid order (slack,
/// then m, then d), no menu sharing, no dedup, strict-`<` winner rule.
fn reference_best_schedule(
    soc: &Soc,
    cfg: &FlowConfig,
    w: TamWidth,
) -> (Schedule, (u32, TamWidth, TamWidth)) {
    let mut best: Option<(Schedule, (u32, TamWidth, TamWidth))> = None;
    for &slack in &cfg.sweep.slacks {
        for &m in &cfg.sweep.percents {
            for &d in &cfg.sweep.bumps {
                let mut scfg = SchedulerConfig::new(w).with_percent(m).with_bump(d);
                scfg.w_max = cfg.w_max;
                scfg.idle_fill_slack = slack;
                scfg.allow_preemption = cfg.allow_preemption;
                let s = ScheduleBuilder::new(soc, scfg).run().expect("schedulable");
                if best
                    .as_ref()
                    .is_none_or(|(b, _)| s.makespan() < b.makespan())
                {
                    best = Some((s, (m, d, slack)));
                }
            }
        }
    }
    best.expect("non-empty sweep")
}

fn assert_flow_matches_reference(soc: &Soc, w: TamWidth) {
    let (ref_schedule, ref_params) = reference_best_schedule(soc, &quick_flow(), w);
    let (opt_schedule, opt_params, stats) = TestFlow::new(soc, quick_flow())
        .best_schedule_detailed(w)
        .expect("schedulable");
    assert_eq!(
        opt_schedule,
        ref_schedule,
        "cached-menu/dedup/parallel sweep diverged from rebuild-per-run on {}",
        soc.name()
    );
    assert_eq!(opt_params, ref_params, "winning (m, d, slack) diverged");
    assert_eq!(stats.runs_total, ParamSweep::quick().runs());
    assert_eq!(stats.runs_executed + stats.runs_skipped, stats.runs_total);
}

#[test]
fn cached_menus_match_rebuild_per_run_d695() {
    assert_flow_matches_reference(&benchmarks::d695(), 16);
    assert_flow_matches_reference(&benchmarks::d695(), 48);
}

#[test]
fn cached_menus_match_rebuild_per_run_p22810() {
    assert_flow_matches_reference(&benchmarks::p22810(), 32);
}

#[test]
fn cached_menus_match_rebuild_per_run_p34392() {
    assert_flow_matches_reference(&benchmarks::p34392(), 24);
}

#[test]
fn cached_menus_match_rebuild_per_run_p93791() {
    assert_flow_matches_reference(&benchmarks::p93791(), 32);
}

#[test]
fn parallel_matches_sequential_d695() {
    let soc = benchmarks::d695();
    for w in [16u16, 32, 64] {
        let (sp, pp, statp) = TestFlow::new(&soc, quick_flow())
            .best_schedule_detailed(w)
            .unwrap();
        let (ss, ps, stats) = TestFlow::new(&soc, quick_flow().with_parallel(false))
            .best_schedule_detailed(w)
            .unwrap();
        assert_eq!(sp, ss, "parallel sweep diverged at W={w}");
        assert_eq!(pp, ps);
        assert_eq!(statp, stats);
    }
}

#[test]
fn parallel_matches_sequential_p22810() {
    let soc = benchmarks::p22810();
    let (sp, pp, _) = TestFlow::new(&soc, quick_flow())
        .best_schedule_detailed(48)
        .unwrap();
    let (ss, ps, _) = TestFlow::new(&soc, quick_flow().with_parallel(false))
        .best_schedule_detailed(48)
        .unwrap();
    assert_eq!(sp, ss);
    assert_eq!(pp, ps);
}

#[test]
fn context_bounds_match_free_functions_on_all_benchmarks() {
    use soctam_core::schedule::bounds::{lower_bound, lower_bounds};
    use soctam_core::schedule::CompiledSoc;
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let ctx = CompiledSoc::compile(&soc, 64);
        let widths: Vec<TamWidth> = benchmarks::table1_widths(name).to_vec();
        assert_eq!(
            ctx.lower_bounds(&widths),
            lower_bounds(&soc, &widths, 64),
            "{name}: batch bound diverged"
        );
        for &w in &widths {
            assert_eq!(
                ctx.lower_bound(w),
                lower_bound(&soc, w, 64),
                "{name}: bound at W={w} diverged"
            );
        }
    }
}

#[test]
fn context_validator_agrees_on_flow_schedules() {
    use soctam_core::schedule::validate::{validate, validate_with};
    let soc = benchmarks::d695();
    let flow = TestFlow::new(&soc, quick_flow());
    let run = flow.run(24).unwrap();
    validate(&soc, &run.schedule).expect("flow schedule is valid");
    validate_with(flow.context(), &run.schedule).expect("context validator agrees");
}

#[test]
fn power_constrained_sweep_is_also_equivalent() {
    // Dedup keys only on (slack, preferred widths); make sure a sweep with
    // an active power ceiling stays equivalent too.
    let soc = benchmarks::d695();
    let cfg = quick_flow().with_power(PowerPolicy::MaxCorePower);
    let (par, pp, _) = TestFlow::new(&soc, cfg.clone())
        .best_schedule_detailed(32)
        .unwrap();
    let (seq, ps, _) = TestFlow::new(&soc, cfg.with_parallel(false))
        .best_schedule_detailed(32)
        .unwrap();
    assert_eq!(par, seq);
    assert_eq!(pp, ps);
}

/// The request mix the concurrency tests hammer: three SOCs crossed with
/// widths, scheduling modes, and power budgets — enough key diversity to
/// exercise several registry shards at once.
fn hammer_requests() -> Vec<EngineRequest> {
    let socs = [
        Arc::new(benchmarks::d695()),
        Arc::new(benchmarks::p34392()),
        Arc::new(benchmarks::p93791()),
    ];
    let mut requests = Vec::new();
    for soc in &socs {
        for w in [16u16, 24, 32] {
            requests.push(EngineRequest::schedule(Arc::clone(soc), quick_flow(), w));
        }
        requests.push(EngineRequest::schedule(
            Arc::clone(soc),
            quick_flow().without_preemption(),
            16,
        ));
        requests.push(EngineRequest::schedule(
            Arc::clone(soc),
            quick_flow().with_power(PowerPolicy::MaxCorePower),
            24,
        ));
        requests.push(EngineRequest::bounds(
            Arc::clone(soc),
            quick_flow(),
            vec![16, 32, 48, 64],
        ));
    }
    requests
}

fn assert_engine_results_equal(
    a: &[soctam_core::engine::EngineResult],
    b: &[soctam_core::engine::EngineResult],
) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match (x.as_ref().unwrap(), y.as_ref().unwrap()) {
            (EngineOutput::Schedule(p), EngineOutput::Schedule(q)) => {
                assert_eq!(p.schedule, q.schedule);
                assert_eq!(p.params, q.params);
                assert_eq!(p.lower_bound, q.lower_bound);
                assert_eq!(p.volume, q.volume);
                assert_eq!(p.sweep, q.sweep);
            }
            (EngineOutput::Sweep(p), EngineOutput::Sweep(q)) => assert_eq!(p, q),
            (EngineOutput::Bounds(p), EngineOutput::Bounds(q)) => assert_eq!(p, q),
            _ => panic!("result kinds diverged"),
        }
    }
}

#[test]
fn concurrent_engine_hammer_matches_sequential_single_context_runs() {
    let requests = hammer_requests();

    // N caller threads hammer one engine (and thus one registry) with the
    // same mixed batch concurrently.
    let engine = Engine::new();
    let concurrent: Vec<Vec<soctam_core::engine::EngineResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| engine.serve(&requests)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Reference: every request served alone from a private sequential
    // flow — no registry, no batch threading, no shared anything.
    let reference: Vec<soctam_core::engine::EngineResult> = requests
        .iter()
        .map(|req| {
            Engine::new().with_threads(1).serve_one(&EngineRequest {
                soc: Arc::clone(&req.soc),
                flow: req.flow.clone().with_parallel(false),
                op: req.op.clone(),
                trace: false,
            })
        })
        .collect();

    for results in &concurrent {
        assert_engine_results_equal(results, &reference);
    }

    // The registry compiled each distinct (SOC, w_max, budget) key exactly
    // once across all four hammering threads: 3 SOCs × {unlimited, P_max}.
    assert_eq!(engine.registry().stats().misses, 6);
    assert_eq!(engine.registry().len(), 6);
}

#[test]
fn shared_registry_across_engines_is_equivalent_to_private_registries() {
    let requests = hammer_requests();
    let shared_registry = Arc::new(ContextRegistry::new(4, 16));
    let a = Engine::with_registry(Arc::clone(&shared_registry)).serve(&requests);
    let b = Engine::with_registry(shared_registry).serve(&requests);
    let private = Engine::new().serve(&requests);
    assert_engine_results_equal(&a, &b);
    assert_engine_results_equal(&a, &private);
}

#[test]
fn eviction_cannot_change_results_only_costs() {
    // A pathologically tiny registry (capacity 1) thrashes on the mixed
    // batch; every result must still match the roomy registry's.
    let requests = hammer_requests();
    let tiny = Engine::with_registry(Arc::new(ContextRegistry::new(1, 1)));
    let roomy = Engine::new();
    let a = tiny.serve(&requests);
    let b = roomy.serve(&requests);
    assert_engine_results_equal(&a, &b);
    assert!(
        tiny.registry().stats().evictions > 0,
        "capacity-1 registry must actually thrash on 6 distinct keys"
    );
    assert_eq!(tiny.registry().len(), 1);
}
