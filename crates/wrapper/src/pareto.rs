//! Staircase testing-time curves and their Pareto-optimal points.

use crate::{Cycles, TamWidth};

/// One point of the testing-time-vs-TAM-width staircase of a core.
///
/// See Figure 1 of the paper: the curve drops only at *Pareto-optimal*
/// widths; between them extra wires buy nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StaircasePoint {
    /// TAM width offered to the core.
    pub width: TamWidth,
    /// Best testing time achievable with at most `width` wires.
    pub time: Cycles,
    /// The smallest width that actually achieves `time` (the width the
    /// paper assigns, so spare wires stay available for other cores).
    pub effective_width: TamWidth,
}

/// A Pareto-optimal point: a width at which the testing time strictly
/// drops relative to every smaller width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParetoPoint {
    /// The Pareto-optimal TAM width.
    pub width: TamWidth,
    /// Testing time at that width.
    pub time: Cycles,
}

/// Extracts the Pareto-optimal points from a monotone staircase
/// (the `w`-th yielded time = best time with `w` wires, `w` from 1).
///
/// Taking an iterator lets callers feed the staircase straight from their
/// own representation without materializing a times vector.
pub(crate) fn pareto_points(times: impl IntoIterator<Item = Cycles>) -> Vec<ParetoPoint> {
    let mut out = Vec::new();
    let mut last = Cycles::MAX;
    for (i, t) in times.into_iter().enumerate() {
        if t < last {
            out.push(ParetoPoint {
                width: (i + 1) as TamWidth,
                time: t,
            });
            last = t;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_strict_drops_only() {
        let times = [100, 60, 60, 40, 40, 40, 39];
        let p = pareto_points(times);
        let widths: Vec<u16> = p.iter().map(|q| q.width).collect();
        assert_eq!(widths, vec![1, 2, 4, 7]);
        assert_eq!(p[2].time, 40);
    }

    #[test]
    fn flat_curve_has_single_point() {
        let p = pareto_points([5, 5, 5]);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0], ParetoPoint { width: 1, time: 5 });
    }

    #[test]
    fn empty_curve() {
        assert!(pareto_points([]).is_empty());
    }
}
