//! The `Design_wrapper` algorithm: wrapper scan chain construction for a
//! given TAM width.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bfd::partition_bfd;
use crate::{CoreTest, Cycles, TamWidth, WrapperError};

/// A concrete wrapper design for one core at one TAM width.
///
/// A wrapper design arranges the core's internal scan chains, wrapper input
/// cells (functional inputs), wrapper output cells (functional outputs), and
/// bidirectional cells into `width` *wrapper scan chains*. The tester shifts
/// stimuli in through the longest scan-in path and captures responses out
/// through the longest scan-out path, so the two quantities that matter are:
///
/// * `scan_in`  — `max_k (input-side cells on chain k + scan flops on k)`
/// * `scan_out` — `max_k (scan flops on k + output-side cells on k)`
///
/// The test application time for `p` patterns follows the classic formula
/// used throughout the paper (and its references \[12, 14\]):
///
/// ```text
/// T = (1 + max(scan_in, scan_out)) · p + min(scan_in, scan_out)
/// ```
///
/// # Example
///
/// ```
/// use soctam_wrapper::{CoreTest, WrapperDesign};
///
/// # fn main() -> Result<(), soctam_wrapper::WrapperError> {
/// let core = CoreTest::new(8, 4, 0, vec![30, 20, 10], 50)?;
/// let narrow = WrapperDesign::design(&core, 1)?;
/// let wide = WrapperDesign::design(&core, 3)?;
/// assert!(wide.test_time() < narrow.test_time());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WrapperDesign {
    width: TamWidth,
    scan_in: u64,
    scan_out: u64,
    patterns: u64,
    chain_flops: Vec<u64>,
    chain_inputs: Vec<u64>,
    chain_outputs: Vec<u64>,
}

impl WrapperDesign {
    /// Designs a wrapper for `core` using `width` TAM wires via
    /// Best-Fit-Decreasing.
    ///
    /// The internal scan chains are partitioned first (longest chains
    /// placed on the least-loaded wrapper chain); wrapper input cells are
    /// then spread to equalize scan-in lengths, output cells to equalize
    /// scan-out lengths, and bidirectional cells to equalize the larger of
    /// the two.
    ///
    /// # Errors
    ///
    /// Returns [`WrapperError::ZeroWidth`] if `width == 0`.
    pub fn design(core: &CoreTest, width: TamWidth) -> Result<Self, WrapperError> {
        Ok(Self::design_with_placement(core, width)?.0)
    }

    /// Like [`WrapperDesign::design`], additionally reporting which
    /// internal scan chain landed on which wrapper chain (as
    /// `placement[chain_index] = wrapper_chain_index`, in the core's scan
    /// chain order) and the per-chain bidirectional cell counts.
    ///
    /// Used by the cell-level [`crate::WrapperLayout`].
    ///
    /// # Errors
    ///
    /// Returns [`WrapperError::ZeroWidth`] if `width == 0`.
    pub(crate) fn design_with_placement(
        core: &CoreTest,
        width: TamWidth,
    ) -> Result<(Self, Vec<usize>, Vec<u64>), WrapperError> {
        if width == 0 {
            return Err(WrapperError::ZeroWidth);
        }
        let k = usize::from(width);
        let partition = partition_bfd(core.scan_chains(), k);
        let chain_flops: Vec<u64> = partition.loads().to_vec();
        let placement = partition.assignment().to_vec();

        let mut chain_inputs = vec![0u64; k];
        let mut chain_outputs = vec![0u64; k];
        let mut chain_bidirs = vec![0u64; k];

        // Wrapper input cells: each lengthens one chain's scan-in path.
        // Greedily place each cell on the chain with the shortest current
        // scan-in (flops + input cells so far), ties toward the lowest
        // chain index; `place_unit_cells` evaluates that greedy process in
        // closed form.
        let mut in_len: Vec<u64> = chain_flops.clone();
        place_unit_cells(&mut in_len, &mut chain_inputs, core.inputs());

        // Wrapper output cells likewise for scan-out.
        let mut out_len: Vec<u64> = chain_flops.clone();
        place_unit_cells(&mut out_len, &mut chain_outputs, core.outputs());

        // Bidirectional cells sit on both the scan-in and scan-out paths of
        // their chain; place each on the chain minimizing the worse of the
        // two resulting lengths. Same heap scheme, keyed on that cost: a
        // placement changes only the placed chain's cost, so re-pushing the
        // one updated entry keeps every key current.
        if core.bidirs() > 0 {
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..k)
                .map(|i| Reverse(((in_len[i] + 1).max(out_len[i] + 1), i)))
                .collect();
            for _ in 0..core.bidirs() {
                let Reverse((_, best)) = heap.pop().expect("one entry per chain");
                in_len[best] += 1;
                out_len[best] += 1;
                chain_inputs[best] += 1;
                chain_outputs[best] += 1;
                chain_bidirs[best] += 1;
                heap.push(Reverse(((in_len[best] + 1).max(out_len[best] + 1), best)));
            }
        }

        let design = Self {
            width,
            scan_in: in_len.iter().copied().max().unwrap_or(0),
            scan_out: out_len.iter().copied().max().unwrap_or(0),
            patterns: core.patterns(),
            chain_flops,
            chain_inputs,
            chain_outputs,
        };
        Ok((design, placement, chain_bidirs))
    }

    /// The TAM width (number of wrapper scan chains) of this design.
    pub fn width(&self) -> TamWidth {
        self.width
    }

    /// Longest scan-in path over all wrapper chains, in cycles per pattern.
    pub fn scan_in(&self) -> u64 {
        self.scan_in
    }

    /// Longest scan-out path over all wrapper chains, in cycles per pattern.
    pub fn scan_out(&self) -> u64 {
        self.scan_out
    }

    /// Number of external test patterns the design applies.
    pub fn patterns(&self) -> u64 {
        self.patterns
    }

    /// Scan flops placed on each wrapper chain.
    pub fn chain_flops(&self) -> &[u64] {
        &self.chain_flops
    }

    /// Input-side wrapper cells on each wrapper chain (includes bidirs).
    pub fn chain_inputs(&self) -> &[u64] {
        &self.chain_inputs
    }

    /// Output-side wrapper cells on each wrapper chain (includes bidirs).
    pub fn chain_outputs(&self) -> &[u64] {
        &self.chain_outputs
    }

    /// Test application time in cycles:
    /// `(1 + max(si, so)) · p + min(si, so)`.
    ///
    /// Scan-in of pattern *i+1* overlaps scan-out of pattern *i*, hence the
    /// `max` per pattern, one capture cycle per pattern, and a final
    /// residual shift-out of `min(si, so)`.
    pub fn test_time(&self) -> Cycles {
        let long = self.scan_in.max(self.scan_out);
        let short = self.scan_in.min(self.scan_out);
        (1 + long) * self.patterns + short
    }

    /// Extra cycles charged when a test of this design is preempted and
    /// later resumed: the interrupted pattern's response must be scanned
    /// out and its state scanned back in.
    pub fn preemption_penalty(&self) -> Cycles {
        self.scan_in + self.scan_out
    }
}

/// Greedily drops `cells` unit-length wrapper cells one at a time onto the
/// chain with the shortest current length (ties toward the lowest chain
/// index), updating the per-chain length and placed-cell tallies.
///
/// The one-at-a-time process is evaluated in closed form by water-filling:
/// repeatedly incrementing the minimum `(length, chain)` first raises the
/// shortest chains in lockstep to a common level `T`, then deals the
/// remainder one cell each to the lowest-indexed chains at that level —
/// O(k log k) total instead of O(cells · log k), with the exact same final
/// distribution (pinned by the `heap_placement_matches_scan_reference`
/// proptest below).
fn place_unit_cells(lengths: &mut [u64], counts: &mut [u64], cells: u32) {
    if cells == 0 {
        return;
    }
    let k = lengths.len();
    if k == 1 {
        // A single chain takes everything; skip the bookkeeping.
        lengths[0] += u64::from(cells);
        counts[0] += u64::from(cells);
        return;
    }
    let mut cells = u64::from(cells);

    // Shortest-first (stable, so equal lengths keep chain-index order).
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| lengths[i]);

    // Grow the pool of shortest chains: raising the current pool to the
    // next chain's length absorbs `(next - level) * pool` cells.
    let mut pool = 1usize;
    let mut level = lengths[order[0]];
    while pool < k {
        let next = lengths[order[pool]];
        let need = (next - level) * pool as u64;
        if need > cells {
            break;
        }
        cells -= need;
        level = next;
        pool += 1;
    }

    // Deal the rest round-robin over the pool: full rounds raise the
    // common level; the remainder goes one cell each to the
    // lowest-indexed pool chains (the one-at-a-time tie-break).
    level += cells / pool as u64;
    let extras = (cells % pool as u64) as usize;
    let winners = &mut order[..pool];
    winners.sort_unstable();
    for (rank, &i) in winners.iter().enumerate() {
        let new_len = level + u64::from(rank < extras);
        counts[i] += new_len - lengths[i];
        lengths[i] = new_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn core(inputs: u32, outputs: u32, chains: Vec<u32>, patterns: u64) -> CoreTest {
        CoreTest::new(inputs, outputs, 0, chains, patterns).unwrap()
    }

    /// Reference `design_with_placement` that finds every greedy placement
    /// target with a first-minimum linear scan instead of a heap.
    fn design_scan_reference(
        core: &CoreTest,
        width: TamWidth,
    ) -> (WrapperDesign, Vec<usize>, Vec<u64>) {
        use crate::bfd::min_load_bin;
        let k = usize::from(width);
        let partition = partition_bfd(core.scan_chains(), k);
        let chain_flops: Vec<u64> = partition.loads().to_vec();
        let placement = partition.assignment().to_vec();

        let mut chain_inputs = vec![0u64; k];
        let mut chain_outputs = vec![0u64; k];
        let mut chain_bidirs = vec![0u64; k];

        let mut in_len = chain_flops.clone();
        for _ in 0..core.inputs() {
            let b = min_load_bin(&in_len);
            in_len[b] += 1;
            chain_inputs[b] += 1;
        }
        let mut out_len = chain_flops.clone();
        for _ in 0..core.outputs() {
            let b = min_load_bin(&out_len);
            out_len[b] += 1;
            chain_outputs[b] += 1;
        }
        for _ in 0..core.bidirs() {
            let costs: Vec<u64> = (0..k)
                .map(|i| (in_len[i] + 1).max(out_len[i] + 1))
                .collect();
            let b = min_load_bin(&costs);
            in_len[b] += 1;
            out_len[b] += 1;
            chain_inputs[b] += 1;
            chain_outputs[b] += 1;
            chain_bidirs[b] += 1;
        }

        let design = WrapperDesign {
            width,
            scan_in: in_len.iter().copied().max().unwrap_or(0),
            scan_out: out_len.iter().copied().max().unwrap_or(0),
            patterns: core.patterns(),
            chain_flops,
            chain_inputs,
            chain_outputs,
        };
        (design, placement, chain_bidirs)
    }

    #[test]
    fn zero_width_rejected() {
        let c = core(1, 1, vec![4], 1);
        assert_eq!(WrapperDesign::design(&c, 0), Err(WrapperError::ZeroWidth));
    }

    #[test]
    fn width_one_serializes_everything() {
        let c = core(8, 4, vec![30, 20, 10], 50);
        let d = WrapperDesign::design(&c, 1).unwrap();
        assert_eq!(d.scan_in(), 60 + 8);
        assert_eq!(d.scan_out(), 60 + 4);
        assert_eq!(d.test_time(), (1 + 68) * 50 + 64);
    }

    #[test]
    fn combinational_core_times() {
        // 32-in/32-out combinational core, 12 patterns, width 8:
        // si = ceil(32/8) = 4 = so; T = (1+4)*12 + 4 = 64.
        let c = core(32, 32, vec![], 12);
        let d = WrapperDesign::design(&c, 8).unwrap();
        assert_eq!(d.scan_in(), 4);
        assert_eq!(d.scan_out(), 4);
        assert_eq!(d.test_time(), 64);
    }

    #[test]
    fn wider_never_slower() {
        let c = core(35, 49, vec![46, 45, 44, 44], 97);
        let mut last = u64::MAX;
        for w in 1..=16 {
            let t = WrapperDesign::design(&c, w).unwrap().test_time();
            assert!(t <= last, "width {w} got slower: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn bidir_cells_lengthen_both_sides() {
        let c = CoreTest::new(0, 0, 6, vec![], 10).unwrap();
        let d = WrapperDesign::design(&c, 3).unwrap();
        assert_eq!(d.scan_in(), 2);
        assert_eq!(d.scan_out(), 2);
    }

    #[test]
    fn excess_width_is_harmless() {
        let c = core(2, 2, vec![5], 9);
        let tight = WrapperDesign::design(&c, 3).unwrap();
        let loose = WrapperDesign::design(&c, 64).unwrap();
        assert_eq!(loose.scan_in(), 5); // single chain dominates
        assert!(loose.test_time() <= tight.test_time());
    }

    #[test]
    fn preemption_penalty_is_si_plus_so() {
        let c = core(8, 4, vec![30, 20, 10], 50);
        let d = WrapperDesign::design(&c, 2).unwrap();
        assert_eq!(d.preemption_penalty(), d.scan_in() + d.scan_out());
    }

    #[test]
    fn chain_accounting_conserves_cells() {
        let c = CoreTest::new(13, 7, 3, vec![9, 9, 4], 5).unwrap();
        let d = WrapperDesign::design(&c, 4).unwrap();
        assert_eq!(d.chain_flops().iter().sum::<u64>(), 22);
        assert_eq!(d.chain_inputs().iter().sum::<u64>(), 13 + 3);
        assert_eq!(d.chain_outputs().iter().sum::<u64>(), 7 + 3);
    }

    proptest! {
        /// scan_in/scan_out never drop below the trivial lower bounds and
        /// test time matches the formula recomputed from parts.
        #[test]
        fn design_invariants(
            inputs in 0u32..60,
            outputs in 0u32..60,
            chains in proptest::collection::vec(1u32..80, 0..12),
            patterns in 1u64..500,
            width in 1u16..32,
        ) {
            prop_assume!(inputs + outputs > 0 || !chains.is_empty());
            let c = CoreTest::new(inputs, outputs, 0, chains.clone(), patterns).unwrap();
            let d = WrapperDesign::design(&c, width).unwrap();

            let longest_chain = chains.iter().copied().max().unwrap_or(0) as u64;
            prop_assert!(d.scan_in() >= longest_chain);
            prop_assert!(d.scan_out() >= longest_chain);
            prop_assert!(d.scan_in() >= c.scan_in_bits().div_ceil(u64::from(width)));
            prop_assert!(d.scan_out() >= c.scan_out_bits().div_ceil(u64::from(width)));

            let long = d.scan_in().max(d.scan_out());
            let short = d.scan_in().min(d.scan_out());
            prop_assert_eq!(d.test_time(), (1 + long) * patterns + short);
        }

        /// The closed-form cell placements pick exactly the chain the
        /// first-minimum linear scan would, cell for cell, so the design,
        /// scan chain placement, and bidir distribution are bit-identical
        /// to the reference implementation.
        #[test]
        fn heap_placement_matches_scan_reference(
            inputs in 0u32..400,
            outputs in 0u32..400,
            bidirs in 0u32..120,
            chains in proptest::collection::vec(1u32..80, 0..12),
            patterns in 1u64..500,
            width in 1u16..64,
        ) {
            prop_assume!(inputs + outputs + bidirs > 0 || !chains.is_empty());
            let c = CoreTest::new(inputs, outputs, bidirs, chains, patterns).unwrap();
            let got = WrapperDesign::design_with_placement(&c, width).unwrap();
            let want = design_scan_reference(&c, width);
            prop_assert_eq!(got, want);
        }

        /// Monotonicity: test time is non-increasing in TAM width.
        #[test]
        fn time_monotone_in_width(
            inputs in 0u32..40,
            outputs in 0u32..40,
            chains in proptest::collection::vec(1u32..60, 0..10),
            patterns in 1u64..200,
            width in 1u16..31,
        ) {
            prop_assume!(inputs + outputs > 0 || !chains.is_empty());
            let c = CoreTest::new(inputs, outputs, 0, chains, patterns).unwrap();
            let t_narrow = WrapperDesign::design(&c, width).unwrap().test_time();
            let t_wide = WrapperDesign::design(&c, width + 1).unwrap().test_time();
            prop_assert!(t_wide <= t_narrow);
        }
    }
}
