//! Cell-level wrapper layouts.
//!
//! [`WrapperDesign`] answers the scheduler's question — how long does the
//! test take — with per-chain *counts*. A DFT engineer implementing the
//! wrapper needs the *composition*: which internal scan chains concatenate
//! on which wrapper chain, and how many wrapper boundary cells pad each
//! side. [`WrapperLayout`] materializes exactly that, sharing one code
//! path with `Design_wrapper` so the layout provably realizes the design's
//! scan-in/scan-out lengths.

use crate::{CoreTest, TamWidth, WrapperDesign, WrapperError};

/// The composition of one wrapper scan chain.
///
/// In Intest mode the chain shifts through: wrapper input cells → the
/// concatenated internal scan chain segments → wrapper output cells.
/// Bidirectional cells count on both the input and the output side.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WrapperChainLayout {
    /// Position of this wrapper chain (0-based; one TAM wire each).
    pub index: usize,
    /// Wrapper input cells at the head of the chain (excluding bidirs).
    pub input_cells: u64,
    /// Bidirectional wrapper cells (on both scan paths).
    pub bidir_cells: u64,
    /// Internal scan chain lengths concatenated on this wrapper chain, in
    /// the core's scan chain order.
    pub segments: Vec<u32>,
    /// Wrapper output cells at the tail (excluding bidirs).
    pub output_cells: u64,
}

impl WrapperChainLayout {
    /// Total internal scan flops on this wrapper chain.
    pub fn flops(&self) -> u64 {
        self.segments.iter().map(|&l| u64::from(l)).sum()
    }

    /// Scan-in path length: writable cells shifted per pattern.
    pub fn scan_in_length(&self) -> u64 {
        self.input_cells + self.bidir_cells + self.flops()
    }

    /// Scan-out path length: readable cells shifted per pattern.
    pub fn scan_out_length(&self) -> u64 {
        self.flops() + self.bidir_cells + self.output_cells
    }

    /// Whether the chain carries nothing (legal on over-wide TAMs).
    pub fn is_empty(&self) -> bool {
        self.input_cells == 0
            && self.bidir_cells == 0
            && self.output_cells == 0
            && self.segments.is_empty()
    }
}

/// A complete cell-level wrapper layout for one core at one TAM width.
///
/// # Example
///
/// ```
/// use soctam_wrapper::{CoreTest, WrapperLayout};
///
/// # fn main() -> Result<(), soctam_wrapper::WrapperError> {
/// let core = CoreTest::new(8, 4, 0, vec![30, 20, 10], 50)?;
/// let layout = WrapperLayout::build(&core, 3)?;
/// // The layout realizes exactly the design's scan paths.
/// assert_eq!(layout.scan_in(), layout.design().scan_in());
/// println!("{}", layout.render("my_core"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WrapperLayout {
    design: WrapperDesign,
    chains: Vec<WrapperChainLayout>,
}

impl WrapperLayout {
    /// Builds the cell-level layout for `core` on `width` wires, running
    /// the same `Design_wrapper` pass as [`WrapperDesign::design`].
    ///
    /// # Errors
    ///
    /// Returns [`WrapperError::ZeroWidth`] if `width == 0`.
    pub fn build(core: &CoreTest, width: TamWidth) -> Result<Self, WrapperError> {
        let (design, placement, bidirs) = WrapperDesign::design_with_placement(core, width)?;
        let k = usize::from(width);
        let mut chains: Vec<WrapperChainLayout> = (0..k)
            .map(|index| WrapperChainLayout {
                index,
                input_cells: design.chain_inputs()[index] - bidirs[index],
                bidir_cells: bidirs[index],
                segments: Vec::new(),
                output_cells: design.chain_outputs()[index] - bidirs[index],
            })
            .collect();
        for (scan_chain, &wrapper_chain) in placement.iter().enumerate() {
            chains[wrapper_chain]
                .segments
                .push(core.scan_chains()[scan_chain]);
        }
        Ok(Self { design, chains })
    }

    /// The timing-level design this layout realizes.
    pub fn design(&self) -> &WrapperDesign {
        &self.design
    }

    /// The wrapper chains, one per TAM wire.
    pub fn chains(&self) -> &[WrapperChainLayout] {
        &self.chains
    }

    /// Longest scan-in path, recomputed from the cell-level layout.
    pub fn scan_in(&self) -> u64 {
        self.chains
            .iter()
            .map(WrapperChainLayout::scan_in_length)
            .max()
            .unwrap_or(0)
    }

    /// Longest scan-out path, recomputed from the cell-level layout.
    pub fn scan_out(&self) -> u64 {
        self.chains
            .iter()
            .map(WrapperChainLayout::scan_out_length)
            .max()
            .unwrap_or(0)
    }

    /// Total wrapper boundary cells (inputs + outputs + bidirs).
    pub fn boundary_cells(&self) -> u64 {
        self.chains
            .iter()
            .map(|c| c.input_cells + c.output_cells + c.bidir_cells)
            .sum()
    }

    /// Renders a human-readable wrapper description.
    pub fn render(&self, core_name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wrapper {core_name}: {} chains, scan-in {}, scan-out {}",
            self.chains.len(),
            self.scan_in(),
            self.scan_out()
        );
        for chain in &self.chains {
            if chain.is_empty() {
                let _ = writeln!(out, "  chain {:>2}: (unused)", chain.index);
                continue;
            }
            let segs: Vec<String> = chain.segments.iter().map(|s| format!("sc[{s}]")).collect();
            let _ = writeln!(
                out,
                "  chain {:>2}: {} WIC + {} WBC | {} | {} WOC  (in {}, out {})",
                chain.index,
                chain.input_cells,
                chain.bidir_cells,
                if segs.is_empty() {
                    "-".to_owned()
                } else {
                    segs.join(" -> ")
                },
                chain.output_cells,
                chain.scan_in_length(),
                chain.scan_out_length(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn layout(
        inputs: u32,
        outputs: u32,
        bidirs: u32,
        chains: Vec<u32>,
        w: TamWidth,
    ) -> WrapperLayout {
        let core = CoreTest::new(inputs, outputs, bidirs, chains, 10).unwrap();
        WrapperLayout::build(&core, w).unwrap()
    }

    #[test]
    fn layout_realizes_design_lengths() {
        let l = layout(8, 4, 2, vec![30, 20, 10], 3);
        assert_eq!(l.scan_in(), l.design().scan_in());
        assert_eq!(l.scan_out(), l.design().scan_out());
    }

    #[test]
    fn every_scan_chain_placed_once() {
        let l = layout(8, 4, 0, vec![30, 20, 10, 5, 5], 3);
        let mut placed: Vec<u32> = l
            .chains()
            .iter()
            .flat_map(|c| c.segments.iter().copied())
            .collect();
        placed.sort_unstable();
        assert_eq!(placed, vec![5, 5, 10, 20, 30]);
    }

    #[test]
    fn boundary_cells_counted_once() {
        let l = layout(8, 4, 2, vec![16], 4);
        assert_eq!(l.boundary_cells(), 8 + 4 + 2);
    }

    #[test]
    fn unused_chains_render_as_unused() {
        let l = layout(1, 1, 0, vec![9], 4);
        assert!(l.chains().iter().any(WrapperChainLayout::is_empty));
        let text = l.render("tiny");
        assert!(text.contains("(unused)"));
        assert!(text.contains("sc[9]"));
    }

    #[test]
    fn zero_width_rejected() {
        let core = CoreTest::new(1, 1, 0, vec![4], 2).unwrap();
        assert_eq!(WrapperLayout::build(&core, 0), Err(WrapperError::ZeroWidth));
    }

    proptest! {
        /// Cell-level recomputation always agrees with the timing design,
        /// and no cell is lost or duplicated.
        #[test]
        fn layout_conserves_and_agrees(
            inputs in 0u32..50,
            outputs in 0u32..50,
            bidirs in 0u32..20,
            chains in proptest::collection::vec(1u32..60, 0..10),
            width in 1u16..24,
        ) {
            prop_assume!(inputs + outputs + bidirs > 0 || !chains.is_empty());
            let core = CoreTest::new(inputs, outputs, bidirs, chains.clone(), 5).unwrap();
            let l = WrapperLayout::build(&core, width).unwrap();

            prop_assert_eq!(l.scan_in(), l.design().scan_in());
            prop_assert_eq!(l.scan_out(), l.design().scan_out());
            prop_assert_eq!(l.boundary_cells(), u64::from(inputs + outputs + bidirs));

            let total_flops: u64 = l.chains().iter().map(WrapperChainLayout::flops).sum();
            prop_assert_eq!(total_flops, core.scan_flops());

            let placed: usize = l.chains().iter().map(|c| c.segments.len()).sum();
            prop_assert_eq!(placed, chains.len());
        }
    }
}
