//! Best-Fit-Decreasing partitioning of scan chains onto wrapper chains.
//!
//! `Design_wrapper` (Iyengar et al., JETTA 2002) reduces wrapper design to a
//! multiprocessor-scheduling-style problem: place the core's internal scan
//! chains on `k` wrapper scan chains so the longest wrapper chain is as
//! short as possible. The heuristic used there — and here — sorts the scan
//! chains by decreasing length and repeatedly places the next chain on the
//! currently shortest wrapper chain.

/// Result of partitioning items onto `k` bins: per-bin loads and the
/// assignment of each input item to its bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    loads: Vec<u64>,
    assignment: Vec<usize>,
}

impl Partition {
    /// Load (sum of item sizes) of each bin.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// For each input item (in the original input order), the bin index it
    /// was placed on.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The maximum bin load — the quantity BFD minimizes.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// The minimum bin load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }
}

/// Partitions `items` onto `bins` bins with Best-Fit-Decreasing, minimizing
/// the maximum bin load.
///
/// Ties between equally loaded bins are broken toward the lowest bin index,
/// and ties between equally sized items toward the earlier input index, so
/// the result is deterministic.
///
/// The lightest bin is tracked in a min-heap keyed on `(load, bin)`, so
/// each placement costs O(log bins) instead of an O(bins) scan — the same
/// tie-break as the scan, since the heap key orders equal loads by bin
/// index.
///
/// # Panics
///
/// Panics if `bins == 0`.
///
/// # Example
///
/// ```
/// use soctam_wrapper::partition_bfd;
///
/// let p = partition_bfd(&[8, 5, 5, 3, 2], 2);
/// // 8+3 vs 5+5+2 -> max load 12, optimal here is 12 as well (23 total).
/// assert_eq!(p.max_load(), 12);
/// ```
pub fn partition_bfd(items: &[u32], bins: usize) -> Partition {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    assert!(bins > 0, "cannot partition onto zero bins");
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Decreasing size, stable on input index.
    order.sort_by(|&a, &b| items[b].cmp(&items[a]).then(a.cmp(&b)));

    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; items.len()];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..bins).map(|bin| Reverse((0, bin))).collect();
    for idx in order {
        let Reverse((load, bin)) = heap.pop().expect("one entry per bin");
        let load = load + u64::from(items[idx]);
        loads[bin] = load;
        assignment[idx] = bin;
        heap.push(Reverse((load, bin)));
    }
    Partition { loads, assignment }
}

/// Index of the first bin with the minimum load.
///
/// The linear-scan reference the heap-based placements are pinned against
/// (here and in `design.rs`); production code uses the heaps.
#[cfg(test)]
pub(crate) fn min_load_bin(loads: &[u64]) -> usize {
    let mut best = 0;
    for (i, &l) in loads.iter().enumerate() {
        if l < loads[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_bin_takes_everything() {
        let p = partition_bfd(&[4, 9, 1], 1);
        assert_eq!(p.loads(), &[14]);
        assert_eq!(p.assignment(), &[0, 0, 0]);
    }

    #[test]
    fn more_bins_than_items_leaves_empties() {
        let p = partition_bfd(&[7, 3], 4);
        assert_eq!(p.max_load(), 7);
        assert_eq!(p.min_load(), 0);
        assert_eq!(p.loads().iter().sum::<u64>(), 10);
    }

    #[test]
    fn empty_items() {
        let p = partition_bfd(&[], 3);
        assert_eq!(p.max_load(), 0);
        assert!(p.assignment().is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let a = partition_bfd(&[5, 5, 5, 5], 2);
        let b = partition_bfd(&[5, 5, 5, 5], 2);
        assert_eq!(a, b);
        assert_eq!(a.loads(), &[10, 10]);
    }

    #[test]
    fn classic_lpt_instance() {
        // LPT on {8,7,6,5,4} over 2 bins: 8+5+4 vs 7+6 -> 17 vs 13? LPT gives
        // 8;7;6->bin1(7+6=13)? Walk: 8->b0, 7->b1, 6->b1? no, min load bin is
        // b1(7)? b0=8,b1=7 -> 6 goes to b1 => 13; 5 -> b0 => 13; 4 -> either
        // (13,13) -> b0 => 17,13 -> max 17. Optimal is 15. LPT bound 4/3·OPT
        // holds: 17 <= 20.
        let p = partition_bfd(&[8, 7, 6, 5, 4], 2);
        assert_eq!(p.max_load(), 17);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_panics() {
        let _ = partition_bfd(&[1], 0);
    }

    proptest! {
        /// Every item lands on exactly one bin and loads add up.
        #[test]
        fn conservation(items in proptest::collection::vec(1u32..500, 0..40),
                        bins in 1usize..16) {
            let p = partition_bfd(&items, bins);
            prop_assert_eq!(p.assignment().len(), items.len());
            let total: u64 = items.iter().map(|&i| u64::from(i)).sum();
            prop_assert_eq!(p.loads().iter().sum::<u64>(), total);
            let mut recomputed = vec![0u64; bins];
            for (item, &bin) in items.iter().zip(p.assignment()) {
                prop_assert!(bin < bins);
                recomputed[bin] += u64::from(*item);
            }
            prop_assert_eq!(recomputed, p.loads().to_vec());
        }

        /// Greedy max load never exceeds the trivial bounds:
        /// avg ≤ max_load ≤ avg + largest item (LPT-style guarantee).
        #[test]
        fn load_bounds(items in proptest::collection::vec(1u32..500, 1..40),
                       bins in 1usize..16) {
            let p = partition_bfd(&items, bins);
            let total: u64 = items.iter().map(|&i| u64::from(i)).sum();
            let largest = u64::from(*items.iter().max().unwrap());
            prop_assert!(p.max_load() >= total.div_ceil(bins as u64).max(largest).min(total));
            prop_assert!(p.max_load() >= total / bins as u64);
            prop_assert!(p.max_load() >= largest);
            prop_assert!(p.max_load() <= total / bins as u64 + largest);
        }

        /// Adding a bin never increases the BFD max load.
        #[test]
        fn monotone_in_bins(items in proptest::collection::vec(1u32..200, 1..30),
                            bins in 1usize..12) {
            let narrow = partition_bfd(&items, bins);
            let wide = partition_bfd(&items, bins + 1);
            prop_assert!(wide.max_load() <= narrow.max_load());
        }

        /// The heap placement reproduces the linear min-scan reference
        /// bit for bit (same loads AND same assignment).
        #[test]
        fn heap_matches_linear_scan(items in proptest::collection::vec(1u32..500, 0..40),
                                    bins in 1usize..16) {
            let mut order: Vec<usize> = (0..items.len()).collect();
            order.sort_by(|&a, &b| items[b].cmp(&items[a]).then(a.cmp(&b)));
            let mut loads = vec![0u64; bins];
            let mut assignment = vec![0usize; items.len()];
            for idx in order {
                let bin = min_load_bin(&loads);
                loads[bin] += u64::from(items[idx]);
                assignment[idx] = bin;
            }
            let p = partition_bfd(&items, bins);
            prop_assert_eq!(p.loads(), &loads[..]);
            prop_assert_eq!(p.assignment(), &assignment[..]);
        }
    }
}
