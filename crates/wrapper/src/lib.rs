//! # soctam-wrapper
//!
//! Test wrapper design and testing-time modelling for embedded cores, after
//! Iyengar, Chakrabarty & Marinissen, *"Wrapper/TAM Co-Optimization,
//! Constraint-Driven Test Scheduling, and Tester Data Volume Reduction for
//! SOCs"*, DAC 2002, and the `Design_wrapper` algorithm of their earlier
//! JETTA 2002 paper.
//!
//! The crate answers one question for a single embedded core: *given `w` TAM
//! wires, how long does the core's test take?* The answer is produced by
//! partitioning the core's internal scan chains and functional terminals
//! onto `w` wrapper scan chains with a Best-Fit-Decreasing heuristic
//! ([`WrapperDesign`]), evaluating the classic scan test-time formula
//! ([`WrapperDesign::test_time`]), and condensing the staircase
//! time-vs-width curve into its Pareto-optimal points
//! ([`RectangleSet`]).
//!
//! # Example
//!
//! ```
//! use soctam_wrapper::{CoreTest, RectangleSet};
//!
//! # fn main() -> Result<(), soctam_wrapper::WrapperError> {
//! // A small scan-tested core: 8 inputs, 6 outputs, four scan chains.
//! let core = CoreTest::builder()
//!     .inputs(8)
//!     .outputs(6)
//!     .scan_chains([32, 32, 16, 8])
//!     .patterns(100)
//!     .build()?;
//!
//! // Testing time shrinks as the TAM gets wider, but only at
//! // Pareto-optimal widths.
//! let rects = RectangleSet::build(&core, 16);
//! assert!(rects.time_at(16) <= rects.time_at(1));
//! assert!(rects.pareto_widths().len() <= 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfd;
mod core_test;
mod design;
mod error;
pub mod instrument;
mod layout;
mod pareto;
mod rect;

pub use bfd::{partition_bfd, Partition};
pub use core_test::{CoreTest, CoreTestBuilder};
pub use design::WrapperDesign;
pub use error::WrapperError;
pub use layout::{WrapperChainLayout, WrapperLayout};
pub use pareto::{ParetoPoint, StaircasePoint};
pub use rect::{Rectangle, RectangleSet};

/// Number of TAM wires (equivalently, wrapper scan chains) given to a core.
///
/// The paper caps this at 64 (`W_max`); this crate accepts any non-zero
/// width and leaves the cap to callers.
pub type TamWidth = u16;

/// Test application time in tester clock cycles.
pub type Cycles = u64;
