use crate::WrapperError;

/// Test-set parameters of one embedded core, as consumed by wrapper design.
///
/// This is the per-core record of the ITC'02 SOC benchmark format: counts of
/// functional inputs, outputs and bidirectional terminals, the lengths of
/// the core's internal scan chains (fixed, per the paper's assumption), and
/// the number of external test patterns.
///
/// Construct with [`CoreTest::builder`] or [`CoreTest::new`]; both validate
/// the data ([`WrapperError`]).
///
/// # Example
///
/// ```
/// use soctam_wrapper::CoreTest;
///
/// # fn main() -> Result<(), soctam_wrapper::WrapperError> {
/// let core = CoreTest::new(109, 32, 0, vec![34, 34, 33], 12)?;
/// assert_eq!(core.scan_flops(), 101);
/// assert!(core.is_sequential());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreTest {
    inputs: u32,
    outputs: u32,
    bidirs: u32,
    scan_chains: Vec<u32>,
    patterns: u64,
}

impl CoreTest {
    /// Creates a validated core test descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`WrapperError::EmptyCore`] if the core has no terminals and
    /// no scan chains, or zero patterns; [`WrapperError::ZeroLengthScanChain`]
    /// if any supplied scan chain is empty.
    pub fn new(
        inputs: u32,
        outputs: u32,
        bidirs: u32,
        scan_chains: Vec<u32>,
        patterns: u64,
    ) -> Result<Self, WrapperError> {
        if let Some(index) = scan_chains.iter().position(|&len| len == 0) {
            return Err(WrapperError::ZeroLengthScanChain { index });
        }
        if patterns == 0 || (inputs == 0 && outputs == 0 && bidirs == 0 && scan_chains.is_empty()) {
            return Err(WrapperError::EmptyCore);
        }
        Ok(Self {
            inputs,
            outputs,
            bidirs,
            scan_chains,
            patterns,
        })
    }

    /// Starts building a [`CoreTest`] field by field.
    pub fn builder() -> CoreTestBuilder {
        CoreTestBuilder::default()
    }

    /// Number of functional input terminals (each gets a wrapper input cell).
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of functional output terminals (each gets a wrapper output cell).
    pub fn outputs(&self) -> u32 {
        self.outputs
    }

    /// Number of bidirectional terminals (wrapper cells on both directions).
    pub fn bidirs(&self) -> u32 {
        self.bidirs
    }

    /// Lengths of the core's internal scan chains, in design order.
    pub fn scan_chains(&self) -> &[u32] {
        &self.scan_chains
    }

    /// Number of external scan test patterns.
    pub fn patterns(&self) -> u64 {
        self.patterns
    }

    /// Total number of internal scan flip-flops.
    pub fn scan_flops(&self) -> u64 {
        self.scan_chains.iter().map(|&l| u64::from(l)).sum()
    }

    /// Whether the core has internal state accessed through scan.
    pub fn is_sequential(&self) -> bool {
        !self.scan_chains.is_empty()
    }

    /// Scan-in bits shifted per pattern at a given wrapper design, i.e. the
    /// total writable cells: input cells + bidir cells + scan flops.
    pub fn scan_in_bits(&self) -> u64 {
        u64::from(self.inputs) + u64::from(self.bidirs) + self.scan_flops()
    }

    /// Scan-out bits captured per pattern: output cells + bidir cells +
    /// scan flops.
    pub fn scan_out_bits(&self) -> u64 {
        u64::from(self.outputs) + u64::from(self.bidirs) + self.scan_flops()
    }

    /// Total test data bits held in tester memory for this core:
    /// `patterns × (scan-in bits + scan-out bits)`.
    ///
    /// Used by the paper's power model ("test data bits per test pattern")
    /// and by the tester data volume analysis.
    pub fn test_data_bits(&self) -> u64 {
        self.patterns * (self.scan_in_bits() + self.scan_out_bits())
    }

    /// The widest TAM this core can exploit: one wire per wrapper chain,
    /// where each chain must hold at least one cell or scan chain.
    ///
    /// Beyond this width extra wires are guaranteed idle; the Pareto
    /// machinery would discard them anyway, this is just a cheap cap.
    pub fn max_useful_width(&self) -> u64 {
        (self.scan_chains.len() as u64)
            .max(u64::from(self.inputs) + u64::from(self.bidirs))
            .max(u64::from(self.outputs) + u64::from(self.bidirs))
            .max(1)
    }
}

/// Builder for [`CoreTest`], convenient when not all fields are known at
/// one call site.
///
/// # Example
///
/// ```
/// use soctam_wrapper::CoreTest;
///
/// # fn main() -> Result<(), soctam_wrapper::WrapperError> {
/// let core = CoreTest::builder()
///     .inputs(35)
///     .outputs(49)
///     .scan_chains([46, 45, 44, 44])
///     .patterns(97)
///     .build()?;
/// assert_eq!(core.scan_flops(), 179);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreTestBuilder {
    inputs: u32,
    outputs: u32,
    bidirs: u32,
    scan_chains: Vec<u32>,
    patterns: u64,
}

impl CoreTestBuilder {
    /// Sets the functional input count.
    pub fn inputs(mut self, inputs: u32) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the functional output count.
    pub fn outputs(mut self, outputs: u32) -> Self {
        self.outputs = outputs;
        self
    }

    /// Sets the bidirectional terminal count.
    pub fn bidirs(mut self, bidirs: u32) -> Self {
        self.bidirs = bidirs;
        self
    }

    /// Sets the internal scan chain lengths.
    pub fn scan_chains<I: IntoIterator<Item = u32>>(mut self, chains: I) -> Self {
        self.scan_chains = chains.into_iter().collect();
        self
    }

    /// Adds `count` scan chains of identical `length` (common in the ITC'02
    /// benchmark descriptions, e.g. "16 chains of 41 flops").
    pub fn uniform_scan_chains(mut self, count: usize, length: u32) -> Self {
        self.scan_chains.extend(std::iter::repeat_n(length, count));
        self
    }

    /// Sets the external pattern count.
    pub fn patterns(mut self, patterns: u64) -> Self {
        self.patterns = patterns;
        self
    }

    /// Validates and builds the [`CoreTest`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CoreTest::new`].
    pub fn build(self) -> Result<CoreTest, WrapperError> {
        CoreTest::new(
            self.inputs,
            self.outputs,
            self.bidirs,
            self.scan_chains,
            self.patterns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s5378() -> CoreTest {
        CoreTest::new(35, 49, 0, vec![46, 45, 44, 44], 97).unwrap()
    }

    #[test]
    fn rejects_zero_patterns() {
        assert_eq!(
            CoreTest::new(4, 4, 0, vec![8], 0),
            Err(WrapperError::EmptyCore)
        );
    }

    #[test]
    fn rejects_fully_empty_core() {
        assert_eq!(
            CoreTest::new(0, 0, 0, vec![], 10),
            Err(WrapperError::EmptyCore)
        );
    }

    #[test]
    fn rejects_zero_length_chain() {
        assert_eq!(
            CoreTest::new(4, 4, 0, vec![8, 0, 2], 10),
            Err(WrapperError::ZeroLengthScanChain { index: 1 })
        );
    }

    #[test]
    fn combinational_core_is_valid() {
        let c = CoreTest::new(32, 32, 0, vec![], 12).unwrap();
        assert!(!c.is_sequential());
        assert_eq!(c.scan_flops(), 0);
        assert_eq!(c.max_useful_width(), 32);
    }

    #[test]
    fn scan_bit_accounting() {
        let c = s5378();
        assert_eq!(c.scan_flops(), 179);
        assert_eq!(c.scan_in_bits(), 179 + 35);
        assert_eq!(c.scan_out_bits(), 179 + 49);
        assert_eq!(c.test_data_bits(), 97 * (214 + 228));
    }

    #[test]
    fn bidirs_count_on_both_sides() {
        let c = CoreTest::new(10, 20, 5, vec![7], 3).unwrap();
        assert_eq!(c.scan_in_bits(), 10 + 5 + 7);
        assert_eq!(c.scan_out_bits(), 20 + 5 + 7);
        assert_eq!(c.max_useful_width(), 25);
    }

    #[test]
    fn builder_uniform_chains() {
        let c = CoreTest::builder()
            .inputs(31)
            .outputs(121)
            .uniform_scan_chains(15, 41)
            .uniform_scan_chains(1, 54)
            .patterns(236)
            .build()
            .unwrap();
        assert_eq!(c.scan_chains().len(), 16);
        assert_eq!(c.scan_flops(), 15 * 41 + 54);
    }

    #[test]
    fn builder_matches_new() {
        let via_builder = CoreTest::builder()
            .inputs(35)
            .outputs(49)
            .scan_chains([46, 45, 44, 44])
            .patterns(97)
            .build()
            .unwrap();
        assert_eq!(via_builder, s5378());
    }
}
