//! Rectangle representation of core tests.
//!
//! In the paper's generalized rectangle-packing formulation, each candidate
//! wrapper design of a core is a rectangle whose *height* is the TAM width
//! and whose *width* is the test application time. [`RectangleSet`] holds
//! the full menu of rectangles for one core, monotonized so that offering
//! more wires never costs time, plus the Pareto-optimal subset that the
//! scheduler actually considers.

use crate::pareto::pareto_points;
use crate::{CoreTest, Cycles, ParetoPoint, StaircasePoint, TamWidth, WrapperDesign};

/// One candidate rectangle for a core: a TAM width together with the
/// testing time and wrapper scan lengths it implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rectangle {
    /// Height: TAM wires offered to the core.
    pub width: TamWidth,
    /// The smallest number of wires that achieves `time`; the scheduler
    /// assigns this many so the rest stay available (paper, §3).
    pub effective_width: TamWidth,
    /// Length: test application time in cycles.
    pub time: Cycles,
    /// Longest wrapper scan-in path of the underlying design.
    pub scan_in: u64,
    /// Longest wrapper scan-out path of the underlying design.
    pub scan_out: u64,
}

impl Rectangle {
    /// Area of the rectangle in wire·cycles, using the effective width.
    ///
    /// The sum of areas over all cores divided by the total TAM width is
    /// the paper's schedule lower bound component.
    #[inline]
    pub fn area(&self) -> u128 {
        u128::from(self.effective_width) * u128::from(self.time)
    }

    /// Extra cycles charged when a test running at this design is
    /// preempted: one scan-out plus one scan-in.
    #[inline]
    pub fn preemption_penalty(&self) -> Cycles {
        self.scan_in + self.scan_out
    }
}

/// The full rectangle menu for one core, for widths `1..=w_max`.
///
/// Construction runs `Design_wrapper` at every width and monotonizes the
/// resulting staircase: `time_at(w)` is the best time achievable with *at
/// most* `w` wires, and `rect_at(w).effective_width` records how many wires
/// that best design actually needs.
///
/// # Example
///
/// ```
/// use soctam_wrapper::{CoreTest, RectangleSet};
///
/// # fn main() -> Result<(), soctam_wrapper::WrapperError> {
/// let core = CoreTest::new(32, 32, 0, vec![64, 64, 48, 48], 120)?;
/// let rects = RectangleSet::build(&core, 64);
///
/// // The staircase is monotone...
/// assert!(rects.time_at(64) <= rects.time_at(8));
/// // ...and drops exactly at the Pareto-optimal widths.
/// let paretos = rects.pareto_widths();
/// assert_eq!(paretos[0], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RectangleSet {
    rects: Vec<Rectangle>,
    pareto: Vec<ParetoPoint>,
    scan_in_bits: u64,
    scan_out_bits: u64,
    patterns: u64,
    test_data_bits: u64,
}

impl RectangleSet {
    /// Builds the rectangle set for `core` considering widths `1..=w_max`.
    ///
    /// # Panics
    ///
    /// Panics if `w_max == 0`.
    pub fn build(core: &CoreTest, w_max: TamWidth) -> Self {
        assert!(w_max > 0, "w_max must be at least one wire");
        crate::instrument::note_rectangle_set_build();
        let useful = core.max_useful_width().min(u64::from(w_max)) as TamWidth;

        let mut rects: Vec<Rectangle> = Vec::with_capacity(usize::from(w_max));
        let mut best_time = Cycles::MAX;
        let mut best: Option<Rectangle> = None;
        for w in 1..=useful {
            // Design_wrapper never fails for w >= 1 on a valid core.
            let d = WrapperDesign::design(core, w).expect("width >= 1");
            let t = d.test_time();
            if t < best_time {
                best_time = t;
                best = Some(Rectangle {
                    width: w,
                    effective_width: w,
                    time: t,
                    scan_in: d.scan_in(),
                    scan_out: d.scan_out(),
                });
            }
            let mut r = best.expect("set on first iteration");
            r.width = w;
            rects.push(r);
        }
        // Widths past the useful cap reuse the best design.
        for w in useful + 1..=w_max {
            let mut r = *rects.last().expect("useful >= 1");
            r.width = w;
            rects.push(r);
        }

        let pareto = pareto_points(rects.iter().map(|r| r.time));
        Self {
            rects,
            pareto,
            scan_in_bits: core.scan_in_bits(),
            scan_out_bits: core.scan_out_bits(),
            patterns: core.patterns(),
            test_data_bits: core.test_data_bits(),
        }
    }

    /// Derives the rectangle set for a smaller cap from this one, without
    /// re-running any wrapper design.
    ///
    /// Rectangle menus are *cap-prefix-stable*: the rectangle chosen at
    /// width `w` depends only on the designs at widths `1..=w`, never on
    /// the cap the set was built for, and a Pareto point at width `w` is a
    /// strict time drop between `w - 1` and `w`. A cap-`c` set is therefore
    /// exactly the first `c` rectangles of any larger build plus the Pareto
    /// points at widths `<= c` — bit-identical to `build(core, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` or `cap > self.w_max()`.
    pub fn prefix(&self, cap: TamWidth) -> Self {
        assert!(
            cap >= 1 && cap <= self.w_max(),
            "prefix cap {cap} outside 1..={}",
            self.w_max()
        );
        crate::instrument::note_rectangle_set_derive();
        Self {
            rects: self.rects[..usize::from(cap)].to_vec(),
            pareto: self
                .pareto
                .iter()
                .filter(|p| p.width <= cap)
                .copied()
                .collect(),
            scan_in_bits: self.scan_in_bits,
            scan_out_bits: self.scan_out_bits,
            patterns: self.patterns,
            test_data_bits: self.test_data_bits,
        }
    }

    /// Maximum width this set was built for.
    pub fn w_max(&self) -> TamWidth {
        self.rects.len() as TamWidth
    }

    /// The rectangle chosen when `width` wires are offered.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > w_max`.
    #[inline]
    pub fn rect_at(&self, width: TamWidth) -> Rectangle {
        assert!(
            width >= 1 && usize::from(width) <= self.rects.len(),
            "width {width} outside 1..={}",
            self.rects.len()
        );
        self.rects[usize::from(width) - 1]
    }

    /// Best testing time with at most `width` wires.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > w_max`.
    #[inline]
    pub fn time_at(&self, width: TamWidth) -> Cycles {
        self.rect_at(width).time
    }

    /// The Pareto-optimal points of the staircase, in increasing width.
    pub fn pareto(&self) -> &[ParetoPoint] {
        &self.pareto
    }

    /// Just the Pareto-optimal widths, in increasing order.
    pub fn pareto_widths(&self) -> Vec<TamWidth> {
        self.pareto.iter().map(|p| p.width).collect()
    }

    /// The highest Pareto-optimal width (the width past which extra wires
    /// can never help this core).
    pub fn highest_pareto_width(&self) -> TamWidth {
        self.pareto.last().map(|p| p.width).unwrap_or(1)
    }

    /// The largest Pareto-optimal width `<= cap`, if any.
    pub fn highest_pareto_width_at_most(&self, cap: TamWidth) -> Option<TamWidth> {
        self.pareto
            .iter()
            .rev()
            .map(|p| p.width)
            .find(|&w| w <= cap)
    }

    /// Minimum testing time over the whole set (time at `w_max`).
    pub fn min_time(&self) -> Cycles {
        self.time_at(self.w_max())
    }

    /// Smallest width whose time is within `percent`% of the minimum time —
    /// the paper's *preferred TAM width* before the Pareto bump.
    pub fn preferred_width(&self, percent: u32) -> TamWidth {
        let target = self.min_time() as u128 * (100 + u128::from(percent));
        for r in &self.rects {
            if u128::from(r.time) * 100 <= target {
                return r.width;
            }
        }
        self.w_max()
    }

    /// The paper's full preferred-width rule (Figure 5): the `percent`-based
    /// preferred width, bumped to the highest Pareto-optimal width when that
    /// costs at most `bump` extra wires. `percent` is `m`, `bump` is `d`.
    pub fn preferred_width_bumped(&self, percent: u32, bump: TamWidth) -> TamWidth {
        let pref = self.preferred_width(percent);
        let hi = self.highest_pareto_width();
        if hi > pref && hi - pref <= bump {
            hi
        } else {
            pref
        }
    }

    /// The full staircase as plot-ready points.
    pub fn staircase(&self) -> Vec<StaircasePoint> {
        self.rects
            .iter()
            .map(|r| StaircasePoint {
                width: r.width,
                time: r.time,
                effective_width: r.effective_width,
            })
            .collect()
    }

    /// Total scan-in bits per pattern of the core (width-independent).
    pub fn scan_in_bits(&self) -> u64 {
        self.scan_in_bits
    }

    /// Total scan-out bits per pattern of the core (width-independent).
    pub fn scan_out_bits(&self) -> u64 {
        self.scan_out_bits
    }

    /// Pattern count of the core.
    pub fn patterns(&self) -> u64 {
        self.patterns
    }

    /// Total tester data bits for the core's test.
    pub fn test_data_bits(&self) -> u64 {
        self.test_data_bits
    }

    /// Minimum rectangle area over all widths (wire·cycles); the tightest
    /// resource footprint of this core, used in the schedule lower bound.
    pub fn min_area(&self) -> u128 {
        self.rects
            .iter()
            .map(Rectangle::area)
            .min()
            .expect("at least one rectangle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(
        inputs: u32,
        outputs: u32,
        chains: Vec<u32>,
        patterns: u64,
        w: TamWidth,
    ) -> RectangleSet {
        let c = CoreTest::new(inputs, outputs, 0, chains, patterns).unwrap();
        RectangleSet::build(&c, w)
    }

    #[test]
    fn staircase_is_monotone_by_construction() {
        let s = set(35, 49, vec![46, 45, 44, 44], 97, 64);
        let mut last = Cycles::MAX;
        for w in 1..=64 {
            let t = s.time_at(w);
            assert!(t <= last);
            last = t;
        }
    }

    #[test]
    fn effective_width_is_minimal() {
        let s = set(35, 49, vec![46, 45, 44, 44], 97, 64);
        for w in 1..=64u16 {
            let r = s.rect_at(w);
            assert!(r.effective_width <= w);
            assert_eq!(s.time_at(r.effective_width), r.time);
            if r.effective_width > 1 {
                assert!(s.time_at(r.effective_width - 1) > r.time);
            }
        }
    }

    #[test]
    fn pareto_widths_are_where_time_drops() {
        let s = set(20, 10, vec![100, 60, 30, 10], 50, 32);
        let pw = s.pareto_widths();
        assert_eq!(pw[0], 1);
        for &w in &pw[1..] {
            assert!(s.time_at(w) < s.time_at(w - 1));
        }
        // Every drop is in the Pareto set.
        for w in 2..=32u16 {
            if s.time_at(w) < s.time_at(w - 1) {
                assert!(pw.contains(&w));
            }
        }
    }

    #[test]
    fn beyond_useful_width_is_flat() {
        // Single scan chain: nothing improves past width where the chain
        // dominates both scan paths.
        let s = set(2, 2, vec![50], 10, 64);
        assert_eq!(s.time_at(3), s.time_at(64));
        assert!(s.highest_pareto_width() <= 3);
    }

    #[test]
    fn preferred_width_within_percent() {
        let s = set(35, 49, vec![46, 45, 44, 44], 97, 64);
        for m in [1u32, 5, 10, 25] {
            let w = s.preferred_width(m);
            let t = s.time_at(w);
            assert!(u128::from(t) * 100 <= u128::from(s.min_time()) * (100 + u128::from(m)));
            if w > 1 {
                let t_prev = s.time_at(w - 1);
                assert!(
                    u128::from(t_prev) * 100 > u128::from(s.min_time()) * (100 + u128::from(m))
                );
            }
        }
    }

    #[test]
    fn preferred_width_zero_percent_is_first_min_width() {
        let s = set(8, 8, vec![16, 16], 20, 16);
        let w = s.preferred_width(0);
        assert_eq!(s.time_at(w), s.min_time());
        assert_eq!(w, s.highest_pareto_width());
    }

    #[test]
    fn bump_promotes_to_highest_pareto() {
        let s = set(35, 49, vec![46, 45, 44, 44], 97, 64);
        let pref = s.preferred_width(10);
        let hi = s.highest_pareto_width();
        if hi > pref {
            let gap = hi - pref;
            assert_eq!(s.preferred_width_bumped(10, gap), hi);
            if gap > 1 {
                assert_eq!(s.preferred_width_bumped(10, gap - 1), pref);
            }
        }
        assert_eq!(s.preferred_width_bumped(10, 0), pref);
    }

    #[test]
    fn highest_pareto_at_most_cap() {
        let s = set(20, 10, vec![100, 60, 30, 10], 50, 32);
        let pw = s.pareto_widths();
        let cap = pw[pw.len() / 2];
        assert_eq!(s.highest_pareto_width_at_most(cap), Some(cap));
        assert_eq!(
            s.highest_pareto_width_at_most(64),
            Some(*pw.last().unwrap())
        );
        if pw[0] == 1 {
            assert_eq!(s.highest_pareto_width_at_most(1), Some(1));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rect_at_zero_panics() {
        let s = set(2, 2, vec![5], 3, 8);
        let _ = s.rect_at(0);
    }

    #[test]
    fn prefix_matches_fresh_build() {
        let full = set(35, 49, vec![46, 45, 44, 44], 97, 64);
        for cap in [1u16, 2, 7, 16, 33, 64] {
            assert_eq!(
                full.prefix(cap),
                set(35, 49, vec![46, 45, 44, 44], 97, cap),
                "cap {cap}"
            );
        }
        // Including cores whose useful width is below the cap.
        let flat = set(2, 2, vec![50], 10, 64);
        assert_eq!(flat.prefix(16), set(2, 2, vec![50], 10, 16));
    }

    #[test]
    fn prefix_counts_as_derive_not_build() {
        let full = set(4, 4, vec![16, 16], 10, 32);
        let builds = crate::instrument::rectangle_set_builds();
        let derives = crate::instrument::rectangle_set_derives();
        let _ = full.prefix(8);
        // Parallel tests may build sets, but *this* derive never does.
        assert!(crate::instrument::rectangle_set_derives() > derives);
        let _ = builds; // builds may race upward; bit-identity is pinned above
    }

    #[test]
    #[should_panic(expected = "prefix cap")]
    fn prefix_beyond_build_panics() {
        let s = set(2, 2, vec![5], 3, 8);
        let _ = s.prefix(9);
    }

    proptest! {
        /// Monotone staircase, minimal effective widths, pareto in range.
        #[test]
        fn rectangle_set_invariants(
            inputs in 0u32..50,
            outputs in 0u32..50,
            chains in proptest::collection::vec(1u32..60, 0..8),
            patterns in 1u64..300,
            w_max in 1u16..40,
        ) {
            prop_assume!(inputs + outputs > 0 || !chains.is_empty());
            let c = CoreTest::new(inputs, outputs, 0, chains, patterns).unwrap();
            let s = RectangleSet::build(&c, w_max);

            let mut last = Cycles::MAX;
            for w in 1..=w_max {
                let r = s.rect_at(w);
                prop_assert!(r.time <= last);
                prop_assert!(r.effective_width >= 1 && r.effective_width <= w);
                prop_assert_eq!(s.time_at(r.effective_width), r.time);
                last = r.time;
            }
            for p in s.pareto() {
                prop_assert!(p.width >= 1 && p.width <= w_max);
            }
            prop_assert_eq!(s.min_time(), s.time_at(w_max));
            prop_assert!(s.min_area() > 0);
        }

        /// Any prefix of a build equals the fresh build at that cap.
        #[test]
        fn prefix_is_bit_identical_to_build(
            inputs in 0u32..50,
            outputs in 0u32..50,
            chains in proptest::collection::vec(1u32..60, 0..8),
            patterns in 1u64..300,
            w_max in 2u16..40,
            cap_off in 1u16..39,
        ) {
            prop_assume!(inputs + outputs > 0 || !chains.is_empty());
            let cap = 1 + cap_off % (w_max - 1).max(1);
            let c = CoreTest::new(inputs, outputs, 0, chains, patterns).unwrap();
            let full = RectangleSet::build(&c, w_max);
            prop_assert_eq!(full.prefix(cap), RectangleSet::build(&c, cap));
        }
    }
}
