//! Build instrumentation: process-wide counters of the expensive
//! precomputation steps, so test suites can assert that context-reuse
//! paths (see `soctam_schedule::CompiledSoc`) really do amortize work
//! instead of silently rebuilding it.
//!
//! Counters are monotone; callers measure deltas around the code under
//! test. They are maintained with relaxed atomics — cheap enough to stay
//! enabled in release builds, which is exactly where the equivalence
//! suites want to observe them.

use std::sync::atomic::{AtomicU64, Ordering};

static RECTANGLE_SET_BUILDS: AtomicU64 = AtomicU64::new(0);
static RECTANGLE_SET_DERIVES: AtomicU64 = AtomicU64::new(0);

/// Number of [`RectangleSet::build`](crate::RectangleSet::build) calls
/// (one per core per menu construction) since process start.
pub fn rectangle_set_builds() -> u64 {
    RECTANGLE_SET_BUILDS.load(Ordering::Relaxed)
}

/// Number of [`RectangleSet::prefix`](crate::RectangleSet::prefix)
/// derivations since process start — cheap truncations of an existing
/// build, counted separately so suites can pin that smaller-cap menus are
/// *derived* (O(cap) copies) rather than rebuilt (O(cap) wrapper designs).
pub fn rectangle_set_derives() -> u64 {
    RECTANGLE_SET_DERIVES.load(Ordering::Relaxed)
}

pub(crate) fn note_rectangle_set_build() {
    RECTANGLE_SET_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_rectangle_set_derive() {
    RECTANGLE_SET_DERIVES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreTest, RectangleSet};

    #[test]
    fn counter_increments_per_build() {
        let core = CoreTest::new(4, 4, 0, vec![16, 16], 10).unwrap();
        let before = rectangle_set_builds();
        let _ = RectangleSet::build(&core, 8);
        let _ = RectangleSet::build(&core, 8);
        // Other tests may build sets concurrently; the delta is at least 2.
        assert!(rectangle_set_builds() >= before + 2);
    }
}
