use std::error::Error;
use std::fmt;

/// Errors produced while describing a core test set or designing a wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WrapperError {
    /// The core has no test content at all: no functional terminals, no scan
    /// chains, or zero test patterns.
    EmptyCore,
    /// A scan chain of length zero was supplied.
    ZeroLengthScanChain {
        /// Index of the offending chain in the input order.
        index: usize,
    },
    /// A TAM width of zero was requested; at least one wire is required.
    ZeroWidth,
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapperError::EmptyCore => {
                write!(f, "core has no terminals, scan chains, or patterns to test")
            }
            WrapperError::ZeroLengthScanChain { index } => {
                write!(f, "scan chain {index} has length zero")
            }
            WrapperError::ZeroWidth => write!(f, "TAM width must be at least one wire"),
        }
    }
}

impl Error for WrapperError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_unpunctuated() {
        for err in [
            WrapperError::EmptyCore,
            WrapperError::ZeroLengthScanChain { index: 3 },
            WrapperError::ZeroWidth,
        ] {
            let msg = err.to_string();
            // Lowercase first letter unless it begins with an acronym.
            let first_word = msg.split(' ').next().unwrap();
            let acronym = first_word.chars().all(|c| c.is_uppercase());
            assert!(
                acronym || msg.chars().next().unwrap().is_lowercase(),
                "{msg}"
            );
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WrapperError>();
    }
}
