//! Hot-path unit tests for `RectangleSet`'s Pareto-width construction —
//! the per-core menu every schedule run is built from.

use soctam_wrapper::{CoreTest, Cycles, RectangleSet, TamWidth};

/// A mid-size scan core shaped like d695's larger members (many chains,
/// hundreds of patterns).
fn scan_core() -> CoreTest {
    CoreTest::builder()
        .inputs(165)
        .outputs(105)
        .scan_chains([520, 510, 480, 460, 410, 390, 380, 350, 120, 110, 80, 44])
        .patterns(234)
        .build()
        .expect("valid core")
}

#[test]
fn pareto_set_matches_brute_force_staircase() {
    let core = scan_core();
    let set = RectangleSet::build(&core, 64);
    // Brute force: a width is Pareto-optimal iff its best time beats every
    // narrower width's best time.
    let mut expect: Vec<TamWidth> = vec![1];
    for w in 2..=64u16 {
        if set.time_at(w) < set.time_at(w - 1) {
            expect.push(w);
        }
    }
    assert_eq!(set.pareto_widths(), expect);
}

#[test]
fn pareto_times_strictly_decrease() {
    let set = RectangleSet::build(&scan_core(), 64);
    let mut last: Option<Cycles> = None;
    for p in set.pareto() {
        if let Some(prev) = last {
            assert!(p.time < prev, "width {} did not improve", p.width);
        }
        last = Some(p.time);
    }
}

#[test]
fn effective_width_is_the_pareto_width_at_or_below() {
    let set = RectangleSet::build(&scan_core(), 64);
    for w in 1..=64u16 {
        let r = set.rect_at(w);
        assert_eq!(
            Some(r.effective_width),
            set.highest_pareto_width_at_most(w),
            "width {w}"
        );
        assert_eq!(set.time_at(r.effective_width), r.time);
    }
}

#[test]
fn min_area_never_exceeds_any_rectangle() {
    let set = RectangleSet::build(&scan_core(), 64);
    let min = set.min_area();
    for w in 1..=64u16 {
        assert!(min <= set.rect_at(w).area(), "width {w}");
    }
}

#[test]
fn preferred_width_is_minimal_within_percent() {
    let set = RectangleSet::build(&scan_core(), 48);
    for m in [1u32, 3, 7, 15, 40] {
        let pref = set.preferred_width(m);
        // Within m% of the minimum time...
        assert!(set.time_at(pref) as u128 * 100 <= set.min_time() as u128 * (100 + u128::from(m)));
        // ...and no narrower width qualifies.
        if pref > 1 {
            assert!(
                set.time_at(pref - 1) as u128 * 100
                    > set.min_time() as u128 * (100 + u128::from(m))
            );
        }
    }
}

#[test]
fn bump_rule_only_jumps_to_highest_pareto_width() {
    let set = RectangleSet::build(&scan_core(), 64);
    let hi = set.highest_pareto_width();
    for m in [1u32, 5, 20] {
        let pref = set.preferred_width(m);
        for d in 0..=16u16 {
            let bumped = set.preferred_width_bumped(m, d);
            if hi > pref && hi - pref <= d {
                assert_eq!(bumped, hi, "m={m} d={d}");
            } else {
                assert_eq!(bumped, pref, "m={m} d={d}");
            }
        }
    }
}

#[test]
fn single_chain_core_has_tiny_pareto_front() {
    // One long chain dominates: nothing improves once both scan paths are
    // chain-bound, so the Pareto front stays small and flat thereafter.
    let core = CoreTest::new(4, 4, 0, vec![300], 20).expect("valid core");
    let set = RectangleSet::build(&core, 64);
    assert!(set.highest_pareto_width() <= 3);
    assert_eq!(set.time_at(set.highest_pareto_width()), set.min_time());
}

#[test]
fn combinational_core_pareto_front_tracks_terminal_ceilings() {
    // No scan chains: time depends only on ceil(io/w), so the staircase
    // drops exactly where those ceilings drop.
    let core = CoreTest::new(24, 24, 0, vec![], 10).expect("valid core");
    let set = RectangleSet::build(&core, 32);
    for &w in &set.pareto_widths()[1..] {
        assert!(set.time_at(w) < set.time_at(w - 1));
    }
    assert_eq!(set.time_at(24), set.time_at(32));
}
