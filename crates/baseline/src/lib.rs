//! # soctam-baseline
//!
//! Baseline comparators for the DAC 2002 scheduler:
//!
//! * [`fixed_width_best`] — the *fixed-width TAM architecture* of the
//!   paper's predecessors \[12, 13\]: the SOC TAM is statically partitioned
//!   into a small number of buses, each core rides exactly one bus, and
//!   cores sharing a bus test serially. The partition and the assignment
//!   are optimized exhaustively/greedily here, so the comparison flatters
//!   the baseline.
//! * [`shelf_pack`] — level-oriented (shelf) rectangle packing after
//!   Coffman et al. \[8\]: cores are sorted by width and stacked into
//!   full-width shelves; each shelf lasts as long as its longest test.
//! * [`session_schedule`] — classic *test sessions*: tests grouped so each
//!   session starts together and lasts until its slowest member ends, with
//!   the session count optimized and wires dealt to the gating test.
//!
//! Both baselines ignore precedence/power constraints (as the originals
//! did); compare them on constraint-free instances.
//!
//! Every entry point takes a precompiled
//! [`CompiledSoc`](soctam_schedule::CompiledSoc), so comparison sweeps
//! share one rectangle-menu build with the main scheduler instead of
//! rebuilding per evaluation. The context is lifetime-free (it owns its
//! SOC), so baseline evaluations can also run against registry-cached
//! contexts (`soctam_schedule::ContextRegistry`) shared across whole
//! request batches and threads.
//!
//! # Example
//!
//! ```
//! use soctam_baseline::{fixed_width_best, shelf_pack};
//! use soctam_schedule::{schedule_best, CompiledSoc, SchedulerConfig};
//! use soctam_soc::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = benchmarks::d695();
//! let ctx = CompiledSoc::compile(&soc, 64);
//! let (flexible, _, _) = schedule_best(&soc, &SchedulerConfig::new(64), 1..=10, 0..=4)?;
//! let fixed = fixed_width_best(&ctx, 64, 3);
//! let shelf = shelf_pack(&ctx, 64, 5, 1);
//! // The paper's claim: at wide TAMs, flexible-width packing beats static
//! // partitions (wire fragmentation) and level-oriented shelves.
//! assert!(flexible.makespan() <= fixed.makespan);
//! assert!(flexible.makespan() <= shelf.makespan);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fixed_width;
mod session;
mod shelf;

pub use fixed_width::{fixed_width_best, FixedWidthResult};
pub use session::{session_schedule, SessionResult};
pub use shelf::{shelf_pack, ShelfResult};
