//! Level-oriented (shelf) rectangle packing, after Coffman et al. \[8\].

use soctam_schedule::{CompiledSoc, Schedule, Slice};
use soctam_soc::CoreIdx;
use soctam_wrapper::{Cycles, TamWidth};

/// Outcome of the shelf-packing baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShelfResult {
    /// SOC testing time: the sum of shelf durations.
    pub makespan: Cycles,
    /// Cores grouped per shelf, in packing order.
    pub shelves: Vec<Vec<CoreIdx>>,
    /// The realized schedule.
    pub schedule: Schedule,
}

/// Packs every core's preferred-width rectangle into full-width shelves.
///
/// Rectangles (height = preferred TAM width computed with the same
/// `percent`/`bump` rule as the main scheduler) are sorted by decreasing
/// height and placed first-fit into shelves of total height `w`; a shelf
/// lasts as long as its longest test, and shelves run back to back. This is
/// the classic level-oriented discipline: simple, but every shelf pays for
/// its tallest *and* longest member, which is exactly the idle time the
/// paper's flexible packer reclaims.
///
/// Per-core widths are capped at the context's `w_max`; the rectangle
/// menus come from the shared [`CompiledSoc`].
///
/// # Panics
///
/// Panics if `w == 0` or the SOC is empty.
pub fn shelf_pack(ctx: &CompiledSoc, w: TamWidth, percent: u32, bump: TamWidth) -> ShelfResult {
    assert!(w > 0, "need at least one wire");
    assert!(!ctx.is_empty(), "SOC has no cores");

    let soc = ctx.soc();
    let menus = ctx.menus_at(ctx.effective_cap(w));
    let prefs: Vec<(TamWidth, Cycles)> = menus
        .menus()
        .iter()
        .map(|rects| {
            let width = rects.preferred_width_bumped(percent, bump);
            (width, rects.time_at(width))
        })
        .collect();

    // Decreasing height, then decreasing time, then index (deterministic).
    let mut order: Vec<CoreIdx> = (0..prefs.len()).collect();
    order.sort_by(|&a, &b| {
        prefs[b]
            .0
            .cmp(&prefs[a].0)
            .then(prefs[b].1.cmp(&prefs[a].1))
            .then(a.cmp(&b))
    });

    let mut shelves: Vec<Vec<CoreIdx>> = Vec::new();
    let mut shelf_width: Vec<TamWidth> = Vec::new();
    for core in order {
        let need = prefs[core].0;
        // First fit over existing shelves.
        let slot = shelf_width.iter().position(|&used| used + need <= w);
        match slot {
            Some(s) => {
                shelves[s].push(core);
                shelf_width[s] += need;
            }
            None => {
                shelves.push(vec![core]);
                shelf_width.push(need);
            }
        }
    }

    let mut slices = Vec::with_capacity(prefs.len());
    let mut start = 0u64;
    for shelf in &shelves {
        let duration = shelf
            .iter()
            .map(|&c| prefs[c].1)
            .max()
            .expect("shelves are non-empty");
        for &core in shelf {
            slices.push(Slice {
                core,
                width: prefs[core].0,
                start,
                end: start + prefs[core].1,
            });
        }
        start += duration;
    }

    let schedule = Schedule::from_slices(soc.name(), w, slices);
    ShelfResult {
        makespan: start,
        shelves,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::{ScheduleBuilder, SchedulerConfig};
    use soctam_soc::benchmarks;

    #[test]
    fn every_core_lands_on_exactly_one_shelf() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = shelf_pack(&ctx, 32, 5, 1);
        let mut all: Vec<CoreIdx> = r.shelves.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..soc.len()).collect::<Vec<_>>());
    }

    #[test]
    fn width_budget_respected_within_shelves() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = shelf_pack(&ctx, 24, 5, 1);
        let mut events: Vec<u64> = r
            .schedule
            .slices()
            .iter()
            .flat_map(|s| [s.start, s.end])
            .collect();
        events.sort_unstable();
        events.dedup();
        for &t in &events {
            assert!(r.schedule.width_in_use_at(t) <= 24);
        }
    }

    #[test]
    fn makespan_is_sum_of_shelf_durations() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = shelf_pack(&ctx, 16, 5, 1);
        assert_eq!(r.schedule.makespan(), r.makespan);
    }

    #[test]
    fn flexible_scheduler_beats_shelves() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        for w in [16u16, 32, 64] {
            let flexible = ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
                .run()
                .unwrap()
                .makespan();
            let shelf = shelf_pack(&ctx, w, 5, 1).makespan;
            assert!(flexible <= shelf, "W={w}: {flexible} vs shelf {shelf}");
        }
    }

    #[test]
    fn narrow_tam_degenerates_to_serial_shelves() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = shelf_pack(&ctx, 1, 5, 1);
        assert_eq!(r.shelves.len(), soc.len());
    }
}
