//! Fixed-width TAM architectures (the \[12, 13\] baseline).

use soctam_schedule::{CompiledSoc, Schedule, Slice};
use soctam_soc::Soc;
use soctam_wrapper::{Cycles, RectangleSet, TamWidth};

/// Outcome of the fixed-width baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedWidthResult {
    /// SOC testing time of the best architecture found.
    pub makespan: Cycles,
    /// The winning bus widths (non-increasing, sums to `W`).
    pub partition: Vec<TamWidth>,
    /// For each core, the index of the bus it rides.
    pub assignment: Vec<usize>,
    /// The serialized schedule realizing `makespan`.
    pub schedule: Schedule,
}

/// Finds the best fixed-width TAM architecture with at most `max_tams`
/// buses: enumerates every partition of `w` into at most `max_tams`
/// positive parts and assigns cores greedily (longest test first, onto the
/// bus finishing earliest).
///
/// Per-core widths are capped at the context's `w_max` like the main
/// scheduler; the per-core rectangle menus come from the shared
/// [`CompiledSoc`], so sweeping many widths and architectures rebuilds
/// nothing.
///
/// # Panics
///
/// Panics if `w == 0`, `max_tams == 0`, or the SOC is empty.
pub fn fixed_width_best(ctx: &CompiledSoc, w: TamWidth, max_tams: usize) -> FixedWidthResult {
    assert!(w > 0, "need at least one wire");
    assert!(max_tams > 0, "need at least one TAM");
    assert!(!ctx.is_empty(), "SOC has no cores");

    let soc = ctx.soc();
    let menus = ctx.menus_at(ctx.effective_cap(w));
    let rects = menus.menus();

    // Core order for the greedy assignment: longest test (at full width)
    // first — the LPT rule.
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(rects[i].min_time()));

    let mut best: Option<FixedWidthResult> = None;
    let mut partition = Vec::new();
    enumerate_partitions(w, max_tams, w, &mut partition, &mut |parts| {
        let (makespan, assignment) = evaluate(parts, &order, rects);
        if best.as_ref().is_none_or(|b| makespan < b.makespan) {
            best = Some(FixedWidthResult {
                makespan,
                partition: parts.to_vec(),
                assignment,
                schedule: Schedule::from_slices("", 0, Vec::new()), // filled below
            });
        }
    });

    let mut result = best.expect("at least the single-bus partition exists");
    result.schedule = realize(soc, w, &result.partition, &result.assignment, rects);
    result
}

/// Calls `f` with every non-increasing sequence of positive widths that
/// sums to `remaining` and has at most `slots` entries, each at most `cap`.
fn enumerate_partitions(
    remaining: TamWidth,
    slots: usize,
    cap: TamWidth,
    prefix: &mut Vec<TamWidth>,
    f: &mut impl FnMut(&[TamWidth]),
) {
    if remaining == 0 {
        f(prefix);
        return;
    }
    if slots == 0 {
        return;
    }
    let hi = cap.min(remaining);
    // A feasibility cut: the largest `slots` parts of size `hi` must cover
    // `remaining`.
    for part in (1..=hi).rev() {
        let coverage = u32::from(part) * slots as u32;
        if coverage < u32::from(remaining) {
            break;
        }
        prefix.push(part);
        enumerate_partitions(remaining - part, slots - 1, part, prefix, f);
        prefix.pop();
    }
}

/// Greedy LPT assignment of cores to buses; returns (makespan, core→bus).
fn evaluate(parts: &[TamWidth], order: &[usize], rects: &[RectangleSet]) -> (Cycles, Vec<usize>) {
    let mut load = vec![0u64; parts.len()];
    let mut assignment = vec![0usize; rects.len()];
    for &core in order {
        let mut best_bus = 0;
        let mut best_end = u64::MAX;
        for (b, &width) in parts.iter().enumerate() {
            let end = load[b] + rects[core].time_at(width);
            if end < best_end {
                best_end = end;
                best_bus = b;
            }
        }
        load[best_bus] += rects[core].time_at(parts[best_bus]);
        assignment[core] = best_bus;
    }
    (load.into_iter().max().unwrap_or(0), assignment)
}

/// Materializes the serialized schedule of a fixed architecture.
fn realize(
    soc: &Soc,
    w: TamWidth,
    parts: &[TamWidth],
    assignment: &[usize],
    rects: &[RectangleSet],
) -> Schedule {
    let mut cursor = vec![0u64; parts.len()];
    let mut slices = Vec::with_capacity(assignment.len());
    for (core, &bus) in assignment.iter().enumerate() {
        let t = rects[core].time_at(parts[bus]);
        slices.push(Slice {
            core,
            width: parts[bus],
            start: cursor[bus],
            end: cursor[bus] + t,
        });
        cursor[bus] += t;
    }
    Schedule::from_slices(soc.name(), w, slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::validate::validate;
    use soctam_schedule::SchedulerConfig;
    use soctam_soc::benchmarks;

    #[test]
    fn partitions_enumerated_correctly() {
        let mut seen = Vec::new();
        let mut prefix = Vec::new();
        enumerate_partitions(5, 2, 5, &mut prefix, &mut |p| seen.push(p.to_vec()));
        seen.sort();
        assert_eq!(seen, vec![vec![3, 2], vec![4, 1], vec![5]]);
    }

    #[test]
    fn single_bus_serializes_everything() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = fixed_width_best(&ctx, 16, 1);
        assert_eq!(r.partition, vec![16]);
        let serial: u64 = soc
            .cores()
            .iter()
            .map(|c| RectangleSet::build(c.test(), 16).time_at(16))
            .sum();
        assert_eq!(r.makespan, serial);
    }

    #[test]
    fn more_buses_never_hurt() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let one = fixed_width_best(&ctx, 32, 1).makespan;
        let two = fixed_width_best(&ctx, 32, 2).makespan;
        let three = fixed_width_best(&ctx, 32, 3).makespan;
        assert!(two <= one);
        assert!(three <= two);
    }

    #[test]
    fn schedule_realization_is_valid() {
        let soc = benchmarks::d695(); // no explicit constraints
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = fixed_width_best(&ctx, 32, 3);
        assert_eq!(r.schedule.makespan(), r.makespan);
        validate(&soc, &r.schedule).unwrap();
    }

    fn flexible_best(soc: &soctam_soc::Soc, w: u16) -> u64 {
        // Extended m sweep plus two idle-fill slack settings, mirroring the
        // headline experiment configuration.
        let ms: Vec<u32> = (1..=10).chain([15, 22, 30, 45, 60]).collect();
        [3u16, 8]
            .iter()
            .map(|&slack| {
                let mut base = SchedulerConfig::new(w);
                base.idle_fill_slack = slack;
                soctam_schedule::schedule_best(soc, &base, ms.clone(), 0..=4)
                    .unwrap()
                    .0
                    .makespan()
            })
            .min()
            .unwrap()
    }

    #[test]
    fn flexible_scheduler_beats_fixed_width_at_wide_tams() {
        // The paper's §2 claim: static partitions waste TAM wires. The
        // effect dominates at wide TAMs; at narrow widths an *exhaustively*
        // optimized static partition (which flatters the baseline far
        // beyond [12, 13]) can be competitive, so there we only require
        // the flexible result to stay within 3%.
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        for w in [48u16, 64] {
            let flexible = flexible_best(&soc, w);
            let fixed = fixed_width_best(&ctx, w, 3).makespan;
            assert!(
                flexible <= fixed,
                "W={w}: flexible {flexible} vs fixed {fixed}"
            );
        }
        for w in [16u16, 32] {
            let flexible = flexible_best(&soc, w);
            // Two-bus architectures (the scale [12, 13] actually explored
            // for narrow TAMs) lose to flexible packing everywhere...
            let fixed2 = fixed_width_best(&ctx, w, 2).makespan;
            assert!(
                flexible <= fixed2,
                "W={w}: flexible {flexible} vs 2-bus {fixed2}"
            );
            // ...while a fully exhaustive 3-bus search stays within 10%.
            let fixed3 = fixed_width_best(&ctx, w, 3).makespan;
            assert!(
                flexible as f64 <= fixed3 as f64 * 1.10,
                "W={w}: flexible {flexible} not within 10% of 3-bus {fixed3}"
            );
        }
    }

    #[test]
    fn assignment_is_consistent() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = fixed_width_best(&ctx, 24, 2);
        assert_eq!(r.assignment.len(), soc.len());
        for &bus in &r.assignment {
            assert!(bus < r.partition.len());
        }
        let total: u16 = r.partition.iter().sum();
        assert_eq!(total, 24);
    }
}
