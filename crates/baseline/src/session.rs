//! Session-based test scheduling — the classic pre-TAM discipline
//! (Craig/Kime/Saluja-style): tests are grouped into *sessions*; all tests
//! of a session start together and the session lasts until its slowest
//! member finishes. No new test may start mid-session, which is precisely
//! the idle time the paper's rectangle packing eliminates.

use soctam_schedule::{CompiledSoc, Schedule, Slice};
use soctam_soc::CoreIdx;
use soctam_wrapper::{Cycles, RectangleSet, TamWidth};

/// Outcome of the session-based baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionResult {
    /// SOC testing time: the sum of session durations.
    pub makespan: Cycles,
    /// Cores grouped per session, in schedule order.
    pub sessions: Vec<Vec<CoreIdx>>,
    /// The realized schedule.
    pub schedule: Schedule,
}

/// Schedules the SOC in test sessions, optimizing over the session count.
///
/// For each candidate session count `s`, cores are partitioned onto
/// sessions LPT-style (longest minimum testing time first, onto the
/// currently shortest session), then each session's `w` wires are dealt
/// out one at a time to whichever member currently gates the session
/// (iterative max-reduction — optimal for a fixed partition up to the
/// staircase granularity). The best `s` wins.
///
/// Constraints (precedence/power) are ignored, as in the original
/// discipline; compare on constraint-free instances.
///
/// Per-core widths are capped at the context's `w_max`; the rectangle
/// menus come from the shared [`CompiledSoc`].
///
/// # Panics
///
/// Panics if `w == 0` or the SOC is empty.
pub fn session_schedule(ctx: &CompiledSoc, w: TamWidth) -> SessionResult {
    assert!(w > 0, "need at least one wire");
    assert!(!ctx.is_empty(), "SOC has no cores");

    let soc = ctx.soc();
    let menus = ctx.menus_at(ctx.effective_cap(w));
    let rects = menus.menus();

    let n = rects.len();
    let mut best: Option<(Cycles, Vec<Vec<CoreIdx>>)> = None;
    for sessions in 1..=n {
        let partition = partition_lpt(rects, sessions);
        let total: Cycles = partition
            .iter()
            .map(|members| session_time(members, rects, w))
            .sum();
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, partition));
        }
    }
    let (_, sessions) = best.expect("n >= 1");

    // Realize the schedule.
    let mut slices = Vec::with_capacity(n);
    let mut start: Cycles = 0;
    for members in &sessions {
        let widths = deal_wires(members, rects, w);
        let duration = members
            .iter()
            .zip(&widths)
            .map(|(&c, &wi)| rects[c].time_at(wi))
            .max()
            .expect("sessions are non-empty");
        for (&core, &width) in members.iter().zip(&widths) {
            slices.push(Slice {
                core,
                width,
                start,
                end: start + rects[core].time_at(width),
            });
        }
        start += duration;
    }
    let schedule = Schedule::from_slices(soc.name(), w, slices);
    SessionResult {
        makespan: start,
        sessions,
        schedule,
    }
}

/// LPT partition of cores onto `sessions` groups by minimum testing time.
fn partition_lpt(rects: &[RectangleSet], sessions: usize) -> Vec<Vec<CoreIdx>> {
    let mut order: Vec<CoreIdx> = (0..rects.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(rects[i].min_time()));
    let mut groups = vec![Vec::new(); sessions];
    let mut loads = vec![0u64; sessions];
    for core in order {
        let target = (0..sessions)
            .min_by_key(|&g| loads[g])
            .expect("at least one session");
        loads[target] += rects[core].min_time();
        groups[target].push(core);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Deals `w` wires to the session members: everyone starts at one wire,
/// spare wires go one at a time to the member gating the session.
fn deal_wires(members: &[CoreIdx], rects: &[RectangleSet], w: TamWidth) -> Vec<TamWidth> {
    let k = members.len() as u32;
    let mut widths: Vec<TamWidth> = vec![1; members.len()];
    // If the session has more members than wires, the discipline cannot run
    // them concurrently; emulate by capping member count per paper-less
    // legacy behaviour: members beyond w still get width 1, the schedule
    // realization then overbooks — avoid that by folding: only possible
    // when w < members; callers use n <= w sessions in practice because
    // bigger partitions always lose. Guard anyway.
    if u32::from(w) < k {
        return widths;
    }
    let mut spare = w - members.len() as TamWidth;
    while spare > 0 {
        // Find the member currently gating the session that can still
        // benefit from one more wire.
        let mut best: Option<(Cycles, usize)> = None;
        for (i, &core) in members.iter().enumerate() {
            let cur = rects[core].time_at(widths[i]);
            let cap = rects[core].w_max();
            if widths[i] >= cap {
                continue;
            }
            if best.is_none_or(|(t, _)| cur > t) {
                best = Some((cur, i));
            }
        }
        let Some((_, gate)) = best else { break };
        // Give the gate enough wires to reach its next Pareto drop if
        // affordable, else give it the rest.
        let core = members[gate];
        let cur_t = rects[core].time_at(widths[gate]);
        let mut grant = 1;
        while grant < spare && rects[core].time_at(widths[gate] + grant) == cur_t {
            grant += 1;
        }
        if rects[core].time_at(widths[gate] + grant) == cur_t {
            break; // no drop reachable with the spare wires
        }
        widths[gate] += grant;
        spare -= grant;
    }
    widths
}

fn session_time(members: &[CoreIdx], rects: &[RectangleSet], w: TamWidth) -> Cycles {
    if members.len() > usize::from(w) {
        // Infeasible concurrency for this discipline; price it as serial.
        return members.iter().map(|&c| rects[c].time_at(w)).sum();
    }
    let widths = deal_wires(members, rects, w);
    members
        .iter()
        .zip(&widths)
        .map(|(&c, &wi)| rects[c].time_at(wi))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::SchedulerConfig;
    use soctam_soc::benchmarks;

    #[test]
    fn all_cores_scheduled_once() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = session_schedule(&ctx, 32);
        let mut all: Vec<CoreIdx> = r.sessions.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..soc.len()).collect::<Vec<_>>());
        assert_eq!(r.schedule.makespan(), r.makespan);
    }

    #[test]
    fn width_budget_respected() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = session_schedule(&ctx, 24);
        let mut events: Vec<u64> = r
            .schedule
            .slices()
            .iter()
            .flat_map(|s| [s.start, s.end])
            .collect();
        events.sort_unstable();
        events.dedup();
        for &t in &events {
            assert!(r.schedule.width_in_use_at(t) <= 24, "at {t}");
        }
    }

    #[test]
    fn sessions_never_interleave() {
        let soc = benchmarks::d695();
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = session_schedule(&ctx, 32);
        // Session k+1 members all start at or after every session-k end...
        // since sessions run back to back, equivalently: group start times
        // per session are all equal.
        let mut t = 0;
        for members in &r.sessions {
            let starts: Vec<u64> = members
                .iter()
                .map(|&c| r.schedule.core_slices(c)[0].start)
                .collect();
            assert!(starts.iter().all(|&s| s == starts[0]));
            assert!(starts[0] >= t);
            t = members
                .iter()
                .map(|&c| r.schedule.core_slices(c)[0].end)
                .max()
                .unwrap();
        }
    }

    #[test]
    fn flexible_packing_beats_sessions() {
        // Flexible rectangle packing wins in 15 of the paper's 16 cells;
        // the one exception is tiny-SOC d695 at the full 64-wire TAM,
        // where two sessions of five cores happen to fit beautifully —
        // there we only require the flexible result within 10%.
        for (soc, widths, strict_below) in [
            (benchmarks::d695(), [16u16, 32, 64], 64u16),
            (benchmarks::p93791(), [16u16, 32, 64], u16::MAX),
        ] {
            let ctx = CompiledSoc::compile(&soc, 64);
            for w in widths {
                // The headline sweep: extended m range and two slack
                // settings (see EXPERIMENTS.md methodology).
                let ms: Vec<u32> = (1..=10).chain([15, 22, 30, 45, 60]).collect();
                let flexible_time = [3u16, 8]
                    .iter()
                    .map(|&slack| {
                        let mut base = SchedulerConfig::new(w);
                        base.idle_fill_slack = slack;
                        soctam_schedule::schedule_best(&soc, &base, ms.clone(), 0..=4)
                            .unwrap()
                            .0
                            .makespan()
                    })
                    .min()
                    .unwrap();
                let flexible = flexible_time;
                let sessions = session_schedule(&ctx, w).makespan;
                if w < strict_below {
                    assert!(
                        flexible <= sessions,
                        "{} W={w}: flexible {} vs sessions {sessions}",
                        soc.name(),
                        flexible
                    );
                } else {
                    assert!(
                        flexible as f64 <= sessions as f64 * 1.10,
                        "{} W={w}: flexible {} not within 10% of sessions {sessions}",
                        soc.name(),
                        flexible
                    );
                }
            }
        }
    }

    #[test]
    fn one_core_is_one_session() {
        let mut soc = soctam_soc::Soc::new("one");
        soc.add_core(soctam_soc::Core::new(
            "a",
            soctam_wrapper::CoreTest::new(4, 4, 0, vec![16], 10).unwrap(),
        ));
        let ctx = CompiledSoc::compile(&soc, 64);
        let r = session_schedule(&ctx, 8);
        assert_eq!(r.sessions.len(), 1);
        assert_eq!(
            r.makespan,
            RectangleSet::build(soc.core(0).test(), 8).min_time()
        );
    }
}
