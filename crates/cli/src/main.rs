//! `soctam` — command-line driver for the SOC test automation framework.
//!
//! ```text
//! soctam schedule <soc> --width W [--power] [--no-preempt] [--gantt] [--svg FILE]
//! soctam sweep <soc> [--from A] [--to B] [--alpha X]
//! soctam batch <requests.txt> [--threads N] [--out FILE]
//! soctam staircase <soc> <core>
//! soctam wrapper <soc> <core> --width W
//! soctam bounds <soc>
//! soctam parse <file.soc>
//! soctam list
//! ```
//!
//! `<soc>` is a benchmark name (`d695`, `p22810`, `p34392`, `p93791`) or a
//! path to an ITC'02-style `.soc` file.
//!
//! `batch` reads a request list (one request per line, `#` comments
//! allowed) and serves it concurrently through the [`Engine`] and its
//! shared context registry, emitting a JSON report:
//!
//! ```text
//! schedule d695 --width 16 [--power] [--no-preempt]
//! sweep p34392 --from 16 --to 32
//! bounds p93791 [--widths 16,32,48,64]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use soctam_core::engine::{Engine, EngineOp, EngineOutput, EngineRequest, EngineResult};
use soctam_core::flow::{FlowConfig, ParamSweep, PowerPolicy, TestFlow};
use soctam_core::report;
use soctam_core::schedule::CompiledSoc;
use soctam_core::soc::{benchmarks, itc02, Soc};
use soctam_core::volume::CostCurve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  soctam schedule <soc> --width W [--power] [--no-preempt] [--gantt] [--svg FILE]
  soctam sweep <soc> [--from A] [--to B] [--alpha X]
  soctam batch <requests.txt> [--threads N] [--out FILE]
  soctam staircase <soc> <core-name>
  soctam wrapper <soc> <core-name> --width W
  soctam bounds <soc>
  soctam parse <file.soc>
  soctam list";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("staircase") => cmd_staircase(&args[1..]),
        Some("wrapper") => cmd_wrapper(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("parse") => cmd_parse(&args[1..]),
        Some("list") => cmd_list(),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".to_owned()),
    }
}

fn load_soc(name: &str) -> Result<Soc, String> {
    if let Some(soc) = benchmarks::by_name(name) {
        return Ok(soc);
    }
    let text = std::fs::read_to_string(name)
        .map_err(|e| format!("`{name}` is not a benchmark name and reading it failed: {e}"))?;
    // Auto-detect the classic ITC'02 layout (keyword-per-line, starts with
    // `SocName`) vs. this crate's compact dialect.
    let classic = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim().to_ascii_lowercase().starts_with("socname"));
    let parsed = if classic {
        itc02::parse_classic(&text)
    } else {
        itc02::parse(&text)
    };
    parsed.map_err(|e| format!("parsing `{name}`: {e}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Looks up the value of a `--flag value` option. Present-but-valueless
/// options are an error — including the easy-to-make mistake of following
/// one flag directly with another (`--width --power`), which would
/// otherwise be swallowed as the value and produce a baffling parse
/// failure downstream.
fn opt_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    match args.get(i + 1).map(String::as_str) {
        None => Err(format!("option `{name}` expects a value")),
        Some(v) if v.starts_with("--") => Err(format!(
            "option `{name}` expects a value, but found the flag `{v}`"
        )),
        Some(v) => Ok(Some(v)),
    }
}

/// [`opt_value`] for mandatory options.
fn req_value<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    opt_value(args, name)?.ok_or_else(|| format!("missing {name}"))
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let width: u16 = req_value(args, "--width")?
        .parse()
        .map_err(|_| "invalid --width")?;

    let mut cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    if flag(args, "--power") {
        cfg = cfg.with_power(PowerPolicy::MaxCorePower);
    }
    if flag(args, "--no-preempt") {
        cfg = cfg.without_preemption();
    }
    let run = TestFlow::new(&soc, cfg)
        .run(width)
        .map_err(|e| e.to_string())?;
    println!(
        "{}: W={width}, testing time {} cycles (lower bound {}), volume {} bits, \
         utilization {:.1}%, params (m={}, d={}, slack={})",
        soc.name(),
        run.schedule.makespan(),
        run.lower_bound,
        run.volume,
        run.schedule.utilization() * 100.0,
        run.params.0,
        run.params.1,
        run.params.2,
    );
    println!(
        "sweep: {} of {} grid points run ({} deduplicated)",
        run.sweep.runs_executed, run.sweep.runs_total, run.sweep.runs_skipped,
    );
    if flag(args, "--gantt") {
        println!();
        println!(
            "{}",
            run.schedule.gantt(&|i| soc.core(i).name().to_string(), 90)
        );
    }
    if let Some(path) = opt_value(args, "--svg")? {
        let svg = run.schedule.to_svg(
            &|i| soc.core(i).name().to_string(),
            soctam_core::schedule::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("writing `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let from: u16 = opt_value(args, "--from")?
        .unwrap_or("8")
        .parse()
        .map_err(|_| "invalid --from")?;
    let to: u16 = opt_value(args, "--to")?
        .unwrap_or("64")
        .parse()
        .map_err(|_| "invalid --to")?;
    let alpha: f64 = opt_value(args, "--alpha")?
        .unwrap_or("0.5")
        .parse()
        .map_err(|_| "invalid --alpha")?;
    if from == 0 || from > to {
        return Err("need 0 < --from <= --to".to_owned());
    }

    let cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    let pts = TestFlow::new(&soc, cfg)
        .sweep_widths(from..=to)
        .map_err(|e| e.to_string())?;
    let curve = CostCurve::new(&pts, alpha);
    println!(
        "{:>4} {:>12} {:>14} {:>10}",
        "W", "T (cycles)", "V (bits)", "C"
    );
    for (p, c) in pts.iter().zip(curve.points()) {
        println!(
            "{:>4} {:>12} {:>14} {:>10.4}",
            p.width, p.time, p.volume, c.cost
        );
    }
    let eff = curve.effective_point();
    println!(
        "effective width for alpha={alpha}: W_eff={} (C_min={:.4}, T={}, V={})",
        eff.width, eff.cost, eff.time, eff.volume
    );
    Ok(())
}

/// The flow configuration every batch request uses (the CLI's quick
/// parameter sweep), specialized by the request's flags.
fn batch_flow(power: bool, no_preempt: bool) -> FlowConfig {
    let mut cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    if power {
        cfg = cfg.with_power(PowerPolicy::MaxCorePower);
    }
    if no_preempt {
        cfg = cfg.without_preemption();
    }
    cfg
}

/// Rejects any token the request kind does not understand: a misspelled
/// mode flag (`--no-premept`) must fail the parse, not silently run the
/// request in the wrong mode and report it `ok`.
fn check_known_args(args: &[String], value_options: &[&str], flags: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let tok = args[i].as_str();
        if value_options.contains(&tok) {
            i += 2; // the option plus its value (presence checked elsewhere)
        } else if flags.contains(&tok) {
            i += 1;
        } else {
            return Err(format!("unknown argument `{tok}`"));
        }
    }
    Ok(())
}

/// Parses one non-comment line of a batch request file. `socs` memoizes
/// loads, so a thousand requests over one `.soc` file read and parse it
/// once and share one `Arc<Soc>`.
fn parse_batch_line(
    line: &str,
    socs: &mut std::collections::HashMap<String, Arc<Soc>>,
) -> Result<EngineRequest, String> {
    let words: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
    let (kind, rest) = words.split_first().ok_or("empty request")?;
    let soc_name = rest.first().ok_or("missing SOC name")?;
    let soc = match socs.get(soc_name.as_str()) {
        Some(soc) => Arc::clone(soc),
        None => {
            let soc = Arc::new(load_soc(soc_name)?);
            socs.insert(soc_name.clone(), Arc::clone(&soc));
            soc
        }
    };
    let args = &rest[1..];
    let value_options: &[&str] = match kind.as_str() {
        "schedule" => &["--width"],
        "sweep" => &["--from", "--to"],
        "bounds" => &["--widths"],
        other => return Err(format!("unknown request kind `{other}`")),
    };
    check_known_args(args, value_options, &["--power", "--no-preempt"])?;
    let flow = batch_flow(flag(args, "--power"), flag(args, "--no-preempt"));
    let op = match kind.as_str() {
        "schedule" => EngineOp::Schedule {
            width: req_value(args, "--width")?
                .parse()
                .map_err(|_| "invalid --width".to_owned())?,
        },
        "sweep" => {
            let from: u16 = opt_value(args, "--from")?
                .unwrap_or("16")
                .parse()
                .map_err(|_| "invalid --from")?;
            let to: u16 = opt_value(args, "--to")?
                .unwrap_or("64")
                .parse()
                .map_err(|_| "invalid --to")?;
            if from == 0 || from > to {
                return Err("need 0 < --from <= --to".to_owned());
            }
            EngineOp::Sweep {
                widths: (from..=to).collect(),
            }
        }
        "bounds" => {
            let widths = match opt_value(args, "--widths")? {
                Some(list) => list
                    .split(',')
                    .map(|w| w.trim().parse::<u16>().map_err(|_| "invalid --widths"))
                    .collect::<Result<Vec<_>, _>>()?,
                None => benchmarks::table1_widths(soc.name()).to_vec(),
            };
            EngineOp::Bounds { widths }
        }
        _ => unreachable!("kind validated above"),
    };
    Ok(EngineRequest { soc, flow, op })
}

/// Parses a whole request file: one request per line, blank lines and
/// `#` comments skipped. Errors carry the 1-based line number.
fn parse_batch_file(text: &str) -> Result<Vec<EngineRequest>, String> {
    let mut requests = Vec::new();
    let mut socs = std::collections::HashMap::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        requests
            .push(parse_batch_line(line, &mut socs).map_err(|e| format!("line {}: {e}", no + 1))?);
    }
    if requests.is_empty() {
        return Err("request file contains no requests".to_owned());
    }
    Ok(requests)
}

fn json_request(req: &EngineRequest, result: &EngineResult) -> String {
    let mut out = String::new();
    let (kind, detail) = match &req.op {
        EngineOp::Schedule { width } => ("schedule", format!("\"width\": {width}")),
        EngineOp::Sweep { widths } => (
            "sweep",
            format!(
                "\"from\": {}, \"to\": {}",
                widths.first().copied().unwrap_or(0),
                widths.last().copied().unwrap_or(0)
            ),
        ),
        EngineOp::Bounds { widths } => (
            "bounds",
            format!(
                "\"widths\": [{}]",
                widths
                    .iter()
                    .map(u16::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
    };
    out.push_str(&format!(
        "    {{\"op\": \"{kind}\", \"soc\": \"{}\", {detail}, ",
        req.soc.name().replace(['"', '\\'], "_")
    ));
    match result {
        Err(e) => out.push_str(&format!(
            "\"ok\": false, \"error\": \"{}\"}}",
            e.to_string().replace('\\', "\\\\").replace('"', "\\\"")
        )),
        Ok(EngineOutput::Schedule(run)) => out.push_str(&format!(
            "\"ok\": true, \"makespan\": {}, \"lower_bound\": {}, \"volume\": {}, \
             \"m\": {}, \"d\": {}, \"slack\": {}}}",
            run.schedule.makespan(),
            run.lower_bound,
            run.volume,
            run.params.0,
            run.params.1,
            run.params.2
        )),
        Ok(EngineOutput::Sweep(points)) => {
            out.push_str("\"ok\": true, \"points\": [");
            for (i, p) in points.iter().enumerate() {
                let sep = if i + 1 == points.len() { "" } else { ", " };
                out.push_str(&format!(
                    "{{\"width\": {}, \"time\": {}, \"volume\": {}, \"lower_bound\": {}}}{sep}",
                    p.width, p.time, p.volume, p.lower_bound
                ));
            }
            out.push_str("]}");
        }
        Ok(EngineOutput::Bounds(bounds)) => out.push_str(&format!(
            "\"ok\": true, \"bounds\": [{}]}}",
            bounds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
    out
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing request file")?;
    check_known_args(&args[1..], &["--threads", "--out"], &[])?;
    let threads = opt_value(args, "--threads")?
        .map(|t| t.parse::<usize>().map_err(|_| "invalid --threads"))
        .transpose()?;
    let out = opt_value(args, "--out")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let requests = parse_batch_file(&text)?;
    let mut engine = Engine::new();
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }

    let results = engine.serve(&requests);
    let stats = engine.registry().stats();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"requests\": {},\n", requests.len()));
    json.push_str(&format!(
        "  \"failed\": {},\n",
        results.iter().filter(|r| r.is_err()).count()
    ));
    json.push_str("  \"results\": [\n");
    for (i, (req, result)) in requests.iter().zip(&results).enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&json_request(req, result));
        json.push_str(sep);
        json.push('\n');
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"registry\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"contexts\": {}, \"hit_rate\": {:.4}}}\n",
        stats.hits,
        stats.misses,
        stats.evictions,
        engine.registry().len(),
        stats.hit_rate()
    ));
    json.push_str("}\n");

    match out {
        Some(out) => {
            std::fs::write(out, &json).map_err(|e| format!("writing `{out}`: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn cmd_staircase(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let core_name = args.get(1).ok_or("missing core name")?;
    let soc = load_soc(soc_name)?;
    let idx = soc
        .core_by_name(core_name)
        .ok_or_else(|| format!("no core `{core_name}` in {}", soc.name()))?;
    let s = report::staircase(soc.core(idx).test(), 64);
    println!("{:>4} {:>12} {:>10}", "W", "T (cycles)", "Pareto");
    for p in &s.points {
        let mark = if s.pareto_widths.contains(&p.width) {
            "*"
        } else {
            ""
        };
        println!("{:>4} {:>12} {:>10}", p.width, p.time, mark);
    }
    Ok(())
}

fn cmd_wrapper(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let core_name = args.get(1).ok_or("missing core name")?;
    let width: u16 = req_value(args, "--width")?
        .parse()
        .map_err(|_| "invalid --width")?;
    let soc = load_soc(soc_name)?;
    let idx = soc
        .core_by_name(core_name)
        .ok_or_else(|| format!("no core `{core_name}` in {}", soc.name()))?;
    let layout = soctam_core::wrapper::WrapperLayout::build(soc.core(idx).test(), width)
        .map_err(|e| e.to_string())?;
    print!("{}", layout.render(core_name));
    println!(
        "test time at this width: {} cycles for {} patterns",
        layout.design().test_time(),
        layout.design().patterns()
    );
    Ok(())
}

fn cmd_bounds(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let widths: Vec<u16> = benchmarks::table1_widths(soc.name()).to_vec();
    let lbs = CompiledSoc::compile(&soc, 64).lower_bounds(&widths);
    println!("{}: testing-time lower bounds", soc.name());
    for (w, lb) in widths.iter().zip(lbs) {
        println!("  W={w:>3}: {lb}");
    }
    Ok(())
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing file path")?;
    let soc = load_soc(path)?;
    soc.validate().map_err(|e| e.to_string())?;
    println!(
        "{}: {} cores, {} precedence, {} concurrency constraints, {} total test bits",
        soc.name(),
        soc.len(),
        soc.precedence().len(),
        soc.concurrency().len(),
        soc.total_test_bits()
    );
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        println!("{name}: {} cores", soc.len());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn list_and_bounds_work() {
        assert!(run(&argv(&["list"])).is_ok());
        assert!(run(&argv(&["bounds", "d695"])).is_ok());
    }

    #[test]
    fn schedule_requires_width() {
        assert!(run(&argv(&["schedule", "d695"])).is_err());
        assert!(run(&argv(&["schedule", "d695", "--width", "banana"])).is_err());
    }

    #[test]
    fn staircase_and_wrapper_resolve_cores() {
        assert!(run(&argv(&["staircase", "d695", "s5378"])).is_ok());
        assert!(run(&argv(&["staircase", "d695", "ghost"])).is_err());
        assert!(run(&argv(&["wrapper", "d695", "s5378", "--width", "4"])).is_ok());
        assert!(run(&argv(&["wrapper", "d695", "s5378"])).is_err());
    }

    #[test]
    fn load_soc_rejects_missing_files() {
        assert!(load_soc("no_such_file.soc").is_err());
        assert!(load_soc("d695").is_ok());
    }

    #[test]
    fn load_soc_autodetects_classic_format() {
        let dir = std::env::temp_dir();
        let classic = dir.join("soctam_cli_classic_test.soc");
        std::fs::write(
            &classic,
            "SocName t\nModule 1\nInputs 2\nOutputs 2\nPatterns 5\n",
        )
        .unwrap();
        let soc = load_soc(classic.to_str().unwrap()).unwrap();
        assert_eq!(soc.name(), "t");
        std::fs::remove_file(&classic).ok();

        let dialect = dir.join("soctam_cli_dialect_test.soc");
        std::fs::write(&dialect, "soc t2\ncore a inputs=1 outputs=1 patterns=1\n").unwrap();
        assert_eq!(load_soc(dialect.to_str().unwrap()).unwrap().name(), "t2");
        std::fs::remove_file(&dialect).ok();
    }

    #[test]
    fn flag_and_opt_value_parse() {
        let args = argv(&["--power", "--width", "16"]);
        assert!(flag(&args, "--power"));
        assert!(!flag(&args, "--gantt"));
        assert_eq!(opt_value(&args, "--width"), Ok(Some("16")));
        assert_eq!(opt_value(&args, "--absent"), Ok(None));
    }

    #[test]
    fn opt_value_rejects_flag_shaped_values() {
        // `--width --power` must not parse `--power` as the width.
        let args = argv(&["schedule", "d695", "--width", "--power"]);
        let err = opt_value(&args, "--width").unwrap_err();
        assert!(err.contains("--width"), "names the offending option: {err}");
        assert!(err.contains("--power"), "names the swallowed flag: {err}");
        assert!(run(&args).is_err());

        // A trailing option with no value at all is just as clear.
        let args = argv(&["--svg"]);
        let err = opt_value(&args, "--svg").unwrap_err();
        assert!(err.contains("expects a value"));

        // req_value distinguishes absent from malformed.
        let args = argv(&["--power"]);
        assert_eq!(req_value(&args, "--width").unwrap_err(), "missing --width");
    }

    fn parse_line(line: &str) -> Result<EngineRequest, String> {
        parse_batch_line(line, &mut std::collections::HashMap::new())
    }

    #[test]
    fn batch_lines_parse() {
        let r = parse_line("schedule d695 --width 16 --power").unwrap();
        assert_eq!(r.soc.name(), "d695");
        assert!(matches!(r.op, EngineOp::Schedule { width: 16 }));
        assert_eq!(
            r.flow.power.resolve(&r.soc),
            Some(r.soc.max_core_power()),
            "--power selects the max-core-power ceiling"
        );

        let r = parse_line("sweep p34392 --from 16 --to 24").unwrap();
        let want: Vec<u16> = (16..=24).collect();
        assert!(matches!(r.op, EngineOp::Sweep { ref widths } if *widths == want));

        let r = parse_line("bounds p93791").unwrap();
        assert!(
            matches!(r.op, EngineOp::Bounds { ref widths } if widths == &[16, 32, 48, 64]),
            "bounds default to the SOC's Table 1 widths"
        );
        let r = parse_line("bounds d695 --widths 8,12,16").unwrap();
        assert!(matches!(r.op, EngineOp::Bounds { ref widths } if widths == &[8, 12, 16]));

        assert!(parse_line("frobnicate d695").is_err());
        assert!(parse_line("schedule d695").is_err());
        assert!(parse_line("schedule d695 --width --power").is_err());
        assert!(parse_line("sweep d695 --from 9 --to 3").is_err());
    }

    #[test]
    fn batch_command_rejects_unknown_argv() {
        // The subcommand's own argv gets the same typo protection as the
        // request lines (checked before the file is even read).
        assert!(run(&argv(&["batch", "reqs.txt", "--therads", "8"])).is_err());
        assert!(run(&argv(&["batch", "reqs.txt", "--ouput", "r.json"])).is_err());
        assert!(run(&argv(&["batch", "reqs.txt", "--threads", "--out"])).is_err());
    }

    #[test]
    fn batch_lines_reject_unknown_flags() {
        // A typoed mode flag must fail the parse, not silently run the
        // request in the wrong mode.
        let err = parse_line("schedule d695 --width 16 --no-premept").unwrap_err();
        assert!(err.contains("--no-premept"), "names the typo: {err}");
        // Options of a different request kind are just as unknown here.
        assert!(parse_line("schedule d695 --width 16 --widths 8").is_err());
        assert!(
            parse_line("bounds d695 16").is_err(),
            "stray positional token"
        );
    }

    #[test]
    fn batch_file_memoizes_soc_loads() {
        let mut socs = std::collections::HashMap::new();
        let a = parse_batch_line("schedule d695 --width 16", &mut socs).unwrap();
        let b = parse_batch_line("bounds d695", &mut socs).unwrap();
        assert!(Arc::ptr_eq(&a.soc, &b.soc), "one load, one shared Arc");
        assert_eq!(socs.len(), 1);
    }

    #[test]
    fn batch_file_parses_with_comments_and_line_numbers() {
        let text = "# mixed benchmark batch\n\nschedule d695 --width 16\nbounds p34392\n";
        let reqs = parse_batch_file(text).unwrap();
        assert_eq!(reqs.len(), 2);

        let err = parse_batch_file("schedule d695 --width 16\nschedule d695\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "error names the line: {err}");
        assert!(parse_batch_file("# only comments\n").is_err());
    }

    #[test]
    fn batch_end_to_end_writes_json() {
        let dir = std::env::temp_dir();
        let reqs = dir.join("soctam_cli_batch_requests.txt");
        let out = dir.join("soctam_cli_batch_out.json");
        std::fs::write(
            &reqs,
            "schedule d695 --width 16\nschedule d695 --width 16 --no-preempt\n\
             bounds p34392 --widths 16,24\n",
        )
        .unwrap();
        run(&argv(&[
            "batch",
            reqs.to_str().unwrap(),
            "--threads",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"requests\": 3"));
        assert!(json.contains("\"failed\": 0"));
        assert!(json.contains("\"op\": \"schedule\""));
        assert!(json.contains("\"op\": \"bounds\""));
        assert!(json.contains("\"registry\""));
        std::fs::remove_file(&reqs).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn batch_results_match_sequential_flows() {
        // The acceptance pin: a mixed-SOC batch served concurrently is
        // bit-identical to per-SOC sequential runs.
        let lines = [
            "schedule d695 --width 16",
            "schedule p34392 --width 24 --no-preempt",
            "bounds p93791 --widths 16,32",
        ];
        let requests = parse_batch_file(&lines.join("\n")).unwrap();
        let results = Engine::new().with_threads(3).serve(&requests);
        for (req, result) in requests.iter().zip(&results) {
            let flow = TestFlow::new(&req.soc, req.flow.clone().with_parallel(false));
            match (&req.op, result.as_ref().unwrap()) {
                (EngineOp::Schedule { width }, EngineOutput::Schedule(run)) => {
                    let want = flow.run(*width).unwrap();
                    assert_eq!(run.schedule, want.schedule, "{}", req.soc.name());
                    assert_eq!(run.params, want.params);
                    assert_eq!(run.volume, want.volume);
                }
                (EngineOp::Bounds { widths }, EngineOutput::Bounds(bounds)) => {
                    assert_eq!(*bounds, flow.context().lower_bounds(widths));
                }
                _ => panic!("unexpected op/result pairing"),
            }
        }
    }
}
