//! `soctam` — command-line driver for the SOC test automation framework.
//!
//! ```text
//! soctam schedule <soc> --width W [--power] [--no-preempt] [--gantt] [--svg FILE]
//! soctam sweep <soc> [--from A] [--to B] [--alpha X]
//! soctam batch <requests.txt> [--threads N] [--out FILE]
//! soctam serve [--addr A] [--threads N] [--cache-cap C] [--ttl SECS]
//!              [--idle-timeout SECS] [--max-requests N] [--max-line BYTES]
//!              [--log FILE] [--warm FILE] [--max-pending N]
//!              [--fault-inject PLAN] [--slow-log MS] [--slow-log-file FILE]
//! soctam balance --backends A1,A2[,...] [--addr A] [--threads N]
//!              [--probe-interval SECS] [--backend-conns N] [...]
//! soctam client --addr A [--retries N] [--backoff SECS]
//!              [--get PATH | --file FILE | <request words> | (stdin)]
//! soctam staircase <soc> <core>
//! soctam wrapper <soc> <core> --width W
//! soctam bounds <soc>
//! soctam parse <file.soc>
//! soctam list
//! ```
//!
//! `<soc>` is a benchmark name (`d695`, `p22810`, `p34392`, `p93791`) or a
//! path to an ITC'02-style `.soc` file.
//!
//! `batch` reads a request list (one request per line, `#` comments
//! allowed) and serves it concurrently through the [`Engine`] and its
//! shared context registry, emitting a JSON report. The grammar — shared
//! with the `soctam serve` wire protocol through
//! [`soctam_core::protocol`] — is:
//!
//! ```text
//! schedule d695 --width 16 [--power] [--no-preempt]
//! sweep p34392 --from 16 --to 32
//! bounds p93791 [--widths 16,32,48,64]
//! ```
//!
//! `serve` runs the same grammar as a long-lived TCP daemon
//! ([`soctam_server::Server`]) with a solution cache in front of the
//! engine. Its connections are bounded: `--idle-timeout` reaps slow or
//! silent peers (0 disables), `--max-requests` caps one keep-alive
//! connection (0 disables), and `--max-line` caps a request line's bytes.
//! `--log FILE` appends one JSONL record per served request;
//! `--warm FILE` pre-solves a request file or saved log at startup so the
//! cache starts hot. `--max-pending N` bounds the admission-control
//! queue (excess connections are shed with a structured busy answer),
//! and `--fault-inject PLAN` arms a deterministic chaos plan
//! (`solve:panic:every=97,io:latency=5ms:every=13` — see
//! [`soctam_core::fault::FaultPlan`]). `--slow-log MS` emits a full
//! phase-trace JSONL record for every request at or over the threshold,
//! to `--slow-log-file FILE` or stderr. `balance` fronts a ring of `serve`
//! daemons with the same protocol and HTTP surface, consistent-hashing
//! each request's solution-cache key onto a backend so shard caches stay
//! hot and disjoint, failing over past dead or shedding backends, and
//! health-probing the ring (see [`soctam_server::balance`]). `client` is
//! the scripted
//! counterpart — one request per argv tail (or per stdin line), one JSON
//! response line each, plus `--get /healthz` / `--get /metrics` for the
//! HTTP surface and `--file FILE` to replay a request file or saved log
//! and print latency percentiles. `--retries N` (with base delay
//! `--backoff SECS`) retries shed connections, transient errors, and
//! transport failures with exponential backoff and deterministic jitter.

use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use soctam_core::engine::{Engine, EngineRequest, EngineResult};
use soctam_core::fault::FaultPlan;
use soctam_core::flow::{FlowConfig, ParamSweep, PowerPolicy, TestFlow};
use soctam_core::protocol::{self, check_known_args, flag, opt_value, req_value};
use soctam_core::report;
use soctam_core::schedule::CompiledSoc;
use soctam_core::soc::{benchmarks, itc02, Soc};
use soctam_core::volume::CostCurve;
use soctam_server::balance::{Balancer, BalancerConfig};
use soctam_server::{client, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  soctam schedule <soc> --width W [--power] [--no-preempt] [--gantt] [--svg FILE]
  soctam sweep <soc> [--from A] [--to B] [--alpha X]
  soctam batch <requests.txt> [--threads N] [--out FILE]
  soctam serve [--addr A] [--threads N] [--cache-cap C] [--ttl SECS]
               [--idle-timeout SECS] [--max-requests N] [--max-line BYTES]
               [--log FILE] [--warm FILE] [--max-pending N] [--fault-inject PLAN]
               [--slow-log MS] [--slow-log-file FILE]
  soctam balance --backends A1,A2[,...] [--addr A] [--threads N]
               [--probe-interval SECS] [--probe-timeout SECS] [--retries N]
               [--backoff SECS] [--backend-conns N] [--max-line BYTES]
               [--idle-timeout SECS] [--max-pending N]
  soctam client --addr A [--retries N] [--backoff SECS]
               [--get PATH | --file FILE | <request words> | (requests on stdin)]
  soctam staircase <soc> <core-name>
  soctam wrapper <soc> <core-name> --width W
  soctam bounds <soc>
  soctam parse <file.soc>
  soctam list";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("balance") => cmd_balance(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("staircase") => cmd_staircase(&args[1..]),
        Some("wrapper") => cmd_wrapper(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("parse") => cmd_parse(&args[1..]),
        Some("list") => cmd_list(),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".to_owned()),
    }
}

fn load_soc(name: &str) -> Result<Soc, String> {
    if let Some(soc) = benchmarks::by_name(name) {
        return Ok(soc);
    }
    let text = std::fs::read_to_string(name)
        .map_err(|e| format!("`{name}` is not a benchmark name and reading it failed: {e}"))?;
    // Auto-detect the classic ITC'02 layout (keyword-per-line, starts with
    // `SocName`) vs. this crate's compact dialect.
    let classic = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim().to_ascii_lowercase().starts_with("socname"));
    let parsed = if classic {
        itc02::parse_classic(&text)
    } else {
        itc02::parse(&text)
    };
    parsed.map_err(|e| format!("parsing `{name}`: {e}"))
}

// `flag`, `opt_value`, `req_value`, and `check_known_args` come from
// `soctam_core::protocol` — the CLI's own argv uses the same option
// discipline as the shared request grammar.

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let width: u16 = req_value(args, "--width")?
        .parse()
        .map_err(|_| "invalid --width")?;

    let mut cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    if flag(args, "--power") {
        cfg = cfg.with_power(PowerPolicy::MaxCorePower);
    }
    if flag(args, "--no-preempt") {
        cfg = cfg.without_preemption();
    }
    let run = TestFlow::new(&soc, cfg)
        .run(width)
        .map_err(|e| e.to_string())?;
    println!(
        "{}: W={width}, testing time {} cycles (lower bound {}), volume {} bits, \
         utilization {:.1}%, params (m={}, d={}, slack={})",
        soc.name(),
        run.schedule.makespan(),
        run.lower_bound,
        run.volume,
        run.schedule.utilization() * 100.0,
        run.params.0,
        run.params.1,
        run.params.2,
    );
    println!(
        "sweep: {} of {} grid points run ({} deduplicated)",
        run.sweep.runs_executed, run.sweep.runs_total, run.sweep.runs_skipped,
    );
    if flag(args, "--gantt") {
        println!();
        println!(
            "{}",
            run.schedule.gantt(&|i| soc.core(i).name().to_string(), 90)
        );
    }
    if let Some(path) = opt_value(args, "--svg")? {
        let svg = run.schedule.to_svg(
            &|i| soc.core(i).name().to_string(),
            soctam_core::schedule::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("writing `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let from: u16 = opt_value(args, "--from")?
        .unwrap_or("8")
        .parse()
        .map_err(|_| "invalid --from")?;
    let to: u16 = opt_value(args, "--to")?
        .unwrap_or("64")
        .parse()
        .map_err(|_| "invalid --to")?;
    let alpha: f64 = opt_value(args, "--alpha")?
        .unwrap_or("0.5")
        .parse()
        .map_err(|_| "invalid --alpha")?;
    if from == 0 || from > to {
        return Err("need 0 < --from <= --to".to_owned());
    }

    let cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    let pts = TestFlow::new(&soc, cfg)
        .sweep_widths(from..=to)
        .map_err(|e| e.to_string())?;
    let curve = CostCurve::new(&pts, alpha);
    println!(
        "{:>4} {:>12} {:>14} {:>10}",
        "W", "T (cycles)", "V (bits)", "C"
    );
    for (p, c) in pts.iter().zip(curve.points()) {
        println!(
            "{:>4} {:>12} {:>14} {:>10.4}",
            p.width, p.time, p.volume, c.cost
        );
    }
    let eff = curve.effective_point();
    println!(
        "effective width for alpha={alpha}: W_eff={} (C_min={:.4}, T={}, V={})",
        eff.width, eff.cost, eff.time, eff.volume
    );
    Ok(())
}

/// The CLI's [`protocol::SocResolver`]: benchmark names *and* `.soc`
/// file paths (the daemon's resolver, by contrast, refuses paths), with
/// loads memoized through `socs` so a thousand requests over one file
/// read and parse it once and share one `Arc<Soc>`.
fn file_resolver(
    socs: &mut std::collections::HashMap<String, Arc<Soc>>,
) -> impl protocol::SocResolver + '_ {
    |name: &str| {
        if let Some(soc) = socs.get(name) {
            return Ok(Arc::clone(soc));
        }
        let soc = Arc::new(load_soc(name)?);
        socs.insert(name.to_owned(), Arc::clone(&soc));
        Ok(soc)
    }
}

/// Parses one non-comment line of a batch request file through the shared
/// wire-format parser ([`protocol::parse_request`]). Production traffic
/// flows through [`parse_batch_file`]; this single-line entry point pins
/// the grammar in the test suite.
#[cfg(test)]
fn parse_batch_line(
    line: &str,
    socs: &mut std::collections::HashMap<String, Arc<Soc>>,
) -> Result<EngineRequest, String> {
    protocol::parse_request(line, &mut file_resolver(socs))
}

/// Parses a whole request file: one request per line, blank lines and
/// `#` comments skipped. Errors carry the 1-based line number.
fn parse_batch_file(text: &str) -> Result<Vec<EngineRequest>, String> {
    let mut socs = std::collections::HashMap::new();
    let mut resolver = file_resolver(&mut socs);
    protocol::parse_request_file(text, &mut resolver)
}

/// One batch-report result element: the shared response object, indented
/// into the report's `results` array.
fn json_request(req: &EngineRequest, result: &EngineResult) -> String {
    format!("    {}", protocol::render_result(req, result))
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing request file")?;
    check_known_args(&args[1..], &["--threads", "--out"], &[])?;
    let threads = opt_value(args, "--threads")?
        .map(|t| t.parse::<usize>().map_err(|_| "invalid --threads"))
        .transpose()?;
    let out = opt_value(args, "--out")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let requests = parse_batch_file(&text)?;
    let mut engine = Engine::new();
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }

    let results = engine.serve(&requests);
    let stats = engine.registry().stats();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"requests\": {},\n", requests.len()));
    json.push_str(&format!(
        "  \"failed\": {},\n",
        results.iter().filter(|r| r.is_err()).count()
    ));
    json.push_str("  \"results\": [\n");
    for (i, (req, result)) in requests.iter().zip(&results).enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&json_request(req, result));
        json.push_str(sep);
        json.push('\n');
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"registry\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"contexts\": {}, \"hit_rate\": {:.4}}}\n",
        stats.hits,
        stats.misses,
        stats.evictions,
        engine.registry().len(),
        stats.hit_rate()
    ));
    json.push_str("}\n");

    match out {
        Some(out) => {
            std::fs::write(out, &json).map_err(|e| format!("writing `{out}`: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// Parses a `--<name> SECS` option into an optional duration, where `0`
/// explicitly disables the deadline (`Ok(Some(None))`) and absence keeps
/// the caller's default (`Ok(None)`).
fn opt_seconds(args: &[String], name: &str) -> Result<Option<Option<Duration>>, String> {
    match opt_value(args, name)? {
        None => Ok(None),
        Some(secs) => {
            let secs: f64 = secs.parse().map_err(|_| format!("invalid {name}"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!("{name} must be a non-negative number of seconds"));
            }
            Ok(Some(if secs == 0.0 {
                None
            } else {
                Some(Duration::from_secs_f64(secs))
            }))
        }
    }
}

/// `soctam serve`: run the daemon in the foreground until killed.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    check_known_args(
        args,
        &[
            "--addr",
            "--threads",
            "--cache-cap",
            "--ttl",
            "--idle-timeout",
            "--max-requests",
            "--max-line",
            "--log",
            "--warm",
            "--max-pending",
            "--fault-inject",
            "--slow-log",
            "--slow-log-file",
        ],
        &[],
    )?;
    let addr = opt_value(args, "--addr")?.unwrap_or("127.0.0.1:3777");
    let threads: usize = opt_value(args, "--threads")?
        .unwrap_or("4")
        .parse()
        .map_err(|_| "invalid --threads")?;
    let cache_capacity: usize = opt_value(args, "--cache-cap")?
        .unwrap_or("1024")
        .parse()
        .map_err(|_| "invalid --cache-cap")?;
    let ttl = match opt_seconds(args, "--ttl")? {
        Some(None) => return Err("--ttl must be a positive number of seconds".to_owned()),
        Some(some) => some,
        None => None,
    };
    let mut cfg = ServerConfig {
        threads,
        cache_capacity,
        ttl,
        ..ServerConfig::default()
    };
    if let Some(idle) = opt_seconds(args, "--idle-timeout")? {
        cfg.idle_timeout = idle; // 0 disables the peer deadline
    }
    if let Some(cap) = opt_value(args, "--max-requests")? {
        let cap: u64 = cap.parse().map_err(|_| "invalid --max-requests")?;
        cfg.max_requests = (cap > 0).then_some(cap); // 0 means unlimited
    }
    if let Some(bytes) = opt_value(args, "--max-line")? {
        let bytes: usize = bytes.parse().map_err(|_| "invalid --max-line")?;
        if bytes == 0 {
            return Err("--max-line must be a positive byte count".to_owned());
        }
        cfg.max_line_bytes = bytes;
    }
    cfg.log_path = opt_value(args, "--log")?.map(std::path::PathBuf::from);
    if let Some(pending) = opt_value(args, "--max-pending")? {
        let pending: usize = pending.parse().map_err(|_| "invalid --max-pending")?;
        if pending == 0 {
            return Err("--max-pending must be a positive connection count".to_owned());
        }
        cfg.max_pending = pending;
    }
    if let Some(plan) = opt_value(args, "--fault-inject")? {
        cfg.fault_plan = Some(Arc::new(FaultPlan::parse(plan)?));
    }
    if let Some(ms) = opt_value(args, "--slow-log")? {
        let ms: f64 = ms.parse().map_err(|_| "invalid --slow-log")?;
        if !ms.is_finite() || ms < 0.0 {
            return Err("--slow-log must be a non-negative millisecond threshold".to_owned());
        }
        cfg.slow_log = Some(Duration::from_secs_f64(ms / 1000.0));
    }
    cfg.slow_log_path = opt_value(args, "--slow-log-file")?.map(std::path::PathBuf::from);
    if cfg.slow_log_path.is_some() && cfg.slow_log.is_none() {
        return Err("--slow-log-file needs --slow-log MS to set the threshold".to_owned());
    }
    let warm_text = match opt_value(args, "--warm")? {
        None => None,
        Some(path) => Some(
            std::fs::read_to_string(path)
                .map_err(|e| format!("reading warm file `{path}`: {e}"))?,
        ),
    };

    let idle_timeout = cfg.idle_timeout;
    let max_pending = cfg.max_pending;
    let fault_plan = cfg.fault_plan.clone();
    let server = Server::bind(addr, cfg).map_err(|e| format!("binding `{addr}`: {e}"))?;
    if let Some(plan) = &fault_plan {
        println!("fault injection armed: {plan}");
    }
    if let Some(text) = warm_text {
        let report = server.warm_from_text(&text);
        println!(
            "warmed the cache from {} requests ({} ok, {} failed, {} skipped)",
            report.requests, report.ok, report.failed, report.skipped
        );
    }
    println!(
        "soctam-server listening on {} ({} workers, solution cache capacity {}, ttl {}, \
         idle timeout {}, pending queue {})",
        server.local_addr(),
        threads.max(1),
        cache_capacity,
        ttl.map_or("none".to_owned(), |t| format!("{}s", t.as_secs_f64())),
        idle_timeout.map_or("none".to_owned(), |t| format!("{}s", t.as_secs_f64())),
        max_pending,
    );
    let _ = std::io::stdout().flush();
    server.join();
    Ok(())
}

/// `soctam balance`: run the consistent-hash cluster front in the
/// foreground until killed. `--backends` names the ring; everything else
/// tunes the front (see [`soctam_server::balance`]).
fn cmd_balance(args: &[String]) -> Result<(), String> {
    check_known_args(
        args,
        &[
            "--addr",
            "--backends",
            "--threads",
            "--probe-interval",
            "--probe-timeout",
            "--retries",
            "--backoff",
            "--backend-conns",
            "--max-line",
            "--idle-timeout",
            "--max-pending",
        ],
        &[],
    )?;
    let addr = opt_value(args, "--addr")?.unwrap_or("127.0.0.1:3780");
    let mut backends = Vec::new();
    for token in req_value(args, "--backends")?.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let resolved = std::net::ToSocketAddrs::to_socket_addrs(token)
            .map_err(|e| format!("resolving backend `{token}`: {e}"))?
            .next()
            .ok_or_else(|| format!("backend `{token}` resolved to nothing"))?;
        backends.push(resolved);
    }
    if backends.is_empty() {
        return Err("--backends names no backend addresses".to_owned());
    }

    let mut cfg = BalancerConfig::default();
    if let Some(threads) = opt_value(args, "--threads")? {
        cfg.threads = threads.parse().map_err(|_| "invalid --threads")?;
    }
    if let Some(interval) = opt_seconds(args, "--probe-interval")? {
        cfg.probe_interval =
            interval.ok_or("--probe-interval must be a positive number of seconds".to_owned())?;
    }
    if let Some(timeout) = opt_seconds(args, "--probe-timeout")? {
        cfg.probe_timeout =
            timeout.ok_or("--probe-timeout must be a positive number of seconds".to_owned())?;
    }
    if let Some(retries) = opt_value(args, "--retries")? {
        cfg.retries = retries.parse().map_err(|_| "invalid --retries")?;
    }
    if let Some(backoff) = opt_seconds(args, "--backoff")? {
        cfg.backoff = backoff.unwrap_or(Duration::ZERO); // 0 retries immediately
    }
    if let Some(conns) = opt_value(args, "--backend-conns")? {
        let conns: usize = conns.parse().map_err(|_| "invalid --backend-conns")?;
        if conns == 0 {
            return Err("--backend-conns must be a positive connection count".to_owned());
        }
        cfg.backend_conns = conns;
    }
    if let Some(bytes) = opt_value(args, "--max-line")? {
        let bytes: usize = bytes.parse().map_err(|_| "invalid --max-line")?;
        if bytes == 0 {
            return Err("--max-line must be a positive byte count".to_owned());
        }
        cfg.max_line_bytes = bytes;
    }
    if let Some(idle) = opt_seconds(args, "--idle-timeout")? {
        cfg.idle_timeout = idle; // 0 disables the peer deadline
    }
    if let Some(pending) = opt_value(args, "--max-pending")? {
        let pending: usize = pending.parse().map_err(|_| "invalid --max-pending")?;
        if pending == 0 {
            return Err("--max-pending must be a positive connection count".to_owned());
        }
        cfg.max_pending = pending;
    }

    let probe_interval = cfg.probe_interval;
    let backend_conns = cfg.backend_conns;
    let front = Balancer::bind(addr, &backends, cfg.clone())
        .map_err(|e| format!("binding `{addr}`: {e}"))?;
    println!(
        "soctam-balance listening on {} ({} workers, {} backends, {} pooled conns each, \
         probing every {}s)",
        front.local_addr(),
        cfg.threads.max(1),
        backends.len(),
        backend_conns,
        probe_interval.as_secs_f64(),
    );
    for backend in &backends {
        println!("  backend {backend}");
    }
    let _ = std::io::stdout().flush();
    front.join();
    Ok(())
}

/// `soctam client`: scripted counterpart of `serve`. One request from the
/// argv tail (every token that isn't `--addr`/`--get`/`--file`/
/// `--retries`/`--backoff` or their values), or one request per stdin
/// line when the tail is empty; `--get PATH` scrapes the HTTP surface,
/// `--file FILE` replays a request file or saved JSONL log and prints
/// latency percentiles. `--retries N` retries shed/transient/failed
/// requests with exponential backoff (base `--backoff SECS`).
fn cmd_client(args: &[String]) -> Result<(), String> {
    let addr = req_value(args, "--addr")?.to_owned();
    let path = opt_value(args, "--get")?.map(str::to_owned);
    let file = opt_value(args, "--file")?.map(str::to_owned);
    let retries: u32 = opt_value(args, "--retries")?
        .unwrap_or("0")
        .parse()
        .map_err(|_| "invalid --retries")?;
    let backoff = match opt_seconds(args, "--backoff")? {
        None => Duration::from_millis(100),
        Some(None) => Duration::ZERO, // 0 retries immediately
        Some(Some(d)) => d,
    };
    let policy = client::RetryPolicy::new(retries, backoff);

    // The request words are whatever remains after the client's own
    // options; they are validated by the server, not here.
    let mut words: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" | "--get" | "--file" | "--retries" | "--backoff" => i += 2,
            w => {
                words.push(w);
                i += 1;
            }
        }
    }

    if let Some(path) = path {
        if !words.is_empty() || file.is_some() {
            return Err("--get cannot be combined with a request or --file".to_owned());
        }
        let (status, body) =
            client::http_get(&addr, &path).map_err(|e| format!("GET {path} on `{addr}`: {e}"))?;
        if !status.contains("200") {
            return Err(format!("GET {path}: {status}"));
        }
        print!("{body}");
        return Ok(());
    }

    if let Some(file) = file {
        if !words.is_empty() {
            return Err("--file cannot be combined with a request".to_owned());
        }
        let text = std::fs::read_to_string(&file).map_err(|e| format!("reading `{file}`: {e}"))?;
        let report = client::replay_with_retry(&addr, &text, policy)
            .map_err(|e| format!("replaying `{file}`: {e}"))?;
        for (request, response) in &report.responses {
            println!("{request}\n  -> {response}");
        }
        match &report.latency {
            None => println!("replay: no replayable requests in `{file}`"),
            Some(lat) => println!(
                "replay: {} requests ({} ok, {} failed, {} retried), latency mean {:.3} ms, \
                 p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, max {:.3} ms, \
                 stddev {:.3} ms",
                lat.count,
                report.ok,
                report.failed,
                report.retried,
                lat.mean_ms,
                lat.p50_ms,
                lat.p90_ms,
                lat.p99_ms,
                lat.p999_ms,
                lat.max_ms,
                lat.stddev_ms
            ),
        }
        if report.failed > 0 {
            return Err(format!("{} replayed requests failed", report.failed));
        }
        return Ok(());
    }

    let mut conn = client::RetryingClient::new(&addr, policy)
        .map_err(|e| format!("resolving `{addr}`: {e}"))?;
    if words.is_empty() {
        // Scripted mode: request lines on stdin, response lines on stdout.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| format!("reading stdin: {e}"))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let response = conn
                .request(line)
                .map_err(|e| format!("request `{line}`: {e}"))?;
            println!("{response}");
        }
    } else {
        let line = words.join(" ");
        let response = conn
            .request(&line)
            .map_err(|e| format!("request `{line}`: {e}"))?;
        println!("{response}");
    }
    Ok(())
}

fn cmd_staircase(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let core_name = args.get(1).ok_or("missing core name")?;
    let soc = load_soc(soc_name)?;
    let idx = soc
        .core_by_name(core_name)
        .ok_or_else(|| format!("no core `{core_name}` in {}", soc.name()))?;
    let s = report::staircase(soc.core(idx).test(), 64);
    println!("{:>4} {:>12} {:>10}", "W", "T (cycles)", "Pareto");
    for p in &s.points {
        let mark = if s.pareto_widths.contains(&p.width) {
            "*"
        } else {
            ""
        };
        println!("{:>4} {:>12} {:>10}", p.width, p.time, mark);
    }
    Ok(())
}

fn cmd_wrapper(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let core_name = args.get(1).ok_or("missing core name")?;
    let width: u16 = req_value(args, "--width")?
        .parse()
        .map_err(|_| "invalid --width")?;
    let soc = load_soc(soc_name)?;
    let idx = soc
        .core_by_name(core_name)
        .ok_or_else(|| format!("no core `{core_name}` in {}", soc.name()))?;
    let layout = soctam_core::wrapper::WrapperLayout::build(soc.core(idx).test(), width)
        .map_err(|e| e.to_string())?;
    print!("{}", layout.render(core_name));
    println!(
        "test time at this width: {} cycles for {} patterns",
        layout.design().test_time(),
        layout.design().patterns()
    );
    Ok(())
}

fn cmd_bounds(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let widths: Vec<u16> = benchmarks::table1_widths(soc.name()).to_vec();
    let lbs = CompiledSoc::compile(&soc, 64).lower_bounds(&widths);
    println!("{}: testing-time lower bounds", soc.name());
    for (w, lb) in widths.iter().zip(lbs) {
        println!("  W={w:>3}: {lb}");
    }
    Ok(())
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing file path")?;
    let soc = load_soc(path)?;
    soc.validate().map_err(|e| e.to_string())?;
    println!(
        "{}: {} cores, {} precedence, {} concurrency constraints, {} total test bits",
        soc.name(),
        soc.len(),
        soc.precedence().len(),
        soc.concurrency().len(),
        soc.total_test_bits()
    );
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        println!("{name}: {} cores", soc.len());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_core::engine::{EngineOp, EngineOutput};

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn list_and_bounds_work() {
        assert!(run(&argv(&["list"])).is_ok());
        assert!(run(&argv(&["bounds", "d695"])).is_ok());
    }

    #[test]
    fn schedule_requires_width() {
        assert!(run(&argv(&["schedule", "d695"])).is_err());
        assert!(run(&argv(&["schedule", "d695", "--width", "banana"])).is_err());
    }

    #[test]
    fn staircase_and_wrapper_resolve_cores() {
        assert!(run(&argv(&["staircase", "d695", "s5378"])).is_ok());
        assert!(run(&argv(&["staircase", "d695", "ghost"])).is_err());
        assert!(run(&argv(&["wrapper", "d695", "s5378", "--width", "4"])).is_ok());
        assert!(run(&argv(&["wrapper", "d695", "s5378"])).is_err());
    }

    #[test]
    fn load_soc_rejects_missing_files() {
        assert!(load_soc("no_such_file.soc").is_err());
        assert!(load_soc("d695").is_ok());
    }

    #[test]
    fn load_soc_autodetects_classic_format() {
        let dir = std::env::temp_dir();
        let classic = dir.join("soctam_cli_classic_test.soc");
        std::fs::write(
            &classic,
            "SocName t\nModule 1\nInputs 2\nOutputs 2\nPatterns 5\n",
        )
        .unwrap();
        let soc = load_soc(classic.to_str().unwrap()).unwrap();
        assert_eq!(soc.name(), "t");
        std::fs::remove_file(&classic).ok();

        let dialect = dir.join("soctam_cli_dialect_test.soc");
        std::fs::write(&dialect, "soc t2\ncore a inputs=1 outputs=1 patterns=1\n").unwrap();
        assert_eq!(load_soc(dialect.to_str().unwrap()).unwrap().name(), "t2");
        std::fs::remove_file(&dialect).ok();
    }

    #[test]
    fn flag_and_opt_value_parse() {
        let args = argv(&["--power", "--width", "16"]);
        assert!(flag(&args, "--power"));
        assert!(!flag(&args, "--gantt"));
        assert_eq!(opt_value(&args, "--width"), Ok(Some("16")));
        assert_eq!(opt_value(&args, "--absent"), Ok(None));
    }

    #[test]
    fn opt_value_rejects_flag_shaped_values() {
        // `--width --power` must not parse `--power` as the width.
        let args = argv(&["schedule", "d695", "--width", "--power"]);
        let err = opt_value(&args, "--width").unwrap_err();
        assert!(err.contains("--width"), "names the offending option: {err}");
        assert!(err.contains("--power"), "names the swallowed flag: {err}");
        assert!(run(&args).is_err());

        // A trailing option with no value at all is just as clear.
        let args = argv(&["--svg"]);
        let err = opt_value(&args, "--svg").unwrap_err();
        assert!(err.contains("expects a value"));

        // req_value distinguishes absent from malformed.
        let args = argv(&["--power"]);
        assert_eq!(req_value(&args, "--width").unwrap_err(), "missing --width");
    }

    fn parse_line(line: &str) -> Result<EngineRequest, String> {
        parse_batch_line(line, &mut std::collections::HashMap::new())
    }

    #[test]
    fn batch_lines_parse() {
        let r = parse_line("schedule d695 --width 16 --power").unwrap();
        assert_eq!(r.soc.name(), "d695");
        assert!(matches!(r.op, EngineOp::Schedule { width: 16 }));
        assert_eq!(
            r.flow.power.resolve(&r.soc),
            Some(r.soc.max_core_power()),
            "--power selects the max-core-power ceiling"
        );

        let r = parse_line("sweep p34392 --from 16 --to 24").unwrap();
        let want: Vec<u16> = (16..=24).collect();
        assert!(matches!(r.op, EngineOp::Sweep { ref widths } if *widths == want));

        let r = parse_line("bounds p93791").unwrap();
        assert!(
            matches!(r.op, EngineOp::Bounds { ref widths } if widths == &[16, 32, 48, 64]),
            "bounds default to the SOC's Table 1 widths"
        );
        let r = parse_line("bounds d695 --widths 8,12,16").unwrap();
        assert!(matches!(r.op, EngineOp::Bounds { ref widths } if widths == &[8, 12, 16]));

        assert!(parse_line("frobnicate d695").is_err());
        assert!(parse_line("schedule d695").is_err());
        assert!(parse_line("schedule d695 --width --power").is_err());
        assert!(parse_line("sweep d695 --from 9 --to 3").is_err());
    }

    #[test]
    fn batch_command_rejects_unknown_argv() {
        // The subcommand's own argv gets the same typo protection as the
        // request lines (checked before the file is even read).
        assert!(run(&argv(&["batch", "reqs.txt", "--therads", "8"])).is_err());
        assert!(run(&argv(&["batch", "reqs.txt", "--ouput", "r.json"])).is_err());
        assert!(run(&argv(&["batch", "reqs.txt", "--threads", "--out"])).is_err());
    }

    #[test]
    fn batch_lines_reject_unknown_flags() {
        // A typoed mode flag must fail the parse, not silently run the
        // request in the wrong mode.
        let err = parse_line("schedule d695 --width 16 --no-premept").unwrap_err();
        assert!(err.contains("--no-premept"), "names the typo: {err}");
        // Options of a different request kind are just as unknown here.
        assert!(parse_line("schedule d695 --width 16 --widths 8").is_err());
        assert!(
            parse_line("bounds d695 16").is_err(),
            "stray positional token"
        );
    }

    #[test]
    fn batch_file_memoizes_soc_loads() {
        let mut socs = std::collections::HashMap::new();
        let a = parse_batch_line("schedule d695 --width 16", &mut socs).unwrap();
        let b = parse_batch_line("bounds d695", &mut socs).unwrap();
        assert!(Arc::ptr_eq(&a.soc, &b.soc), "one load, one shared Arc");
        assert_eq!(socs.len(), 1);
    }

    #[test]
    fn batch_file_parses_with_comments_and_line_numbers() {
        let text = "# mixed benchmark batch\n\nschedule d695 --width 16\nbounds p34392\n";
        let reqs = parse_batch_file(text).unwrap();
        assert_eq!(reqs.len(), 2);

        let err = parse_batch_file("schedule d695 --width 16\nschedule d695\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "error names the line: {err}");
        assert!(parse_batch_file("# only comments\n").is_err());
    }

    #[test]
    fn batch_end_to_end_writes_json() {
        let dir = std::env::temp_dir();
        let reqs = dir.join("soctam_cli_batch_requests.txt");
        let out = dir.join("soctam_cli_batch_out.json");
        std::fs::write(
            &reqs,
            "schedule d695 --width 16\nschedule d695 --width 16 --no-preempt\n\
             bounds p34392 --widths 16,24\n",
        )
        .unwrap();
        run(&argv(&[
            "batch",
            reqs.to_str().unwrap(),
            "--threads",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"requests\": 3"));
        assert!(json.contains("\"failed\": 0"));
        assert!(json.contains("\"op\": \"schedule\""));
        assert!(json.contains("\"op\": \"bounds\""));
        assert!(json.contains("\"registry\""));
        std::fs::remove_file(&reqs).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn client_round_trips_against_a_live_server() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        // One request from the argv tail; response goes to stdout.
        run(&argv(&[
            "client", "--addr", &addr, "bounds", "d695", "--widths", "16",
        ]))
        .unwrap();
        // HTTP surface via --get.
        run(&argv(&["client", "--addr", &addr, "--get", "/healthz"])).unwrap();
        assert!(
            run(&argv(&["client", "--addr", &addr, "--get", "/nope"])).is_err(),
            "non-200 surfaces as an error"
        );
        assert!(
            run(&argv(&["client", "bounds", "d695"])).is_err(),
            "--addr is mandatory"
        );
        assert!(
            run(&argv(&[
                "client", "--addr", &addr, "--get", "/healthz", "bounds", "d695",
            ]))
            .is_err(),
            "--get and a request are mutually exclusive"
        );
        server.shutdown();
    }

    #[test]
    fn serve_rejects_bad_argv() {
        assert!(run(&argv(&["serve", "--threads", "zero?"])).is_err());
        assert!(run(&argv(&["serve", "--ttl", "-3"])).is_err());
        assert!(run(&argv(&["serve", "--cache-cap", "lots"])).is_err());
        assert!(run(&argv(&["serve", "--addres", "127.0.0.1:0"])).is_err());
        assert!(run(&argv(&["serve", "--max-pending", "0"])).is_err());
        assert!(run(&argv(&["serve", "--max-pending", "some"])).is_err());
        let err = run(&argv(&["serve", "--fault-inject", "solve:explode"])).unwrap_err();
        assert!(err.contains("solve:explode"), "names the bad spec: {err}");
    }

    #[test]
    fn client_rejects_bad_retry_argv() {
        assert!(run(&argv(&[
            "client",
            "--addr",
            "127.0.0.1:1",
            "--retries",
            "-1",
            "bounds",
            "d695",
        ]))
        .is_err());
        assert!(run(&argv(&[
            "client",
            "--addr",
            "127.0.0.1:1",
            "--backoff",
            "fast",
            "bounds",
            "d695",
        ]))
        .is_err());
    }

    #[test]
    fn client_retries_through_to_a_late_answer() {
        // --retries covers connect refusals too: nothing listens on the
        // reserved port, so without the retry budget this would fail, and
        // with retries but no listener it still fails after the budget.
        let err = run(&argv(&[
            "client",
            "--addr",
            "127.0.0.1:9", // discard port: nothing listens
            "--retries",
            "1",
            "--backoff",
            "0",
            "bounds",
            "d695",
        ]))
        .unwrap_err();
        assert!(err.contains("bounds d695"), "names the request: {err}");

        // Against a live server the retrying path answers like the plain
        // one.
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        run(&argv(&[
            "client",
            "--addr",
            &addr,
            "--retries",
            "2",
            "--backoff",
            "0.01",
            "bounds",
            "d695",
            "--widths",
            "16",
        ]))
        .unwrap();
        server.shutdown();
    }

    #[test]
    fn batch_results_match_sequential_flows() {
        // The acceptance pin: a mixed-SOC batch served concurrently is
        // bit-identical to per-SOC sequential runs.
        let lines = [
            "schedule d695 --width 16",
            "schedule p34392 --width 24 --no-preempt",
            "bounds p93791 --widths 16,32",
        ];
        let requests = parse_batch_file(&lines.join("\n")).unwrap();
        let results = Engine::new().with_threads(3).serve(&requests);
        for (req, result) in requests.iter().zip(&results) {
            let flow = TestFlow::new(&req.soc, req.flow.clone().with_parallel(false));
            match (&req.op, result.as_ref().unwrap()) {
                (EngineOp::Schedule { width }, EngineOutput::Schedule(run)) => {
                    let want = flow.run(*width).unwrap();
                    assert_eq!(run.schedule, want.schedule, "{}", req.soc.name());
                    assert_eq!(run.params, want.params);
                    assert_eq!(run.volume, want.volume);
                }
                (EngineOp::Bounds { widths }, EngineOutput::Bounds(bounds)) => {
                    assert_eq!(*bounds, flow.context().lower_bounds(widths));
                }
                _ => panic!("unexpected op/result pairing"),
            }
        }
    }
}
