//! `soctam` — command-line driver for the SOC test automation framework.
//!
//! ```text
//! soctam schedule <soc> --width W [--power] [--no-preempt] [--gantt] [--svg FILE]
//! soctam sweep <soc> [--from A] [--to B] [--alpha X]
//! soctam staircase <soc> <core>
//! soctam wrapper <soc> <core> --width W
//! soctam bounds <soc>
//! soctam parse <file.soc>
//! soctam list
//! ```
//!
//! `<soc>` is a benchmark name (`d695`, `p22810`, `p34392`, `p93791`) or a
//! path to an ITC'02-style `.soc` file.

use std::process::ExitCode;

use soctam_core::flow::{FlowConfig, ParamSweep, PowerPolicy, TestFlow};
use soctam_core::report;
use soctam_core::schedule::CompiledSoc;
use soctam_core::soc::{benchmarks, itc02, Soc};
use soctam_core::volume::CostCurve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  soctam schedule <soc> --width W [--power] [--no-preempt] [--gantt] [--svg FILE]
  soctam sweep <soc> [--from A] [--to B] [--alpha X]
  soctam staircase <soc> <core-name>
  soctam wrapper <soc> <core-name> --width W
  soctam bounds <soc>
  soctam parse <file.soc>
  soctam list";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("staircase") => cmd_staircase(&args[1..]),
        Some("wrapper") => cmd_wrapper(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("parse") => cmd_parse(&args[1..]),
        Some("list") => cmd_list(),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".to_owned()),
    }
}

fn load_soc(name: &str) -> Result<Soc, String> {
    if let Some(soc) = benchmarks::by_name(name) {
        return Ok(soc);
    }
    let text = std::fs::read_to_string(name)
        .map_err(|e| format!("`{name}` is not a benchmark name and reading it failed: {e}"))?;
    // Auto-detect the classic ITC'02 layout (keyword-per-line, starts with
    // `SocName`) vs. this crate's compact dialect.
    let classic = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim().to_ascii_lowercase().starts_with("socname"));
    let parsed = if classic {
        itc02::parse_classic(&text)
    } else {
        itc02::parse(&text)
    };
    parsed.map_err(|e| format!("parsing `{name}`: {e}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let width: u16 = opt_value(args, "--width")
        .ok_or("missing --width")?
        .parse()
        .map_err(|_| "invalid --width")?;

    let mut cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    if flag(args, "--power") {
        cfg = cfg.with_power(PowerPolicy::MaxCorePower);
    }
    if flag(args, "--no-preempt") {
        cfg = cfg.without_preemption();
    }
    let run = TestFlow::new(&soc, cfg)
        .run(width)
        .map_err(|e| e.to_string())?;
    println!(
        "{}: W={width}, testing time {} cycles (lower bound {}), volume {} bits, \
         utilization {:.1}%, params (m={}, d={}, slack={})",
        soc.name(),
        run.schedule.makespan(),
        run.lower_bound,
        run.volume,
        run.schedule.utilization() * 100.0,
        run.params.0,
        run.params.1,
        run.params.2,
    );
    println!(
        "sweep: {} of {} grid points run ({} deduplicated)",
        run.sweep.runs_executed, run.sweep.runs_total, run.sweep.runs_skipped,
    );
    if flag(args, "--gantt") {
        println!();
        println!(
            "{}",
            run.schedule.gantt(&|i| soc.core(i).name().to_string(), 90)
        );
    }
    if let Some(path) = opt_value(args, "--svg") {
        let svg = run.schedule.to_svg(
            &|i| soc.core(i).name().to_string(),
            soctam_core::schedule::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("writing `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let from: u16 = opt_value(args, "--from")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "invalid --from")?;
    let to: u16 = opt_value(args, "--to")
        .unwrap_or("64")
        .parse()
        .map_err(|_| "invalid --to")?;
    let alpha: f64 = opt_value(args, "--alpha")
        .unwrap_or("0.5")
        .parse()
        .map_err(|_| "invalid --alpha")?;
    if from == 0 || from > to {
        return Err("need 0 < --from <= --to".to_owned());
    }

    let cfg = FlowConfig {
        sweep: ParamSweep::quick(),
        ..FlowConfig::new()
    };
    let pts = TestFlow::new(&soc, cfg)
        .sweep_widths(from..=to)
        .map_err(|e| e.to_string())?;
    let curve = CostCurve::new(&pts, alpha);
    println!(
        "{:>4} {:>12} {:>14} {:>10}",
        "W", "T (cycles)", "V (bits)", "C"
    );
    for (p, c) in pts.iter().zip(curve.points()) {
        println!(
            "{:>4} {:>12} {:>14} {:>10.4}",
            p.width, p.time, p.volume, c.cost
        );
    }
    let eff = curve.effective_point();
    println!(
        "effective width for alpha={alpha}: W_eff={} (C_min={:.4}, T={}, V={})",
        eff.width, eff.cost, eff.time, eff.volume
    );
    Ok(())
}

fn cmd_staircase(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let core_name = args.get(1).ok_or("missing core name")?;
    let soc = load_soc(soc_name)?;
    let idx = soc
        .core_by_name(core_name)
        .ok_or_else(|| format!("no core `{core_name}` in {}", soc.name()))?;
    let s = report::staircase(soc.core(idx).test(), 64);
    println!("{:>4} {:>12} {:>10}", "W", "T (cycles)", "Pareto");
    for p in &s.points {
        let mark = if s.pareto_widths.contains(&p.width) {
            "*"
        } else {
            ""
        };
        println!("{:>4} {:>12} {:>10}", p.width, p.time, mark);
    }
    Ok(())
}

fn cmd_wrapper(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let core_name = args.get(1).ok_or("missing core name")?;
    let width: u16 = opt_value(args, "--width")
        .ok_or("missing --width")?
        .parse()
        .map_err(|_| "invalid --width")?;
    let soc = load_soc(soc_name)?;
    let idx = soc
        .core_by_name(core_name)
        .ok_or_else(|| format!("no core `{core_name}` in {}", soc.name()))?;
    let layout = soctam_core::wrapper::WrapperLayout::build(soc.core(idx).test(), width)
        .map_err(|e| e.to_string())?;
    print!("{}", layout.render(core_name));
    println!(
        "test time at this width: {} cycles for {} patterns",
        layout.design().test_time(),
        layout.design().patterns()
    );
    Ok(())
}

fn cmd_bounds(args: &[String]) -> Result<(), String> {
    let soc_name = args.first().ok_or("missing SOC name")?;
    let soc = load_soc(soc_name)?;
    let widths: Vec<u16> = benchmarks::table1_widths(soc.name()).to_vec();
    let lbs = CompiledSoc::compile(&soc, 64).lower_bounds(&widths);
    println!("{}: testing-time lower bounds", soc.name());
    for (w, lb) in widths.iter().zip(lbs) {
        println!("  W={w:>3}: {lb}");
    }
    Ok(())
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing file path")?;
    let soc = load_soc(path)?;
    soc.validate().map_err(|e| e.to_string())?;
    println!(
        "{}: {} cores, {} precedence, {} concurrency constraints, {} total test bits",
        soc.name(),
        soc.len(),
        soc.precedence().len(),
        soc.concurrency().len(),
        soc.total_test_bits()
    );
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        println!("{name}: {} cores", soc.len());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn list_and_bounds_work() {
        assert!(run(&argv(&["list"])).is_ok());
        assert!(run(&argv(&["bounds", "d695"])).is_ok());
    }

    #[test]
    fn schedule_requires_width() {
        assert!(run(&argv(&["schedule", "d695"])).is_err());
        assert!(run(&argv(&["schedule", "d695", "--width", "banana"])).is_err());
    }

    #[test]
    fn staircase_and_wrapper_resolve_cores() {
        assert!(run(&argv(&["staircase", "d695", "s5378"])).is_ok());
        assert!(run(&argv(&["staircase", "d695", "ghost"])).is_err());
        assert!(run(&argv(&["wrapper", "d695", "s5378", "--width", "4"])).is_ok());
        assert!(run(&argv(&["wrapper", "d695", "s5378"])).is_err());
    }

    #[test]
    fn load_soc_rejects_missing_files() {
        assert!(load_soc("no_such_file.soc").is_err());
        assert!(load_soc("d695").is_ok());
    }

    #[test]
    fn load_soc_autodetects_classic_format() {
        let dir = std::env::temp_dir();
        let classic = dir.join("soctam_cli_classic_test.soc");
        std::fs::write(
            &classic,
            "SocName t\nModule 1\nInputs 2\nOutputs 2\nPatterns 5\n",
        )
        .unwrap();
        let soc = load_soc(classic.to_str().unwrap()).unwrap();
        assert_eq!(soc.name(), "t");
        std::fs::remove_file(&classic).ok();

        let dialect = dir.join("soctam_cli_dialect_test.soc");
        std::fs::write(&dialect, "soc t2\ncore a inputs=1 outputs=1 patterns=1\n").unwrap();
        assert_eq!(load_soc(dialect.to_str().unwrap()).unwrap().name(), "t2");
        std::fs::remove_file(&dialect).ok();
    }

    #[test]
    fn flag_and_opt_value_parse() {
        let args = argv(&["--power", "--width", "16"]);
        assert!(flag(&args, "--power"));
        assert!(!flag(&args, "--gantt"));
        assert_eq!(opt_value(&args, "--width"), Some("16"));
        assert_eq!(opt_value(&args, "--absent"), None);
    }
}
