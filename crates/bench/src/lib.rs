//! Shared helpers for the `soctam-bench` table/figure regenerators.

use soctam_core::flow::{FlowConfig, ParamSweep};

/// The flow configuration used for headline table reproductions: the
/// paper's `(m, d)` best-of search, extended with idle-fill slack values
/// (see EXPERIMENTS.md for the rationale).
pub fn headline_config() -> FlowConfig {
    FlowConfig {
        sweep: ParamSweep::extended(),
        ..FlowConfig::new()
    }
}

/// A cheaper configuration for the wide `W = 1..=80` sweeps behind
/// Figure 9 and Table 2.
pub fn sweep_config() -> FlowConfig {
    FlowConfig {
        sweep: ParamSweep {
            percents: vec![1, 4, 8, 15, 25, 40, 60],
            bumps: vec![0, 2],
            slacks: vec![3, 8],
        },
        ..FlowConfig::new()
    }
}

/// Parses a `--flag value` style option from argv.
///
/// Exits the process (code 2) when the option is present but valueless or
/// directly followed by another flag: the bench bins have no error
/// channel, and silently swallowing the next flag as a value (e.g.
/// `perfsnap --out --quick` writing a file named `--quick` from a
/// full-mode run) would run the wrong experiment.
pub fn opt_value(args: &[String], name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        Some(v) => {
            eprintln!("error: option `{name}` expects a value, but found the flag `{v}`");
            std::process::exit(2);
        }
        None => {
            eprintln!("error: option `{name}` expects a value");
            std::process::exit(2);
        }
    }
}

/// Escapes a string for embedding in a JSON document (the bench bins emit
/// JSON by hand; the workspace is vendored-only, so no serde). One
/// implementation for the whole workspace: the shared protocol module's.
pub use soctam_core::protocol::json_escape;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_construct() {
        assert!(headline_config().sweep.runs() > sweep_config().sweep.runs());
    }

    #[test]
    fn opt_value_parses() {
        let args: Vec<String> = ["--part", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(opt_value(&args, "--part").as_deref(), Some("a"));
        assert_eq!(opt_value(&args, "--missing"), None);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\u{1}"), "line\\nbreak\\u0001");
    }
}
