//! Shared helpers for the `soctam-bench` table/figure regenerators.

use soctam_core::flow::{FlowConfig, ParamSweep};

/// The flow configuration used for headline table reproductions: the
/// paper's `(m, d)` best-of search, extended with idle-fill slack values
/// (see EXPERIMENTS.md for the rationale).
pub fn headline_config() -> FlowConfig {
    FlowConfig {
        sweep: ParamSweep::extended(),
        ..FlowConfig::new()
    }
}

/// A cheaper configuration for the wide `W = 1..=80` sweeps behind
/// Figure 9 and Table 2.
pub fn sweep_config() -> FlowConfig {
    FlowConfig {
        sweep: ParamSweep {
            percents: vec![1, 4, 8, 15, 25, 40, 60],
            bumps: vec![0, 2],
            slacks: vec![3, 8],
        },
        ..FlowConfig::new()
    }
}

/// Parses a `--flag value` style option from argv.
pub fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_construct() {
        assert!(headline_config().sweep.runs() > sweep_config().sweep.runs());
    }

    #[test]
    fn opt_value_parses() {
        let args: Vec<String> = ["--part", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(opt_value(&args, "--part").as_deref(), Some("a"));
        assert_eq!(opt_value(&args, "--missing"), None);
    }
}
