//! Serving-tier snapshot: hammer a loopback `soctam-server` daemon and
//! measure wire latency, cold vs. warm.
//!
//! Starts an in-process daemon on an ephemeral loopback port, sends a
//! cold pass (one client, each distinct request once — every request
//! pays its solve), then a warm pass (`--clients` threads × `--iters`
//! iterations over the same mix, started at rotated offsets so identical
//! requests overlap in flight), and writes latency percentiles plus the
//! daemon's cache tallies to `BENCH_serve.json`.
//!
//! The snapshot doubles as the CI gate for the serving tier: it verifies
//! on the spot that every warm response is byte-identical to its cold
//! counterpart, and **fails** (exit 1) if the warm pass reports zero
//! solution-cache hits — i.e. if result caching ever regresses to
//! re-solving repeat traffic.
//!
//! The daemon runs with its JSONL request log enabled; after the warm
//! pass the log is replayed back through `client::replay` (the same path
//! as `soctam client --file`), and the replay's latency percentiles land
//! in a `"replay"` section — exercising the log → replay loop end to end
//! on every snapshot.
//!
//! Run with: `cargo run --release -p soctam-bench --bin servesnap`
//! Options:  `--quick` shrinks the warm pass (the CI smoke);
//!           `--clients <n>` client threads (default 4);
//!           `--iters <n>` warm iterations per client (default 20, quick 5);
//!           `--out <file>` changes the output path.

use std::fmt::Write as _;
use std::time::Instant;

use soctam_bench::{json_escape, opt_value};
use soctam_server::{client, Server, ServerConfig};

/// The mixed request set: all three kinds, both scheduling modes, a
/// power-constrained run, three SOCs.
const REQUESTS: [&str; 6] = [
    "schedule d695 --width 16",
    "schedule d695 --width 32 --no-preempt",
    "schedule d695 --width 24 --power",
    "sweep d695 --from 14 --to 18",
    "bounds p34392 --widths 16,24,32",
    "bounds p93791",
];

use client::LatencySummary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = opt_value(&args, "--clients")
        .map_or(4, |v| v.parse().expect("--clients takes a count"))
        .max(1);
    let iters: usize = opt_value(&args, "--iters")
        .map_or(if quick { 5 } else { 20 }, |v| {
            v.parse().expect("--iters takes a count")
        })
        .max(1);
    let out_path = opt_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_owned());

    // Log every request of the run to a scratch JSONL file, then replay it
    // back at the daemon — the log/replay loop is part of the snapshot.
    let log_path = std::env::temp_dir().join(format!("servesnap-{}.log", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: clients,
            log_path: Some(log_path.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral loopback bind");
    let addr = server.local_addr();
    println!("servesnap: daemon on {addr}, {clients} clients x {iters} warm iterations");

    // Cold pass: every distinct request pays its solve exactly once.
    let mut cold_latencies = Vec::new();
    let mut cold_responses = Vec::new();
    {
        let mut conn = client::Connection::connect(addr).expect("cold connect");
        for request in REQUESTS {
            let t0 = Instant::now();
            let response = conn.request(request).expect("cold round trip");
            cold_latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            assert!(
                response.contains("\"ok\": true"),
                "cold request failed: {request} -> {response}"
            );
            cold_responses.push(response);
        }
    }

    // Warm pass: concurrent clients replay the mix; every response must be
    // byte-identical to its cold counterpart, and none may re-solve.
    let warm_t0 = Instant::now();
    let per_client: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|offset| {
                let cold_responses = &cold_responses;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(iters * REQUESTS.len());
                    let mut conn = client::Connection::connect(addr).expect("warm connect");
                    for round in 0..iters {
                        for i in 0..REQUESTS.len() {
                            let at = (i + offset + round) % REQUESTS.len();
                            let t0 = Instant::now();
                            let response = conn.request(REQUESTS[at]).expect("warm round trip");
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(
                                response, cold_responses[at],
                                "warm response diverged for `{}`",
                                REQUESTS[at]
                            );
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let warm_wall_s = warm_t0.elapsed().as_secs_f64();
    let warm_latencies: Vec<f64> = per_client.into_iter().flatten().collect();

    let cold = LatencySummary::of_millis(cold_latencies).expect("cold pass has samples");
    let warm = LatencySummary::of_millis(warm_latencies).expect("warm pass has samples");
    let throughput = warm.count as f64 / warm_wall_s;

    // Replay the run's own request log back at the (now warm) daemon, the
    // way `soctam client --file LOG` would.
    let log_text = std::fs::read_to_string(&log_path).expect("request log written");
    let replay = client::replay(addr, &log_text).expect("replay round trip");
    let replayed = cold.count + warm.count;
    assert_eq!(
        replay.responses.len(),
        replayed,
        "the log replays every cold and warm request"
    );
    assert_eq!(replay.failed, 0, "replayed requests all succeed");
    let replay_latency = replay.latency.clone().expect("replay has samples");
    let sol = server.engine().solution_stats().expect("cache enabled");
    let reg = server.engine().registry().stats();

    println!(
        "cold:  {} requests, mean {:.2} ms, p50 {:.2} ms, max {:.2} ms",
        cold.count, cold.mean_ms, cold.p50_ms, cold.max_ms
    );
    println!(
        "warm:  {} requests, mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms ({:.0} req/s)",
        warm.count, warm.mean_ms, warm.p50_ms, warm.p99_ms, throughput
    );
    println!(
        "replay: {} logged requests, mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
        replay_latency.count, replay_latency.mean_ms, replay_latency.p50_ms, replay_latency.p99_ms
    );
    println!(
        "cache: {} misses, {} hits, {} coalesced (hit rate {:.4}); \
         registry: {} misses, {} hits",
        sol.misses,
        sol.hits,
        sol.coalesced,
        sol.hit_rate(),
        reg.misses,
        reg.hits
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"servesnap\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"iterations_per_client\": {iters},");
    json.push_str("  \"requests\": [\n");
    for (i, request) in REQUESTS.iter().enumerate() {
        let sep = if i + 1 == REQUESTS.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\"{sep}", json_escape(request));
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"cold\": {},", cold.json());
    let _ = writeln!(json, "  \"warm\": {},", warm.json());
    let _ = writeln!(json, "  \"warm_wall_seconds\": {warm_wall_s:.4},");
    let _ = writeln!(json, "  \"warm_requests_per_second\": {throughput:.1},");
    let _ = writeln!(
        json,
        "  \"replay\": {{\"logged_requests\": {}, \"ok\": {}, \"failed\": {}, \
         \"latency\": {}}},",
        replayed,
        replay.ok,
        replay.failed,
        replay_latency.json()
    );
    let _ = writeln!(
        json,
        "  \"solution_cache\": {{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \
         \"evictions\": {}, \"expiries\": {}, \"failures\": {}, \"hit_rate\": {:.4}}},",
        sol.hits,
        sol.misses,
        sol.coalesced,
        sol.evictions,
        sol.expiries,
        sol.failures,
        sol.hit_rate()
    );
    let _ = writeln!(
        json,
        "  \"registry\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"expiries\": {}}}",
        reg.hits, reg.misses, reg.evictions, reg.expiries
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    server.shutdown();
    std::fs::remove_file(&log_path).ok();

    // The CI gate: a warm pass that hit the cache zero times means the
    // serving tier re-solved repeat traffic.
    if sol.hits == 0 {
        eprintln!("error: warm pass recorded zero solution-cache hits — result caching regressed");
        std::process::exit(1);
    }
}
