//! Serving-tier snapshot: hammer a loopback `soctam-server` daemon and
//! measure wire latency, cold vs. warm.
//!
//! Starts an in-process daemon on an ephemeral loopback port, sends a
//! cold pass (one client, each distinct request once — every request
//! pays its solve), then a warm pass (`--clients` threads × `--iters`
//! iterations over the same mix, started at rotated offsets so identical
//! requests overlap in flight), and writes latency percentiles plus the
//! daemon's cache tallies to `BENCH_serve.json`.
//!
//! The snapshot doubles as the CI gate for the serving tier: it verifies
//! on the spot that every warm response is byte-identical to its cold
//! counterpart, and **fails** (exit 1) if the warm pass reports zero
//! solution-cache hits — i.e. if result caching ever regresses to
//! re-solving repeat traffic.
//!
//! The daemon runs with its JSONL request log enabled; after the warm
//! pass the log is replayed back through `client::replay` (the same path
//! as `soctam client --file`), and the replay's latency percentiles land
//! in a `"replay"` section — exercising the log → replay loop end to end
//! on every snapshot.
//!
//! A final **overload pass** offers load far over capacity to a second,
//! deliberately under-provisioned daemon (one worker, a two-slot pending
//! queue, injected per-request latency) from retrying clients. The
//! `"overload"` section records the shed rate, goodput, and client-side
//! latency percentiles — and the snapshot **fails** (exit 1) if the
//! over-capacity pass sheds nothing (admission control regressed) or if
//! any retrying client ultimately fails (resilience regressed).
//!
//! Run with: `cargo run --release -p soctam-bench --bin servesnap`
//! Options:  `--quick` shrinks the warm pass (the CI smoke);
//!           `--clients <n>` client threads (default 4);
//!           `--iters <n>` warm iterations per client (default 20, quick 5);
//!           `--out <file>` changes the output path.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use soctam_bench::{json_escape, opt_value};
use soctam_core::fault::FaultPlan;
use soctam_server::client::{RetryPolicy, RetryingClient};
use soctam_server::{client, Server, ServerConfig};

/// The mixed request set: all three kinds, both scheduling modes, a
/// power-constrained run, three SOCs.
const REQUESTS: [&str; 6] = [
    "schedule d695 --width 16",
    "schedule d695 --width 32 --no-preempt",
    "schedule d695 --width 24 --power",
    "sweep d695 --from 14 --to 18",
    "bounds p34392 --widths 16,24,32",
    "bounds p93791",
];

use client::LatencySummary;

/// Strips the `"trace"` member a `--trace` response carries, recovering
/// the exact untraced response (the trace is always spliced last, before
/// the closing brace).
fn strip_trace(response: &str) -> String {
    match response.find(", \"trace\": ") {
        Some(i) => format!("{}}}", &response[..i]),
        None => response.to_owned(),
    }
}

/// Extracts the flat `"phases"` object of a `--trace` response as
/// `(phase, exclusive_micros)` pairs.
fn parse_phases(response: &str) -> Vec<(String, u64)> {
    let Some(start) = response.find("\"phases\": {") else {
        return Vec::new();
    };
    let rest = &response[start + "\"phases\": {".len()..];
    let Some(end) = rest.find('}') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|pair| {
            let (key, value) = pair.split_once(':')?;
            Some((
                key.trim().trim_matches('"').to_owned(),
                value.trim().parse().ok()?,
            ))
        })
        .collect()
}

/// Reads one counter out of the daemon's Prometheus exposition.
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("no metric `{name}` in:\n{metrics}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = opt_value(&args, "--clients")
        .map_or(4, |v| v.parse().expect("--clients takes a count"))
        .max(1);
    let iters: usize = opt_value(&args, "--iters")
        .map_or(if quick { 5 } else { 20 }, |v| {
            v.parse().expect("--iters takes a count")
        })
        .max(1);
    let out_path = opt_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_owned());

    // Log every request of the run to a scratch JSONL file, then replay it
    // back at the daemon — the log/replay loop is part of the snapshot.
    let log_path = std::env::temp_dir().join(format!("servesnap-{}.log", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: clients,
            log_path: Some(log_path.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral loopback bind");
    let addr = server.local_addr();
    println!("servesnap: daemon on {addr}, {clients} clients x {iters} warm iterations");

    // Cold pass: every distinct request pays its solve exactly once — and
    // runs `--trace`d, so the daemon reports where the cold time went
    // phase by phase instead of a client-side stopwatch guessing. The
    // trace flag is presentation-only (cache identity unchanged), so the
    // warm untraced repeats below still hit the entries these solves
    // populate; the stored responses are trace-stripped for the warm
    // byte-identity check.
    let mut cold_latencies = Vec::new();
    let mut cold_responses = Vec::new();
    let mut cold_phase_micros: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    {
        let mut conn = client::Connection::connect(addr).expect("cold connect");
        for request in REQUESTS {
            let traced = format!("{request} --trace");
            let t0 = Instant::now();
            let response = conn.request(&traced).expect("cold round trip");
            cold_latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            assert!(
                client::response_ok(&response),
                "cold request failed: {request} -> {response}"
            );
            let phases = parse_phases(&response);
            assert!(
                !phases.is_empty(),
                "traced cold response carries no phase split: {response}"
            );
            for (phase, micros) in phases {
                *cold_phase_micros.entry(phase).or_insert(0) += micros;
            }
            cold_responses.push(strip_trace(&response));
        }
    }
    assert!(
        cold_phase_micros.get("sweep").copied().unwrap_or(0) > 0,
        "cold pass reported zero sweep time — phase tracing regressed: {cold_phase_micros:?}"
    );

    // Warm pass: concurrent clients replay the mix; every response must be
    // byte-identical to its cold counterpart, and none may re-solve.
    let warm_t0 = Instant::now();
    let per_client: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|offset| {
                let cold_responses = &cold_responses;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(iters * REQUESTS.len());
                    let mut conn = client::Connection::connect(addr).expect("warm connect");
                    for round in 0..iters {
                        for i in 0..REQUESTS.len() {
                            let at = (i + offset + round) % REQUESTS.len();
                            let t0 = Instant::now();
                            let response = conn.request(REQUESTS[at]).expect("warm round trip");
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(
                                response, cold_responses[at],
                                "warm response diverged for `{}`",
                                REQUESTS[at]
                            );
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let warm_wall_s = warm_t0.elapsed().as_secs_f64();
    let warm_latencies: Vec<f64> = per_client.into_iter().flatten().collect();

    let cold = LatencySummary::of_millis(cold_latencies).expect("cold pass has samples");
    let warm = LatencySummary::of_millis(warm_latencies).expect("warm pass has samples");
    let throughput = warm.count as f64 / warm_wall_s;

    // Replay the run's own request log back at the (now warm) daemon, the
    // way `soctam client --file LOG` would.
    let log_text = std::fs::read_to_string(&log_path).expect("request log written");
    let replay = client::replay(addr, &log_text).expect("replay round trip");
    let replayed = cold.count + warm.count;
    assert_eq!(
        replay.responses.len(),
        replayed,
        "the log replays every cold and warm request"
    );
    assert_eq!(replay.failed, 0, "replayed requests all succeed");
    let replay_latency = replay.latency.clone().expect("replay has samples");
    let sol = server.engine().solution_stats().expect("cache enabled");
    let reg = server.engine().registry().stats();

    println!(
        "cold:  {} requests, mean {:.2} ms, p50 {:.2} ms, max {:.2} ms",
        cold.count, cold.mean_ms, cold.p50_ms, cold.max_ms
    );
    println!(
        "warm:  {} requests, mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms ({:.0} req/s)",
        warm.count, warm.mean_ms, warm.p50_ms, warm.p99_ms, throughput
    );
    println!(
        "replay: {} logged requests, mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
        replay_latency.count, replay_latency.mean_ms, replay_latency.p50_ms, replay_latency.p99_ms
    );
    println!(
        "cache: {} misses, {} hits, {} coalesced (hit rate {:.4}); \
         registry: {} misses, {} hits",
        sol.misses,
        sol.hits,
        sol.coalesced,
        sol.hit_rate(),
        reg.misses,
        reg.hits
    );

    // Overload pass: a second, deliberately under-provisioned daemon (one
    // worker, a two-slot pending queue, 5 ms of injected latency per
    // request) is offered eight simultaneous retrying clients — load far
    // over capacity. Sheds are absorbed by the clients' backoff, so the
    // pass measures the resilience contract end to end: non-zero sheds,
    // zero eventual failures, and the goodput the daemon sustains while
    // shedding.
    const OVERLOAD_REQUEST: &str = "bounds d695 --widths 16";
    let overload_clients: usize = 8;
    let overload_iters: usize = if quick { 5 } else { 15 };
    let overload = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            max_pending: 2,
            fault_plan: Some(Arc::new(
                FaultPlan::parse("io:latency=5ms").expect("static plan parses"),
            )),
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral loopback bind");
    overload.warm_from_text(OVERLOAD_REQUEST); // service time ≈ injected latency
    let overload_addr = overload.local_addr();

    let overload_t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..overload_clients)
            .map(|seed| {
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        retries: 60,
                        backoff: Duration::from_millis(5),
                        seed: seed as u64,
                    };
                    let mut client =
                        RetryingClient::new(overload_addr, policy).expect("loopback resolves");
                    let mut latencies = Vec::with_capacity(overload_iters);
                    let mut failed = 0u64;
                    for _ in 0..overload_iters {
                        let t0 = Instant::now();
                        match client.request(OVERLOAD_REQUEST) {
                            Ok(response) if client::response_ok(&response) => {
                                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                            _ => failed += 1,
                        }
                    }
                    (latencies, client.retried(), failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overload client panicked"))
            .collect()
    });
    let overload_wall_s = overload_t0.elapsed().as_secs_f64();
    let overload_metrics = overload.metrics();
    overload.shutdown();

    let sheds = metric_value(&overload_metrics, "soctam_shed_total");
    let overload_retried: u64 = per_client.iter().map(|(_, r, _)| r).sum();
    let overload_failed: u64 = per_client.iter().map(|(_, _, f)| f).sum();
    let overload_latencies: Vec<f64> = per_client.into_iter().flat_map(|(l, _, _)| l).collect();
    let overload_ok = overload_latencies.len();
    let goodput = overload_ok as f64 / overload_wall_s;
    let offered_rps = (overload_clients * overload_iters) as f64 / overload_wall_s;
    let overload_latency =
        LatencySummary::of_millis(overload_latencies).expect("overload pass has samples");

    println!(
        "overload: {} clients x {} requests at capacity 1 worker + 2 pending: \
         {} sheds, {} retries, {:.0} req/s goodput, p99 {:.1} ms",
        overload_clients, overload_iters, sheds, overload_retried, goodput, overload_latency.p99_ms
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"servesnap\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"iterations_per_client\": {iters},");
    json.push_str("  \"requests\": [\n");
    for (i, request) in REQUESTS.iter().enumerate() {
        let sep = if i + 1 == REQUESTS.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\"{sep}", json_escape(request));
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"cold\": {},", cold.json());
    let mut phase_obj = String::from("{");
    for (i, (phase, micros)) in cold_phase_micros.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(phase_obj, "{sep}\"{}\": {micros}", json_escape(phase));
    }
    phase_obj.push('}');
    let _ = writeln!(json, "  \"cold_phase_micros\": {phase_obj},");
    let _ = writeln!(json, "  \"warm\": {},", warm.json());
    let _ = writeln!(json, "  \"warm_wall_seconds\": {warm_wall_s:.4},");
    let _ = writeln!(json, "  \"warm_requests_per_second\": {throughput:.1},");
    let _ = writeln!(
        json,
        "  \"replay\": {{\"logged_requests\": {}, \"ok\": {}, \"failed\": {}, \
         \"latency\": {}}},",
        replayed,
        replay.ok,
        replay.failed,
        replay_latency.json()
    );
    let _ = writeln!(
        json,
        "  \"solution_cache\": {{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \
         \"evictions\": {}, \"expiries\": {}, \"failures\": {}, \"hit_rate\": {:.4}}},",
        sol.hits,
        sol.misses,
        sol.coalesced,
        sol.evictions,
        sol.expiries,
        sol.failures,
        sol.hit_rate()
    );
    let _ = writeln!(
        json,
        "  \"registry\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"expiries\": {}}},",
        reg.hits, reg.misses, reg.evictions, reg.expiries
    );
    let _ = writeln!(
        json,
        "  \"overload\": {{\"clients\": {overload_clients}, \
         \"requests_per_client\": {overload_iters}, \"workers\": 1, \"max_pending\": 2, \
         \"fault_plan\": \"io:latency=5ms\", \"sheds\": {sheds}, \
         \"retried\": {overload_retried}, \"ok\": {overload_ok}, \
         \"failed\": {overload_failed}, \"wall_seconds\": {overload_wall_s:.4}, \
         \"offered_rps\": {offered_rps:.1}, \"goodput_rps\": {goodput:.1}, \
         \"latency\": {}}}",
        overload_latency.json()
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    server.shutdown();
    std::fs::remove_file(&log_path).ok();

    // The CI gates: a warm pass that hit the cache zero times means the
    // serving tier re-solved repeat traffic; an over-capacity overload
    // pass that shed nothing means admission control regressed; a client
    // that never succeeded despite its retry budget means the resilience
    // loop regressed.
    if sol.hits == 0 {
        eprintln!("error: warm pass recorded zero solution-cache hits — result caching regressed");
        std::process::exit(1);
    }
    if sheds == 0 {
        eprintln!(
            "error: over-capacity offered load recorded zero sheds — admission control regressed"
        );
        std::process::exit(1);
    }
    if overload_failed > 0 {
        eprintln!(
            "error: {overload_failed} overload requests never succeeded despite retries — \
             client resilience regressed"
        );
        std::process::exit(1);
    }
}
