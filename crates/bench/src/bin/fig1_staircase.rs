//! Regenerates **Figure 1** of the paper: the relationship between testing
//! time and TAM width for Core 6 of SOC p93791 — a staircase that drops
//! only at Pareto-optimal widths.
//!
//! Run with: `cargo run --release -p soctam-bench --bin fig1_staircase`
//! Options:  `--soc <name> --core <core-name>` for any other core.

use soctam_bench::opt_value;
use soctam_core::report::{render_plot, staircase};
use soctam_core::soc::benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let soc_name = opt_value(&args, "--soc").unwrap_or_else(|| "p93791".to_owned());
    let soc = benchmarks::by_name(&soc_name).expect("known benchmark");
    let core_name = opt_value(&args, "--core").unwrap_or_else(|| "c06".to_owned());
    let idx = soc
        .core_by_name(&core_name)
        .unwrap_or_else(|| panic!("no core `{core_name}` in {soc_name}"));

    let s = staircase(soc.core(idx).test(), 64);

    println!("Figure 1: testing time vs TAM width for {core_name} of {soc_name}");
    println!();
    let series: Vec<(f64, f64)> = s
        .points
        .iter()
        .map(|p| (p.width as f64, p.time as f64))
        .collect();
    println!("{}", render_plot("T(w) [cycles]", &series, 16, 64));

    println!("Pareto-optimal widths: {:?}", s.pareto_widths);
    println!();
    println!("{:>4} {:>12} {:>8}", "w", "T(w)", "Pareto");
    for p in &s.points {
        let mark = if s.pareto_widths.contains(&p.width) {
            "*"
        } else {
            ""
        };
        println!("{:>4} {:>12} {:>8}", p.width, p.time, mark);
    }

    // The paper's observation on this core: a width of 46 and a width of
    // 47 differ slightly, and 48..64 buy nothing.
    let t46 = s.points[45].time;
    let t47 = s.points[46].time;
    let t64 = s.points[63].time;
    println!();
    println!(
        "T(46) = {t46}, T(47) = {t47}, T(48..64) = {t64} (flat: {})",
        t47 == t64
    );
}
