//! Regenerates **Figure 9** of the paper for SOC p22810:
//!
//! * (a) testing time `T` vs TAM width `W`;
//! * (b) tester data volume `V = W·T` vs `W` (non-monotonic, local minima
//!   at the Pareto-optimal points of the `T` curve);
//! * (c) the normalized cost `C(W)` for `α = 0.5`;
//! * (d) `C(W)` for `α = 0.75`.
//!
//! Run with: `cargo run --release -p soctam-bench --bin fig9`
//! Options:  `--part a|b|c|d` (default: all), `--soc <name>`,
//!           `--min-width A` (default 16), `--max-width B` (default 80).
//!
//! The sweep starts at 16 wires: below that, `V = W·T` degenerates toward
//! the serial-TAM minimum and the paper's non-monotonic structure (local
//! V minima at the Pareto points of the T curve) is swamped.

use soctam_bench::{opt_value, sweep_config};
use soctam_core::flow::TestFlow;
use soctam_core::report::render_plot;
use soctam_core::soc::benchmarks;
use soctam_core::volume::CostCurve;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let soc_name = opt_value(&args, "--soc").unwrap_or_else(|| "p22810".to_owned());
    let part = opt_value(&args, "--part");
    let min_width: u16 = opt_value(&args, "--min-width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let max_width: u16 = opt_value(&args, "--max-width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);

    let soc = benchmarks::by_name(&soc_name).expect("known benchmark");
    let flow = TestFlow::new(&soc, sweep_config());
    eprintln!("sweeping {soc_name} over W = {min_width}..={max_width} ...");
    let points = flow
        .sweep_widths(min_width..=max_width)
        .expect("sweep succeeds");

    let want = |p: &str| part.as_deref().is_none_or(|x| x == p);

    if want("a") {
        let series: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.width as f64, p.time as f64 / 1000.0))
            .collect();
        println!(
            "{}",
            render_plot(
                &format!("Figure 9(a): testing time T (x1000 cycles) vs W, {soc_name}"),
                &series,
                16,
                70
            )
        );
    }
    if want("b") {
        let series: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.width as f64, p.volume as f64 / 10_000.0))
            .collect();
        println!(
            "{}",
            render_plot(
                &format!("Figure 9(b): tester memory depth V (x10000 bits) vs W, {soc_name}"),
                &series,
                16,
                70
            )
        );
        // The paper's headline observation: the global V minimum does not
        // sit at the width of minimum testing time.
        let v_min = points
            .iter()
            .min_by_key(|p| (p.volume, p.width))
            .expect("points");
        let t_min = points
            .iter()
            .min_by_key(|p| (p.time, p.width))
            .expect("points");
        println!(
            "global V minimum at W = {} (V = {}), while T minimum at W = {} (T = {})",
            v_min.width, v_min.volume, t_min.width, t_min.time
        );
        println!();
    }
    for (p, alpha) in [("c", 0.5), ("d", 0.75)] {
        if !want(p) {
            continue;
        }
        let curve = CostCurve::new(&points, alpha);
        let series: Vec<(f64, f64)> = curve
            .points()
            .iter()
            .map(|q| (q.width as f64, q.cost))
            .collect();
        println!(
            "{}",
            render_plot(
                &format!("Figure 9({p}): cost function C(W), alpha = {alpha}, {soc_name}"),
                &series,
                16,
                70
            )
        );
        let eff = curve.effective_point();
        println!(
            "W_eff = {} (C_min = {:.3}, T = {}, V = {})",
            eff.width, eff.cost, eff.time, eff.volume
        );
        println!();
    }
}
