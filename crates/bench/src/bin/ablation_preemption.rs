//! Preemption-budget study — the investigation the paper's §6 explicitly
//! calls for: how do testing time, preemption usage, and scan penalties
//! move as `max_preempts` grows?
//!
//! One `ContextRegistry` backs the whole ablation: each budget variant's
//! context compiles exactly once per SOC and is reused for every width
//! (the `context_reuse` suite pins zero redundant compiles across
//! repeated sweeps of the same variants).
//!
//! Run with: `cargo run --release -p soctam-bench --bin ablation_preemption`
//! Options:  `--soc <name>`, `--width W`.

use soctam_bench::{headline_config, opt_value};
use soctam_core::report::{preemption_sweep_with, render_preemption_sweep};
use soctam_core::schedule::ContextRegistry;
use soctam_core::soc::benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only = opt_value(&args, "--soc");
    let width: Option<u16> = opt_value(&args, "--width").and_then(|v| v.parse().ok());
    let budgets = [0u32, 1, 2, 3, 4];
    let cfg = headline_config();
    let registry = ContextRegistry::default();

    println!("Preemption-budget study (larger cores granted max_preempts = budget)");
    println!();
    for name in benchmarks::NAMES {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let w = width.unwrap_or(benchmarks::table1_widths(name)[1]);
        match preemption_sweep_with(&registry, &soc, w, &budgets, &cfg) {
            Ok(rows) => println!("{}", render_preemption_sweep(name, w, &rows)),
            Err(e) => eprintln!("{name}: failed: {e}"),
        }
    }
    println!("budget 0 = non-preemptive; time gains beyond budget 2 are usually");
    println!("exhausted — each further split costs another scan-in + scan-out");
}
