//! Heuristic ablation: quantifies the contribution of each §4 packing
//! heuristic — the Pareto preferred-width bump (`d`), rectangle insertion
//! into idle time (3-bit squeeze), and the width-increase rule — by
//! disabling them one at a time.
//!
//! Run with: `cargo run --release -p soctam-bench --bin ablation_heuristics`

use std::sync::Arc;

use soctam_core::schedule::{schedule_best_with, CompiledSoc, HeuristicToggles, SchedulerConfig};
use soctam_core::soc::benchmarks;

/// Heuristic toggles are run parameters, so all five toggle sets of one
/// `(SOC, W)` cell share one compiled context instead of recompiling
/// per cell.
fn best_with(ctx: &CompiledSoc, w: u16, toggles: HeuristicToggles) -> u64 {
    let base = SchedulerConfig::new(w).with_toggles(toggles);
    let ms: Vec<u32> = (1..=10).chain([15, 22, 30, 45, 60]).collect();
    schedule_best_with(ctx, &base, ms, 0..=4)
        .expect("schedulable")
        .0
        .makespan()
}

fn main() {
    println!("Heuristic ablation (testing time in cycles; best over m/d sweep)");
    println!(
        "{:<8} {:>3} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "SOC", "W", "all on", "no bump", "no idlefill", "no widthincr", "none"
    );
    for name in benchmarks::NAMES {
        let soc = Arc::new(benchmarks::by_name(name).expect("known benchmark"));
        for w in benchmarks::table1_widths(name) {
            let ctx = CompiledSoc::compile_arc(
                Arc::clone(&soc),
                SchedulerConfig::new(w).effective_w_max(),
            );
            let all = best_with(&ctx, w, HeuristicToggles::default());
            let no_bump = best_with(
                &ctx,
                w,
                HeuristicToggles {
                    pareto_bump: false,
                    ..HeuristicToggles::default()
                },
            );
            let no_fill = best_with(
                &ctx,
                w,
                HeuristicToggles {
                    idle_fill: false,
                    ..HeuristicToggles::default()
                },
            );
            let no_incr = best_with(
                &ctx,
                w,
                HeuristicToggles {
                    width_increase: false,
                    ..HeuristicToggles::default()
                },
            );
            let none = best_with(&ctx, w, HeuristicToggles::none());
            println!(
                "{:<8} {:>3} {:>10} {:>12} {:>12} {:>14} {:>10}",
                name, w, all, no_bump, no_fill, no_incr, none
            );
        }
    }
    println!();
    println!("columns >= 'all on' show how much each disabled heuristic was contributing");
}
