//! Cluster snapshot: measure how the consistent-hash front (`soctam
//! balance`) scales the serving tier across backend daemons, and prove
//! the cluster's resilience contract under a mid-replay backend kill.
//!
//! **Scaling section.** For each cluster size in 1, 2, 4: start that many
//! in-process daemons (each with a small injected per-request service
//! time, so throughput is bounded by backend capacity rather than
//! loopback overhead) behind one `Balancer` front, round-trip a set of
//! distinct cheap request keys once cold, then hammer the same keys from
//! concurrent client threads. Per-backend `/metrics` scrapes verify that
//! the consistent hash kept the shard caches **disjoint** (solution-cache
//! misses across backends sum to exactly the key count) and, at two or
//! more backends, that every shard took a share. The snapshot **fails**
//! (exit 1) if two backends do not deliver at least 1.5x the one-backend
//! warm throughput, or if the disjointness accounting is off.
//!
//! **Chaos section.** A fresh two-backend cluster is warmed, then a
//! client thread replays the key set repeatedly through the front while
//! the main thread kills one backend mid-replay. The front must divert
//! the dead shard's keys to the survivor with **zero** client-visible
//! failures and a non-zero `soctam_balance_failover_total`; either
//! regression fails the snapshot.
//!
//! Results land in `BENCH_cluster.json`.
//!
//! Run with: `cargo run --release -p soctam-bench --bin clustersnap`
//! Options:  `--quick` shrinks the warm pass (the CI smoke);
//!           `--clients <n>` client threads (default 16 — enough serial
//!           clients that every shard's pool stays saturated even when
//!           the ring splits demand unevenly at an instant);
//!           `--iters <n>` warm iterations per client (default 12, quick 4);
//!           `--out <file>` changes the output path.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use soctam_bench::opt_value;
use soctam_core::fault::FaultPlan;
use soctam_server::balance::{Balancer, BalancerConfig};
use soctam_server::client::{self, LatencySummary};
use soctam_server::{Server, ServerConfig};

/// Distinct cheap request keys: each is its own solution-cache entry and
/// its own point on the ring, so shard disjointness is exactly countable.
const KEY_COUNT: usize = 24;

/// Injected per-request service time on every backend. Cheap `bounds`
/// requests answer in microseconds from a warm cache; the floor makes
/// backend capacity the bottleneck so the throughput curve measures the
/// cluster, not loopback syscall overhead.
const SERVICE_FLOOR: &str = "io:latency=2ms";

fn keys() -> Vec<String> {
    (1..=KEY_COUNT)
        .map(|w| format!("bounds d695 --widths {w}"))
        .collect()
}

/// Reads one sample out of a Prometheus exposition (`name` includes the
/// label set for labelled samples).
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("no metric `{name}` in:\n{metrics}"))
}

/// One backend daemon for the cluster: enough workers that the front's
/// pooled connections never pin them all (probes and scrapes always find
/// a free worker), plus the injected service-time floor.
fn backend() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 3,
            fault_plan: Some(Arc::new(
                FaultPlan::parse(SERVICE_FLOOR).expect("static plan parses"),
            )),
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral backend bind")
}

fn front(backends: &[SocketAddr], clients: usize) -> Balancer {
    Balancer::bind(
        "127.0.0.1:0",
        backends,
        BalancerConfig {
            // One front worker per client connection, with headroom.
            threads: clients + 4,
            probe_interval: Duration::from_millis(200),
            retries: 8,
            backoff: Duration::from_millis(5),
            backend_conns: 2,
            ..BalancerConfig::default()
        },
    )
    .expect("ephemeral front bind")
}

/// One cluster size's measurements.
struct ScalePoint {
    backends: usize,
    warm_rps: f64,
    warm: LatencySummary,
    wall_s: f64,
    shard_misses: Vec<u64>,
    shard_hits: Vec<u64>,
}

/// Stands up `n` backends behind a front, runs the cold + warm passes,
/// and checks the disjoint-shard accounting on the way out.
fn run_scale_point(n: usize, clients: usize, iters: usize) -> ScalePoint {
    let backends: Vec<Server> = (0..n).map(|_| backend()).collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(Server::local_addr).collect();
    let front = front(&addrs, clients);
    let front_addr = front.local_addr();
    let keys = keys();

    // Cold pass: every key solved exactly once, on exactly one shard.
    let mut conn = client::Connection::connect(front_addr).expect("cold connect");
    for key in &keys {
        let response = conn.request(key).expect("cold round trip");
        assert!(client::response_ok(&response), "cold `{key}`: {response}");
    }

    // Warm pass: concurrent clients hammer the key set at rotated
    // offsets; every answer must come from a warm shard cache.
    let t0 = Instant::now();
    let per_client: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|offset| {
                let keys = &keys;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(iters * keys.len());
                    let mut conn = client::Connection::connect(front_addr).expect("warm connect");
                    for round in 0..iters {
                        for i in 0..keys.len() {
                            let key = &keys[(i + offset + round) % keys.len()];
                            let t0 = Instant::now();
                            let response = conn.request(key).expect("warm round trip");
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            assert!(client::response_ok(&response), "warm `{key}`: {response}");
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let latencies: Vec<f64> = per_client.into_iter().flatten().collect();
    let warm = LatencySummary::of_millis(latencies).expect("warm pass has samples");
    let warm_rps = warm.count as f64 / wall_s;

    // Disjointness: each backend's own solution cache solved exactly the
    // keys it owns — misses across shards sum to the key count, and with
    // multiple backends every shard carries warm traffic.
    let mut shard_misses = Vec::with_capacity(n);
    let mut shard_hits = Vec::with_capacity(n);
    for server in &backends {
        let stats = server.engine().solution_stats().expect("cache enabled");
        shard_misses.push(stats.misses);
        shard_hits.push(stats.hits);
    }
    let front_metrics = front.metrics();
    assert_eq!(
        metric_value(&front_metrics, "soctam_balance_failover_total"),
        0,
        "healthy scaling pass must not fail over"
    );

    front.shutdown();
    for server in backends {
        server.shutdown();
    }

    ScalePoint {
        backends: n,
        warm_rps,
        warm,
        wall_s,
        shard_misses,
        shard_hits,
    }
}

/// The chaos pass: kill one of two backends mid-replay; the client must
/// see zero failures and the front must book the diverted keys.
struct ChaosOutcome {
    replayed: usize,
    failed: usize,
    failovers: u64,
}

fn run_chaos_pass(rounds: usize) -> ChaosOutcome {
    let backend_a = backend();
    let backend_b = backend();
    let addrs = [backend_a.local_addr(), backend_b.local_addr()];
    let front = front(&addrs, 4);
    let front_addr = front.local_addr();
    let keys = keys();

    // Warm both shards, then replay the whole key set `rounds` times on a
    // client thread while the main thread kills backend A mid-replay.
    let mut conn = client::Connection::connect(front_addr).expect("chaos warm connect");
    for key in &keys {
        let response = conn.request(key).expect("chaos warm round trip");
        assert!(
            client::response_ok(&response),
            "chaos warm `{key}`: {response}"
        );
    }
    drop(conn);

    let replayer = std::thread::spawn(move || {
        let mut conn = client::Connection::connect(front_addr).expect("replay connect");
        let mut failed = 0usize;
        let mut replayed = 0usize;
        for _ in 0..rounds {
            for key in &keys {
                replayed += 1;
                match conn.request(key) {
                    Ok(response) if client::response_ok(&response) => {}
                    // A reply that is not ok — shed, transient, or a
                    // severed front — is a client-visible failure; the
                    // front's own failover is supposed to absorb these.
                    _ => failed += 1,
                }
            }
        }
        (replayed, failed)
    });

    // Let the replay get going, then pull a backend out from under it.
    std::thread::sleep(Duration::from_millis(rounds as u64 * 2));
    backend_a.shutdown();

    let (replayed, failed) = replayer.join().expect("replay thread panicked");
    let failovers = metric_value(&front.metrics(), "soctam_balance_failover_total");

    front.shutdown();
    backend_b.shutdown();

    ChaosOutcome {
        replayed,
        failed,
        failovers,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = opt_value(&args, "--clients")
        .map_or(16, |v| v.parse().expect("--clients takes a count"))
        .max(1);
    let iters: usize = opt_value(&args, "--iters")
        .map_or(if quick { 4 } else { 12 }, |v| {
            v.parse().expect("--iters takes a count")
        })
        .max(1);
    let out_path = opt_value(&args, "--out").unwrap_or_else(|| "BENCH_cluster.json".to_owned());

    println!(
        "clustersnap: {KEY_COUNT} keys, {clients} clients x {iters} warm iterations, \
         backends at {SERVICE_FLOOR}"
    );

    let mut points = Vec::new();
    for n in [1usize, 2, 4] {
        let point = run_scale_point(n, clients, iters);
        println!(
            "backends={}: {:.0} req/s warm, p50 {:.2} ms, p99 {:.2} ms, \
             shard misses {:?}, shard hits {:?}",
            point.backends,
            point.warm_rps,
            point.warm.p50_ms,
            point.warm.p99_ms,
            point.shard_misses,
            point.shard_hits
        );
        points.push(point);
    }

    let chaos_rounds = if quick { 10 } else { 30 };
    let chaos = run_chaos_pass(chaos_rounds);
    println!(
        "chaos: {} replayed through a mid-replay backend kill, {} failed, {} failovers",
        chaos.replayed, chaos.failed, chaos.failovers
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"clustersnap\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"distinct_keys\": {KEY_COUNT},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"iterations_per_client\": {iters},");
    let _ = writeln!(json, "  \"backend_fault_plan\": \"{SERVICE_FLOOR}\",");
    json.push_str("  \"scaling\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let misses: Vec<String> = p.shard_misses.iter().map(u64::to_string).collect();
        let hits: Vec<String> = p.shard_hits.iter().map(u64::to_string).collect();
        let _ = writeln!(
            json,
            "    {{\"backends\": {}, \"warm_requests_per_second\": {:.1}, \
             \"warm_wall_seconds\": {:.4}, \"shard_misses\": [{}], \"shard_hits\": [{}], \
             \"latency\": {}}}{sep}",
            p.backends,
            p.warm_rps,
            p.wall_s,
            misses.join(", "),
            hits.join(", "),
            p.warm.json()
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"chaos\": {{\"backends\": 2, \"replayed\": {}, \"failed\": {}, \
         \"failovers\": {}}}",
        chaos.replayed, chaos.failed, chaos.failovers
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // The CI gates.
    for p in &points {
        let total: u64 = p.shard_misses.iter().sum();
        if total != KEY_COUNT as u64 {
            eprintln!(
                "error: {} backends solved {} keys for {} distinct requests — \
                 shard caches are not disjoint",
                p.backends, total, KEY_COUNT
            );
            std::process::exit(1);
        }
        if p.backends > 1 && p.shard_hits.contains(&0) {
            eprintln!(
                "error: a shard in the {}-backend cluster served zero warm hits — \
                 the ring is not spreading keys: {:?}",
                p.backends, p.shard_hits
            );
            std::process::exit(1);
        }
    }
    let rps_1 = points[0].warm_rps;
    let rps_2 = points[1].warm_rps;
    if rps_2 < 1.5 * rps_1 {
        eprintln!(
            "error: two backends delivered {rps_2:.0} req/s vs {rps_1:.0} req/s on one — \
             under the 1.5x scaling gate"
        );
        std::process::exit(1);
    }
    if chaos.failed > 0 {
        eprintln!(
            "error: {} of {} replayed requests failed through a backend kill — \
             failover regressed",
            chaos.failed, chaos.replayed
        );
        std::process::exit(1);
    }
    if chaos.failovers == 0 {
        eprintln!("error: the chaos pass booked zero failovers — the kill was not exercised");
        std::process::exit(1);
    }
}
