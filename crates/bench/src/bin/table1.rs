//! Regenerates **Table 1** of the paper: wrapper/TAM co-optimization and
//! test scheduling results (lower bound, non-preemptive, preemptive, and
//! power-constrained testing times) for the four benchmark SOCs.
//!
//! Run with: `cargo run --release -p soctam-bench --bin table1`
//! Options:  `--soc <name>` restricts to one SOC; `--quick` uses the small
//! parameter sweep.

use std::time::Instant;

use soctam_bench::{headline_config, opt_value};
use soctam_core::flow::{FlowConfig, ParamSweep};
use soctam_core::report::{render_table1, table1_rows};
use soctam_core::soc::benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only = opt_value(&args, "--soc");
    let cfg = if args.iter().any(|a| a == "--quick") {
        FlowConfig {
            sweep: ParamSweep::quick(),
            ..FlowConfig::new()
        }
    } else {
        headline_config()
    };

    println!("Table 1: wrapper/TAM co-optimization and test scheduling");
    println!("(testing time in cycles; best over m/d/slack parameter sweep)");
    println!();

    let mut rows = Vec::new();
    for name in benchmarks::NAMES {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let t0 = Instant::now();
        match table1_rows(&soc, &cfg) {
            Ok(mut r) => {
                eprintln!("{name}: {:.1}s", t0.elapsed().as_secs_f32());
                rows.append(&mut r);
            }
            Err(e) => eprintln!("{name}: failed: {e}"),
        }
    }
    println!("{}", render_table1(&rows));
}
