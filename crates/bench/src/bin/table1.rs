//! Regenerates **Table 1** of the paper: wrapper/TAM co-optimization and
//! test scheduling results (lower bound, non-preemptive, preemptive, and
//! power-constrained testing times) for the four benchmark SOCs.
//!
//! Run with: `cargo run --release -p soctam-bench --bin table1`
//! Options:  `--soc <name>` restricts to one SOC; `--quick` uses the small
//! parameter sweep; `--json` emits the rows as a JSON document instead of
//! the text table.

use std::time::Instant;

use soctam_bench::{headline_config, json_escape, opt_value};
use soctam_core::flow::{FlowConfig, ParamSweep};
use soctam_core::report::{render_table1, table1_rows, Table1Row};
use soctam_core::soc::benchmarks;

fn json_table1(sweep: &str, rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"table\": \"table1\",\n");
    out.push_str(&format!("  \"sweep\": \"{}\",\n", json_escape(sweep)));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"soc\": \"{}\", \"width\": {}, \"lower_bound\": {}, \
             \"non_preemptive\": {}, \"preemptive\": {}, \"power_constrained\": {}}}{sep}\n",
            json_escape(&r.soc),
            r.width,
            r.lower_bound,
            r.non_preemptive,
            r.preemptive,
            r.power_constrained
        ));
    }
    out.push_str("  ]\n}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only = opt_value(&args, "--soc");
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let cfg = if quick {
        FlowConfig {
            sweep: ParamSweep::quick(),
            ..FlowConfig::new()
        }
    } else {
        headline_config()
    };

    if !json {
        println!("Table 1: wrapper/TAM co-optimization and test scheduling");
        println!("(testing time in cycles; best over m/d/slack parameter sweep)");
        println!();
    }

    let mut rows = Vec::new();
    for name in benchmarks::NAMES {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let t0 = Instant::now();
        match table1_rows(&soc, &cfg) {
            Ok(mut r) => {
                eprintln!("{name}: {:.1}s", t0.elapsed().as_secs_f32());
                rows.append(&mut r);
            }
            Err(e) => eprintln!("{name}: failed: {e}"),
        }
    }
    if json {
        let sweep = if quick { "quick" } else { "headline" };
        println!("{}", json_table1(sweep, &rows));
    } else {
        println!("{}", render_table1(&rows));
    }
}
