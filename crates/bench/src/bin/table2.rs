//! Regenerates **Table 2** of the paper: TAM widths for tester data volume
//! reduction — `T_min`, `V_min`, and the effective TAM widths `W_eff` for
//! the per-SOC `α` values.
//!
//! Run with: `cargo run --release -p soctam-bench --bin table2`
//! Options:  `--soc <name>`, `--min-width A` (default 16), `--max-width B`
//! (default 64).
//!
//! The sweep starts at 16 wires because `V = W·T` is trivially minimized
//! by a serial one-wire TAM; the paper's Table 2 minima (W = 22..44)
//! only emerge over practical width ranges.

use std::time::Instant;

use soctam_bench::{opt_value, sweep_config};
use soctam_core::report::{paper_alphas, render_table2, table2};
use soctam_core::soc::benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only = opt_value(&args, "--soc");
    let min_width: u16 = opt_value(&args, "--min-width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let max_width: u16 = opt_value(&args, "--max-width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let cfg = sweep_config();

    println!("Table 2: TAM widths for tester data volume reduction");
    println!("(sweep over W = {min_width}..={max_width}; V = W*T)");
    println!();

    for name in benchmarks::NAMES {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let alphas = paper_alphas(name);
        let t0 = Instant::now();
        match table2(&soc, min_width..=max_width, &alphas, &cfg) {
            Ok(t) => {
                eprintln!("{name}: {:.1}s", t0.elapsed().as_secs_f32());
                println!("{}", render_table2(&t));
            }
            Err(e) => eprintln!("{name}: failed: {e}"),
        }
    }
}
