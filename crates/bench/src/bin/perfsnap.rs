//! Performance snapshot of the flow's sweep hot path.
//!
//! For each benchmark SOC, times the best-of parameter sweep at the SOC's
//! widest Table 1 TAM width — the quick sweep always, the headline
//! (extended) sweep unless `--quick` — and writes the measurements to
//! `BENCH_sweep.json`, seeding the repo's perf trajectory.
//!
//! Each timing is split into *compile* (obtaining the `CompiledSoc`
//! context from the shared `ContextRegistry`: a real compilation on the
//! first request for a `(SOC, w_max, budget)` key, a cache hit ever after)
//! and *solve* (the actual parameter sweep over the shared context);
//! `seconds` stays as the total for trajectory continuity.
//!
//! The snapshot doubles as the CI perf-smoke gate for the serving tier:
//! it records the registry's hit/miss counters and the process-wide
//! context-compile count in the JSON, and **fails** (exit 1) if the run
//! compiled more than one context per distinct `(SOC, budget)` key —
//! i.e. if cross-request caching ever regresses to recompiling.
//!
//! Run with: `cargo run --release -p soctam-bench --bin perfsnap`
//! Options:  `--quick` times only the quick sweep (the CI perf smoke);
//!           `--soc <name>` restricts to one SOC;
//!           `--out <file>` changes the output path.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use soctam_bench::{headline_config, json_escape, opt_value};
use soctam_core::flow::{FlowConfig, ParamSweep, SweepStats, TestFlow};
use soctam_core::schedule::obs;
use soctam_core::schedule::{
    instrument, schedule_best_with_stats, ContextRegistry, SchedulerConfig,
};
use soctam_core::soc::benchmarks;

struct Timing {
    sweep: &'static str,
    compile_seconds: f64,
    solve_seconds: f64,
    makespan: u64,
    params: (u32, u16, u16),
    stats: SweepStats,
}

impl Timing {
    fn total_seconds(&self) -> f64 {
        self.compile_seconds + self.solve_seconds
    }
}

fn time_sweep(
    registry: &ContextRegistry,
    soc: &Arc<soctam_core::soc::Soc>,
    width: u16,
    sweep: &'static str,
    cfg: &FlowConfig,
) -> Timing {
    let t0 = Instant::now();
    let ctx = registry.get_or_compile(soc, cfg.w_max, cfg.power.resolve(soc));
    let flow = TestFlow::with_context(ctx, cfg.clone());
    let menus = flow.menus_for(width); // prewarm the width's menu cap
    let compile_seconds = t0.elapsed().as_secs_f64();
    drop(menus);
    let t1 = Instant::now();
    let (schedule, params, stats) = flow
        .best_schedule_detailed(width)
        .expect("benchmark SOCs are schedulable");
    Timing {
        sweep,
        compile_seconds,
        solve_seconds: t1.elapsed().as_secs_f64(),
        makespan: schedule.makespan(),
        params,
        stats,
    }
}

/// One cold-start measurement: a fresh registry serving its very first
/// request for this SOC, split into phases by the span recorder.
struct ColdTiming {
    name: &'static str,
    width: u16,
    total_seconds: f64,
    compile_seconds: f64,
    solve_seconds: f64,
    /// The full per-phase exclusive split (`{"context_compile": µs, ...}`,
    /// non-zero phases only), straight from the span recorder.
    phases_json: String,
    makespan: u64,
    lower_bound: u64,
    params: (u32, u16),
    stats: SweepStats,
    menu_builds: u64,
    touched_caps: u64,
}

/// Times the cold path — fresh registry, first request — for one SOC at
/// its widest Table 1 width, under an armed span recorder: the
/// compile/solve split comes from the `context_compile` and
/// `sweep`+`menu_build` phases the work sites record, not from an ad-hoc
/// stopwatch around call boundaries. The sweep runs the extended percent
/// tail so saturating SOCs (p34392 at W=32) reach their lower bound and
/// exercise the bound-gated cutoff.
fn time_cold(name: &'static str, width: u16) -> ColdTiming {
    let soc = Arc::new(benchmarks::by_name(name).expect("known benchmark"));
    let base = SchedulerConfig::new(width);
    let registry = ContextRegistry::default();
    let builds_before = instrument::menu_builds();

    obs::trace_begin();
    let t0 = Instant::now();
    // Lazy context compilation builds constraint tables only; rectangle
    // menus are deferred to first use inside the sweep.
    let ctx = registry.get_or_compile(&soc, base.w_max, None);
    // Bound-gated best-of sweep over the shared context.
    let percents = (1..=10).chain([12, 15, 18, 22, 26, 30, 35, 40, 45, 52, 60]);
    let (schedule, m, d, stats) =
        schedule_best_with_stats(&ctx, &base, percents, 0..=4, true).expect("cold sweep");
    let total_seconds = t0.elapsed().as_secs_f64();
    let trace = obs::trace_end().expect("the recorder armed above");
    let compile_seconds = trace.phase_total(obs::Phase::ContextCompile) as f64 / 1e6;
    let solve_seconds = (trace.phase_total(obs::Phase::Sweep)
        + trace.phase_total(obs::Phase::MenuBuild)) as f64
        / 1e6;

    // The caps this request touched: the full cap (forced by the cutoff's
    // lower bound) and, when narrower, the request width's effective cap —
    // which must be prefix-derived, not rebuilt.
    let touched_caps = if base.effective_w_max() < base.w_max {
        2
    } else {
        1
    };
    ColdTiming {
        name,
        width,
        total_seconds,
        compile_seconds,
        solve_seconds,
        phases_json: trace.phases_json(false),
        makespan: schedule.makespan(),
        lower_bound: ctx.lower_bound(base.tam_width),
        params: (m, d),
        stats,
        menu_builds: instrument::menu_builds() - builds_before,
        touched_caps,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only = opt_value(&args, "--soc");
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = opt_value(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".to_owned());
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let registry = ContextRegistry::default();
    let compiles_before = instrument::context_compiles();

    let mut soc_blocks = Vec::new();
    for name in benchmarks::NAMES {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let soc = Arc::new(benchmarks::by_name(name).expect("known benchmark"));
        let width = *benchmarks::table1_widths(name).last().expect("four widths");

        let mut timings = vec![time_sweep(
            &registry,
            &soc,
            width,
            "quick",
            &FlowConfig {
                sweep: ParamSweep::quick(),
                ..FlowConfig::new()
            },
        )];
        if !quick {
            timings.push(time_sweep(
                &registry,
                &soc,
                width,
                "headline",
                &headline_config(),
            ));
        }
        for t in &timings {
            println!(
                "{name} W={width} {:>8}: {:.3}s ({:.3}s compile + {:.3}s solve), \
                 T = {} (m={}, d={}, slack={}), {} of {} runs ({} deduped)",
                t.sweep,
                t.total_seconds(),
                t.compile_seconds,
                t.solve_seconds,
                t.makespan,
                t.params.0,
                t.params.1,
                t.params.2,
                t.stats.runs_executed,
                t.stats.runs_total,
                t.stats.runs_skipped,
            );
        }
        soc_blocks.push((name, width, timings));
    }

    // Snapshot the warm section's compile count before the cold section
    // deliberately compiles one fresh context per SOC.
    let context_compiles = instrument::context_compiles() - compiles_before;

    // Cold path: a fresh registry's very first request per SOC, the
    // latency a daemon pays before any cache is warm.
    let mut cold_blocks = Vec::new();
    for name in benchmarks::NAMES {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let width = *benchmarks::table1_widths(name).last().expect("four widths");
        let t = time_cold(name, width);
        println!(
            "{name} W={width}     cold: {:.3}s ({:.3}s compile + {:.3}s solve), \
             T = {} (LB {}, m={}, d={}), {} of {} runs ({} cut), \
             {} menu builds / {} caps",
            t.total_seconds,
            t.compile_seconds,
            t.solve_seconds,
            t.makespan,
            t.lower_bound,
            t.params.0,
            t.params.1,
            t.stats.runs_executed,
            t.stats.runs_total,
            t.stats.runs_cut,
            t.menu_builds,
            t.touched_caps,
        );
        cold_blocks.push(t);
    }

    // The serving-tier invariant this snapshot gates for CI: every sweep
    // over one (SOC, budget) key shares a single compiled context. The
    // quick+headline pair hits the registry on its second request, and
    // nothing in the process compiles outside the registry.
    let stats = registry.stats();
    let distinct_keys = soc_blocks.len() as u64; // one (SOC, unlimited-power) key each
    println!(
        "registry: {} hits, {} misses, {} contexts compiled ({} distinct keys, hit rate {:.2})",
        stats.hits,
        stats.misses,
        context_compiles,
        distinct_keys,
        stats.hit_rate()
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"perfsnap\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"registry\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"context_compiles\": {context_compiles}, \"distinct_keys\": {distinct_keys}, \
         \"hit_rate\": {:.4}}},",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate()
    );
    json.push_str("  \"socs\": [\n");
    for (i, (name, width, timings)) in soc_blocks.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"soc\": \"{}\", \"width\": {width}, \"sweeps\": [",
            json_escape(name)
        );
        for (j, t) in timings.iter().enumerate() {
            let sep = if j + 1 == timings.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "      {{\"sweep\": \"{}\", \"seconds\": {:.6}, \
                 \"compile_seconds\": {:.6}, \"solve_seconds\": {:.6}, \
                 \"makespan\": {}, \
                 \"m\": {}, \"d\": {}, \"slack\": {}, \"runs_total\": {}, \
                 \"runs_executed\": {}, \"runs_skipped\": {}}}{sep}",
                t.sweep,
                t.total_seconds(),
                t.compile_seconds,
                t.solve_seconds,
                t.makespan,
                t.params.0,
                t.params.1,
                t.params.2,
                t.stats.runs_total,
                t.stats.runs_executed,
                t.stats.runs_skipped,
            );
        }
        let sep = if i + 1 == soc_blocks.len() { "" } else { "," };
        let _ = writeln!(json, "    ]}}{sep}");
    }
    json.push_str("  ],\n  \"cold\": [\n");
    for (i, t) in cold_blocks.iter().enumerate() {
        let sep = if i + 1 == cold_blocks.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"soc\": \"{}\", \"width\": {}, \
             \"seconds\": {:.6}, \"compile_seconds\": {:.6}, \
             \"solve_seconds\": {:.6}, \"phase_micros\": {}, \
             \"makespan\": {}, \"lower_bound\": {}, \
             \"m\": {}, \"d\": {}, \"runs_total\": {}, \"runs_executed\": {}, \
             \"runs_cut\": {}, \"menu_builds\": {}, \"touched_caps\": {}}}{sep}",
            json_escape(t.name),
            t.width,
            t.total_seconds,
            t.compile_seconds,
            t.solve_seconds,
            t.phases_json,
            t.makespan,
            t.lower_bound,
            t.params.0,
            t.params.1,
            t.stats.runs_total,
            t.stats.runs_executed,
            t.stats.runs_cut,
            t.menu_builds,
            t.touched_caps,
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if context_compiles > distinct_keys {
        eprintln!(
            "error: {context_compiles} context compiles for {distinct_keys} distinct \
             (SOC, budget) keys — cross-request caching regressed"
        );
        std::process::exit(1);
    }

    // Cold-path gates. (i) Lazy compilation must build rectangle menus at
    // most once per width cap the request touched — a second build for the
    // same cap means prefix derivation or the OnceLock full-cap slot
    // regressed to rebuilding.
    for t in &cold_blocks {
        if t.menu_builds > t.touched_caps {
            eprintln!(
                "error: {} cold solve built {} rectangle menus for {} touched width \
                 caps — lazy menu reuse regressed",
                t.name, t.menu_builds, t.touched_caps
            );
            std::process::exit(1);
        }
    }
    // (ii) The bound-gated cutoff must actually prune somewhere: p34392
    // saturates at its widest Table 1 width, so a full benchmark run with
    // zero cut grid points means the gate went dead. (Skipped under
    // `--soc`, which may select only non-saturating SOCs.)
    if only.is_none() && !cold_blocks.iter().any(|t| t.stats.runs_cut > 0) {
        eprintln!("error: no benchmark cut any sweep grid points — the bound gate went dead");
        std::process::exit(1);
    }
}
