//! Baseline comparison (§2's motivation): the paper's flexible-width
//! rectangle packing against fixed-width TAM architectures (\[12, 13\]
//! style, exhaustively optimized) and level-oriented shelf packing
//! (Coffman et al. \[8\]).
//!
//! Run with: `cargo run --release -p soctam-bench --bin ablation_baselines`
//! Options:  `--soc <name>` (default: d695 and p93791, the constraint-free
//! benchmarks).

use soctam_bench::{headline_config, opt_value};
use soctam_core::baseline::{fixed_width_best, session_schedule, shelf_pack};
use soctam_core::flow::TestFlow;
use soctam_core::soc::benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let socs: Vec<String> = match opt_value(&args, "--soc") {
        Some(s) => vec![s],
        None => vec!["d695".to_owned(), "p93791".to_owned()],
    };

    println!("Flexible-width rectangle packing vs baselines (testing time, cycles)");
    println!(
        "{:<8} {:>3} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "SOC", "W", "LB", "flexible", "fixed(k<=3)", "fixed(k<=2)", "shelf", "sessions"
    );

    for name in &socs {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        // One compilation feeds the flexible scheduler, the lower-bound
        // column, and every baseline architecture at every width.
        let flow = TestFlow::new(&soc, headline_config());
        let ctx = flow.context();
        for w in benchmarks::table1_widths(name) {
            let lb = ctx.lower_bound(w);
            let flexible = flow.best_schedule(w).expect("schedulable").0.makespan();
            let fixed3 = fixed_width_best(ctx, w, 3).makespan;
            let fixed2 = fixed_width_best(ctx, w, 2).makespan;
            let shelf = shelf_pack(ctx, w, 5, 1).makespan;
            let sessions = session_schedule(ctx, w).makespan;
            println!(
                "{:<8} {:>3} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
                name, w, lb, flexible, fixed3, fixed2, shelf, sessions
            );
        }
    }
    println!();
    println!("fixed(k) = best static partition of W into at most k buses, LPT core assignment");
    println!("sessions = classic test-session discipline, optimized session count + wire dealing");
}
