//! Criterion benches for the §5 data-volume machinery: width sweeps and
//! cost-curve evaluation (the work behind Figure 9 and Table 2).

use criterion::{criterion_group, criterion_main, Criterion};
use soctam_core::schedule::SchedulerConfig;
use soctam_core::soc::benchmarks;
use soctam_core::volume::{sweep, CostCurve};

fn bench_width_sweep(c: &mut Criterion) {
    let soc = benchmarks::d695();
    let mut group = c.benchmark_group("volume_sweep");
    group.sample_size(10);
    group.bench_function("d695_w8_to_64", |b| {
        b.iter(|| {
            sweep(&soc, 8..=64, &SchedulerConfig::new(1))
                .expect("sweep succeeds")
                .len()
        });
    });
    group.finish();
}

fn bench_cost_curves(c: &mut Criterion) {
    let soc = benchmarks::d695();
    let points = sweep(&soc, 1..=80, &SchedulerConfig::new(1)).expect("sweep succeeds");
    c.bench_function("cost_curve_eval_80pts_5alphas", |b| {
        b.iter(|| {
            [0.1, 0.3, 0.5, 0.75, 0.9]
                .iter()
                .map(|&a| CostCurve::new(&points, a).effective_width())
                .max()
        });
    });
}

criterion_group!(benches, bench_width_sweep, bench_cost_curves);
criterion_main!(benches);
