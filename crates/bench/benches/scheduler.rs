//! Criterion benches for the scheduler — checks the paper's §6 claim that
//! a full TAM-optimization-plus-scheduling run is fast (their 333 MHz
//! Ultra 10 took < 5 s per run; one run here is a single (m, d) point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soctam_core::schedule::{ScheduleBuilder, SchedulerConfig};
use soctam_core::soc::benchmarks;
use soctam_core::soc::synth::SynthConfig;

fn bench_single_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_single_run");
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        for w in [16u16, 64] {
            group.bench_with_input(BenchmarkId::new(name, w), &w, |b, &w| {
                b.iter(|| {
                    ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
                        .run()
                        .expect("schedulable")
                        .makespan()
                });
            });
        }
    }
    group.finish();
}

fn bench_constrained_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_constrained");
    let mut soc = benchmarks::p93791();
    benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
    let p_max = soc.max_core_power();
    group.bench_function("p93791_w64_power_preempt", |b| {
        b.iter(|| {
            ScheduleBuilder::new(&soc, SchedulerConfig::new(64).with_power_limit(p_max))
                .run()
                .expect("schedulable")
                .makespan()
        });
    });
    group.finish();
}

fn bench_scalability(c: &mut Criterion) {
    // Scalability in core count on synthetic SOCs (the paper's "scalable
    // for large industrial SOCs" claim).
    let mut group = c.benchmark_group("schedule_scalability");
    group.sample_size(20);
    for cores in [16usize, 64, 256] {
        let soc = SynthConfig::new(cores).generate(7);
        group.bench_with_input(BenchmarkId::from_parameter(cores), &soc, |b, soc| {
            b.iter(|| {
                ScheduleBuilder::new(soc, SchedulerConfig::new(64))
                    .run()
                    .expect("schedulable")
                    .makespan()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_runs,
    bench_constrained_runs,
    bench_scalability
);
criterion_main!(benches);
