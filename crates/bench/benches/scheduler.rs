//! Criterion benches for the scheduler — checks the paper's §6 claim that
//! a full TAM-optimization-plus-scheduling run is fast (their 333 MHz
//! Ultra 10 took < 5 s per run; one run here is a single (m, d) point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soctam_core::flow::{FlowConfig, ParamSweep, TestFlow};
use soctam_core::schedule::{RectangleMenus, ScheduleBuilder, SchedulerConfig};
use soctam_core::soc::benchmarks;
use soctam_core::soc::synth::SynthConfig;

fn bench_single_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_single_run");
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        for w in [16u16, 64] {
            group.bench_with_input(BenchmarkId::new(name, w), &w, |b, &w| {
                b.iter(|| {
                    ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
                        .run()
                        .expect("schedulable")
                        .makespan()
                });
            });
        }
    }
    group.finish();
}

fn bench_constrained_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_constrained");
    let mut soc = benchmarks::p93791();
    benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
    let p_max = soc.max_core_power();
    group.bench_function("p93791_w64_power_preempt", |b| {
        b.iter(|| {
            ScheduleBuilder::new(&soc, SchedulerConfig::new(64).with_power_limit(p_max))
                .run()
                .expect("schedulable")
                .makespan()
        });
    });
    group.finish();
}

fn bench_scalability(c: &mut Criterion) {
    // Scalability in core count on synthetic SOCs (the paper's "scalable
    // for large industrial SOCs" claim).
    let mut group = c.benchmark_group("schedule_scalability");
    group.sample_size(20);
    for cores in [16usize, 64, 256] {
        let soc = SynthConfig::new(cores).generate(7);
        group.bench_with_input(BenchmarkId::from_parameter(cores), &soc, |b, soc| {
            b.iter(|| {
                ScheduleBuilder::new(soc, SchedulerConfig::new(64))
                    .run()
                    .expect("schedulable")
                    .makespan()
            });
        });
    }
    group.finish();
}

fn bench_menu_sharing(c: &mut Criterion) {
    // The sweep-scale hot path: one shared menu build vs a rebuild per run.
    let mut group = c.benchmark_group("schedule_menu_sharing");
    let soc = benchmarks::p22810();
    let cfg = SchedulerConfig::new(64);
    group.bench_function("p22810_w64_rebuild_per_run", |b| {
        b.iter(|| {
            ScheduleBuilder::new(&soc, cfg.clone())
                .run()
                .expect("schedulable")
                .makespan()
        });
    });
    let menus = RectangleMenus::for_config(&soc, &cfg);
    group.bench_function("p22810_w64_shared_menus", |b| {
        b.iter(|| {
            ScheduleBuilder::new(&soc, cfg.clone())
                .with_menus(&menus)
                .run()
                .expect("schedulable")
                .makespan()
        });
    });
    group.finish();
}

fn bench_flow_sweep(c: &mut Criterion) {
    // The quick (m, d, slack) grid end to end: shared menus + dedup +
    // parallel execution inside `best_schedule`.
    let mut group = c.benchmark_group("flow_quick_sweep");
    group.sample_size(10);
    for name in ["d695", "p22810"] {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let cfg = FlowConfig {
            sweep: ParamSweep::quick(),
            ..FlowConfig::new()
        };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                TestFlow::new(&soc, cfg.clone())
                    .best_schedule(64)
                    .expect("schedulable")
                    .0
                    .makespan()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_runs,
    bench_constrained_runs,
    bench_scalability,
    bench_menu_sharing,
    bench_flow_sweep
);
criterion_main!(benches);
