//! Criterion benches for wrapper design and rectangle construction — the
//! per-core cost behind Figure 1 and `Initialize`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soctam_core::soc::benchmarks;
use soctam_core::wrapper::{CoreTest, RectangleSet, WrapperDesign};

fn bench_design_wrapper(c: &mut Criterion) {
    let core = CoreTest::builder()
        .inputs(417)
        .outputs(363)
        .uniform_scan_chains(30, 500)
        .uniform_scan_chains(16, 480)
        .patterns(229)
        .build()
        .expect("valid core");
    let mut group = c.benchmark_group("design_wrapper");
    for width in [1u16, 8, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| WrapperDesign::design(&core, w).expect("valid width"));
        });
    }
    group.finish();
}

fn bench_rectangle_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("rectangle_set_soc");
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        group.bench_function(name, |b| {
            b.iter(|| {
                soc.cores()
                    .iter()
                    .map(|core| RectangleSet::build(core.test(), 64).min_area())
                    .sum::<u128>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_design_wrapper, bench_rectangle_sets);
criterion_main!(benches);
