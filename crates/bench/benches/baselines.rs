//! Criterion benches comparing the flexible scheduler's CPU cost against
//! the baselines (the paper reports orders-of-magnitude speedups over the
//! exact fixed-width enumeration of \[12\]).

use criterion::{criterion_group, criterion_main, Criterion};
use soctam_core::baseline::{fixed_width_best, shelf_pack};
use soctam_core::schedule::{CompiledSoc, ScheduleBuilder, SchedulerConfig};
use soctam_core::soc::benchmarks;

fn bench_methods(c: &mut Criterion) {
    let soc = benchmarks::p93791();
    let ctx = CompiledSoc::compile(&soc, 64);
    let mut group = c.benchmark_group("method_cpu_cost_p93791_w32");
    group.sample_size(20);
    group.bench_function("flexible_packing", |b| {
        b.iter(|| {
            ScheduleBuilder::new(&soc, SchedulerConfig::new(32))
                .with_context(&ctx)
                .run()
                .expect("schedulable")
                .makespan()
        });
    });
    group.bench_function("fixed_width_k3_exhaustive", |b| {
        b.iter(|| fixed_width_best(&ctx, 32, 3).makespan);
    });
    group.bench_function("shelf_packing", |b| {
        b.iter(|| shelf_pack(&ctx, 32, 5, 1).makespan);
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
