//! Criterion microbench for the Figure 7 `Conflict` check: the word-level
//! mask implementation against its naive per-index reference, swept over
//! every candidate core of each benchmark SOC in a representative
//! mid-pack scheduler state.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use soctam_core::schedule::{BitSet, ConstraintSet};
use soctam_core::soc::benchmarks;

/// A deterministic mid-pack state: roughly a third of the cores are
/// complete, a disjoint third are currently scheduled, the rest are the
/// candidates `Conflict` gets asked about.
struct MidPack {
    cs: ConstraintSet,
    complete: BitSet,
    scheduled: BitSet,
    scheduled_flags: Vec<bool>,
    bist_load: Vec<u32>,
    scheduled_power: u64,
    p_max: Option<u64>,
}

fn mid_pack(soc: &soctam_core::soc::Soc) -> MidPack {
    let cs = ConstraintSet::compile(soc);
    let n = cs.len();
    let complete_flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let scheduled_flags: Vec<bool> = (0..n).map(|i| i % 3 == 1).collect();
    let mut bist_load = vec![0u32; cs.num_bist_engines()];
    let mut scheduled_power = 0u64;
    for (i, &s) in scheduled_flags.iter().enumerate() {
        if s {
            if let Some(e) = cs.bist_engine(i) {
                bist_load[e] += 1;
            }
            scheduled_power += cs.power(i);
        }
    }
    let p_max = Some(scheduled_power + soc.max_core_power());
    MidPack {
        complete: BitSet::from_bools(&complete_flags),
        scheduled: BitSet::from_bools(&scheduled_flags),
        scheduled_flags,
        bist_load,
        scheduled_power,
        p_max,
        cs,
    }
}

/// One full candidate sweep — what `Assign` does per scheduling instant.
fn sweep(state: &MidPack, masked: bool) -> u32 {
    let mut blocked = 0u32;
    for core in 0..state.cs.len() {
        if state.scheduled_flags[core] {
            continue;
        }
        let hit = if masked {
            state.cs.conflicts(
                core,
                &state.complete,
                &state.scheduled,
                &state.bist_load,
                state.scheduled_power,
                state.p_max,
            )
        } else {
            state.cs.conflicts_reference(
                core,
                &state.complete,
                &state.scheduled,
                &state.bist_load,
                state.scheduled_power,
                state.p_max,
            )
        };
        blocked += u32::from(hit);
    }
    blocked
}

fn bench_conflicts(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_check");
    for name in benchmarks::NAMES {
        let soc = benchmarks::by_name(name).expect("known benchmark");
        let state = mid_pack(&soc);
        // Sanity: both paths agree before we time them.
        assert_eq!(sweep(&state, true), sweep(&state, false));
        group.bench_with_input(BenchmarkId::new("masks", name), &state, |b, state| {
            b.iter(|| sweep(black_box(state), true));
        });
        group.bench_with_input(BenchmarkId::new("reference", name), &state, |b, state| {
            b.iter(|| sweep(black_box(state), false));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conflicts);
criterion_main!(benches);
