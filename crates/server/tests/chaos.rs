//! Chaos loopback suite: a live daemon on 127.0.0.1 with deterministic
//! fault injection armed, hammered by real TCP clients.
//!
//! What this binary pins, per the resilience contract:
//!
//! * the daemon **never exits** under injected solver panics, worker
//!   panics, severed connections, or overload — every test ends with a
//!   healthy `/healthz`;
//! * **non-faulted responses stay bit-identical** to direct `Engine`
//!   calls — fault firing is counter-based, so which requests are struck
//!   is knowable in advance;
//! * **every injected fault is visible in `/metrics`**, alongside the
//!   matching recovery counter;
//! * **retrying clients eventually succeed**: sheds, transient errors,
//!   and severed transports are absorbed by the backoff policy.
//!
//! Tests serialize on one mutex (shared convention with the loopback
//! suite): fault counters and the process-wide instrumentation are then
//! attributable to one test at a time.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use soctam_core::engine::Engine;
use soctam_core::fault::FaultPlan;
use soctam_core::protocol::{self, benchmark_resolver};
use soctam_server::client::{self, RetryPolicy, RetryingClient};
use soctam_server::{Server, ServerConfig};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A cheap request every chaos test hammers (a bounds computation: no
/// scheduling, so injected latency dominates service time).
const LIGHT: &str = "bounds d695 --widths 16";

/// What the wire MUST return for a non-faulted request: the same parser
/// and renderer over a direct, uncached engine call.
fn direct_response(line: &str) -> String {
    let engine = Engine::new();
    let mut resolver = benchmark_resolver();
    let req = protocol::parse_request(line, &mut resolver).expect("test request parses");
    protocol::render_result(&req, &engine.serve_one(&req))
}

fn server(cfg: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", cfg).expect("ephemeral loopback bind")
}

fn plan(text: &str) -> Option<Arc<FaultPlan>> {
    Some(Arc::new(FaultPlan::parse(text).expect("test plan parses")))
}

/// Reads one metric's value out of the Prometheus exposition. `name`
/// includes the label set for labelled samples
/// (`soctam_fault_injected_total{fault="io:error"}`).
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("no metric `{name}` in:\n{metrics}"))
}

/// Silences the default panic-hook report for *injected* panics while
/// held (they are the point of these tests, not noise worth printing);
/// anything else still reports. Restores the default hook on drop.
struct QuietPanics;

fn quiet_injected_panics() -> QuietPanics {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.to_string().contains("injected fault") {
            prev(info);
        }
    }));
    QuietPanics
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        // Restoring from a panicking thread would itself panic (the hook
        // is locked during a panic) — and a panic in a destructor during
        // cleanup aborts the whole test binary.
        if !std::thread::panicking() {
            let _ = std::panic::take_hook(); // back to the default hook
        }
    }
}

#[test]
fn injected_solver_panics_fail_only_the_struck_requests() {
    let _guard = serialize();
    let _quiet = quiet_injected_panics();
    let want = direct_response(LIGHT);
    // No result cache: every request solves, so the strike pattern over
    // the wire is exactly the spec's modulus.
    let server = server(ServerConfig {
        cache_capacity: 0,
        fault_plan: plan("solve:panic:every=3"),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut conn = client::Connection::connect(addr).expect("connect");
    for occurrence in 1..=9u64 {
        let got = conn.request(LIGHT).expect("connection survives the panic");
        if occurrence % 3 == 0 {
            assert!(
                got.contains("\"transient\": true") && got.contains("solver panicked (recovered)"),
                "occurrence {occurrence} should be a recovered panic: {got}"
            );
        } else {
            assert_eq!(got, want, "non-faulted occurrence {occurrence} diverged");
        }
    }

    let metrics = server.metrics();
    assert_eq!(
        metric_value(
            &metrics,
            "soctam_fault_injected_total{fault=\"solve:panic\"}"
        ),
        3
    );
    assert_eq!(
        metric_value(&metrics, "soctam_solver_panics_recovered_total"),
        3,
        "every injection shows up as a recovery"
    );
    let (status, body) = client::http_get(addr, "/healthz").expect("healthz");
    assert!(status.contains("200"), "daemon still healthy: {status}");
    assert_eq!(body, "ok\n");
    server.shutdown();
}

#[test]
fn overload_sheds_excess_connections_and_retrying_clients_all_succeed() {
    let _guard = serialize();
    let want = direct_response(LIGHT);
    // One worker, a one-slot queue, and 25 ms of injected latency per
    // request: eight simultaneous clients are offered load far over
    // capacity, so most first attempts are shed.
    let server = server(ServerConfig {
        threads: 1,
        max_pending: 1,
        fault_plan: plan("io:latency=25ms"),
        ..ServerConfig::default()
    });
    server.warm_from_text(LIGHT); // service time ≈ injected latency only
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for seed in 0..8u64 {
            let want = &want;
            scope.spawn(move || {
                let policy = RetryPolicy {
                    retries: 40,
                    backoff: Duration::from_millis(10),
                    seed,
                };
                let mut client = RetryingClient::new(addr, policy).expect("resolve");
                let got = client.request(LIGHT).expect("eventual success");
                assert_eq!(
                    &got, want,
                    "a shed request, once admitted, answers identically"
                );
            });
        }
    });

    let metrics = server.metrics();
    assert!(
        metric_value(&metrics, "soctam_shed_total") > 0,
        "offered load over capacity must shed: {metrics}"
    );
    assert_eq!(metric_value(&metrics, "soctam_queue_depth"), 0);
    let (status, _) = client::http_get(addr, "/healthz").expect("healthz");
    assert!(status.contains("200"), "drained daemon healthy: {status}");
    server.shutdown();
}

#[test]
fn saturation_degrades_healthz_and_sheds_carry_structured_busy_answers() {
    let _guard = serialize();
    let want = direct_response(LIGHT);
    // One worker pinned for >1 s per request (solve-site latency, cache
    // off) and a one-slot queue: occupying both saturates the daemon for
    // long enough to probe it deterministically.
    let server = server(ServerConfig {
        threads: 1,
        max_pending: 1,
        cache_capacity: 0,
        fault_plan: plan("solve:latency=1200ms"),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let slow_responses: Vec<_> = (0..2)
            .map(|_| {
                let handle = scope.spawn(move || {
                    let mut conn = client::Connection::connect(addr).expect("connect");
                    conn.request(LIGHT).expect("slow but served")
                });
                // Let this connection reach the worker (first) or the
                // queue (second) before offering the next.
                std::thread::sleep(Duration::from_millis(300));
                handle
            })
            .collect();

        // Worker busy + queue full: HTTP probes answer 503 and protocol
        // probes get the one-line busy object, straight from the shed
        // path — the daemon stays responsive *about* being overloaded.
        let (status, body) = client::http_get(addr, "/healthz").expect("shed healthz");
        assert!(status.contains("503"), "saturated healthz: {status}");
        assert!(body.contains("busy"), "{body}");
        let mut probe = client::Connection::connect(addr).expect("probe connect");
        let busy = probe.request(LIGHT).expect("busy answer");
        assert!(
            !client::response_ok(&busy)
                && client::response_busy(&busy)
                && client::is_retryable_response(&busy),
            "structured shed answer: {busy}"
        );

        for handle in slow_responses {
            assert_eq!(
                handle.join().expect("no panic"),
                want,
                "admitted requests are stalled, never corrupted"
            );
        }
    });

    let (status, body) = client::http_get(addr, "/healthz").expect("healthz");
    assert!(status.contains("200"), "drained daemon healthy: {status}");
    assert_eq!(body, "ok\n");
    server.shutdown();
}

#[test]
fn severed_connections_are_absorbed_by_the_retry_policy() {
    let _guard = serialize();
    let want = direct_response(LIGHT);
    let server = server(ServerConfig {
        fault_plan: plan("io:error:every=4"),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut client =
        RetryingClient::new(addr, RetryPolicy::new(5, Duration::from_millis(5))).expect("resolve");
    for _ in 0..8 {
        let got = client.request(LIGHT).expect("retries absorb the sever");
        assert_eq!(got, want);
    }
    // Deterministic arithmetic: 8 successes need 10 request-line
    // occurrences (the 4th and 8th are severed mid-request), so the
    // client retried exactly twice and the plan counted exactly two
    // injections.
    assert_eq!(client.retried(), 2);
    assert_eq!(
        metric_value(
            &server.metrics(),
            "soctam_fault_injected_total{fault=\"io:error\"}"
        ),
        2
    );
    server.shutdown();
}

#[test]
fn worker_killing_panics_are_respawned_and_service_continues() {
    let _guard = serialize();
    let _quiet = quiet_injected_panics();
    let want = direct_response(LIGHT);
    let server = server(ServerConfig {
        threads: 2,
        fault_plan: plan("io:panic:every=5"),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut client =
        RetryingClient::new(addr, RetryPolicy::new(8, Duration::from_millis(5))).expect("resolve");
    for _ in 0..12 {
        let got = client.request(LIGHT).expect("respawned pool keeps serving");
        assert_eq!(got, want);
    }
    // Deterministic arithmetic: 12 successes need 14 request-line
    // occurrences — the 5th and 10th each killed a worker.
    assert_eq!(client.retried(), 2);

    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let metrics = server.metrics();
        let workers = metric_value(&metrics, "soctam_worker_threads");
        if workers == 2 {
            assert_eq!(metric_value(&metrics, "soctam_worker_panics_total"), 2);
            assert_eq!(
                metric_value(&metrics, "soctam_fault_injected_total{fault=\"io:panic\"}"),
                2
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker pool never recovered to full strength:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, body) = client::http_get(addr, "/healthz").expect("healthz");
    assert!(
        status.contains("200"),
        "daemon survives dead workers: {status}"
    );
    assert_eq!(body, "ok\n");
    server.shutdown();
}

#[test]
fn transient_answers_keep_the_connection_for_their_retries() {
    let _guard = serialize();
    let _quiet = quiet_injected_panics();
    // Every solve panics (recovered): every attempt gets a retryable
    // `"transient": true` answer — delivered over a perfectly healthy
    // keep-alive connection, which the client must keep. Only sheds and
    // transport failures close the socket.
    let server = server(ServerConfig {
        cache_capacity: 0,
        fault_plan: plan("solve:panic"),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut client =
        RetryingClient::new(addr, RetryPolicy::new(3, Duration::from_millis(1))).expect("resolve");
    let response = client.request(LIGHT).expect("final transient answer");
    assert!(client::is_retryable_response(&response), "{response}");
    assert_eq!(client.retried(), 3, "the full retry budget was spent");
    // Four attempts, one connection: a transient answer on a live socket
    // must not force a reconnect per retry.
    assert_eq!(
        metric_value(&server.metrics(), "soctam_connections_total"),
        1,
        "transient retries reconnected"
    );
    server.shutdown();
}

#[test]
fn queue_depth_gauge_is_zeroed_when_shutdown_discards_queued_connections() {
    let _guard = serialize();
    let _quiet = quiet_injected_panics();
    // The one worker reads a request, stalls 500 ms on injected latency,
    // then dies to an injected panic — with the shutdown flag already up,
    // so no respawn. Two more connections sit in the pending queue the
    // whole time and are dropped unserved when the channel closes; the
    // gauge must not keep counting them on the final scrape.
    let server = server(ServerConfig {
        threads: 1,
        fault_plan: plan("io:latency=500ms,io:panic"),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let probe = server.metrics_probe();

    let mut stalled = client::Connection::connect(addr).expect("connect");
    let pump = std::thread::spawn(move || {
        let _ = stalled.request(LIGHT); // severed mid-stall: Err is expected
    });
    let _queued_a = client::Connection::connect(addr).expect("connect");
    let _queued_b = client::Connection::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(2);
    while metric_value(&server.metrics(), "soctam_queue_depth") < 2 {
        assert!(Instant::now() < deadline, "queued connections never showed");
        std::thread::sleep(Duration::from_millis(5));
    }

    server.shutdown(); // during the stall: both queued connections die queued
    pump.join().expect("client thread");
    assert_eq!(
        metric_value(&probe.render(), "soctam_queue_depth"),
        0,
        "shutdown must drain the gauge over discarded queued connections"
    );
}
