//! Observability loopback suite: phase tracing, latency histograms, and
//! the slow log, exercised over real TCP against a live daemon.
//!
//! What this binary pins:
//!
//! * **traced responses** — `--trace` embeds a span tree whose exclusive
//!   phase micros sum within the span total, which in turn sits within
//!   the client-measured wall latency;
//! * **warm-phase zeroing** — a repeat request reports exactly zero
//!   `context_compile` and `menu_build` time, counter-pinned against the
//!   process-wide solver instrumentation;
//! * **presentation-only tracing** — stripping the `"trace"` member off a
//!   traced response yields byte-for-byte the untraced response, and the
//!   traced cold pass warms the cache for untraced repeats;
//! * **metrics** — `/metrics` carries `soctam_request_latency_seconds`
//!   histograms per kind × cache disposition, cumulative
//!   `soctam_phase_seconds_total` counters, and a
//!   `soctam_build_info` gauge;
//! * **slow log** — a zero threshold captures every request as a full
//!   trace record (`"phases"` plus `"spans"`).
//!
//! Tests serialize on one mutex (shared convention with the loopback,
//! chaos, and cluster suites) because the instrument counters are
//! process-wide.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use soctam_core::schedule::instrument;
use soctam_server::{client, Server, ServerConfig};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn server(cfg: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", cfg).expect("ephemeral loopback bind")
}

/// The value of the first `"key": <u64>` occurrence in `text`.
fn json_u64(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in:\n{text}"));
    let digits: String = text[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("`{needle}` is not a u64 in:\n{text}"))
}

/// Sum of the values in the first `"phases": {...}` object in `text`.
fn phases_sum(text: &str) -> u64 {
    let at = text.find("\"phases\": {").expect("a phases object");
    let body = &text[at + "\"phases\": {".len()..];
    let body = &body[..body.find('}').expect("phases object closes")];
    body.split(',')
        .filter(|entry| !entry.trim().is_empty())
        .map(|entry| {
            let value = entry.rsplit(':').next().expect("key: value");
            value
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("non-integer phase in `{body}`"))
        })
        .sum()
}

/// Drops the `", \"trace\": {...}}"` tail a traced response carries; the
/// trace is spliced in as the final member, so cutting at its key and
/// re-closing the object recovers the untraced rendering exactly.
fn strip_trace(response: &str) -> String {
    match response.find(", \"trace\": ") {
        Some(at) => format!("{}}}", &response[..at]),
        None => response.to_owned(),
    }
}

#[test]
fn traced_responses_carry_a_phase_tree_and_warm_repeats_report_zero_compiles() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let addr = server.local_addr();
    let mut conn = client::Connection::connect(addr).expect("connect");

    // Cold traced pass: the response embeds the span tree.
    let t0 = Instant::now();
    let cold = conn
        .request("schedule d695 --width 16 --trace")
        .expect("cold traced");
    let wall_micros = u64::try_from(t0.elapsed().as_micros()).expect("sane wall clock");
    assert!(client::response_ok(&cold), "{cold}");
    assert!(cold.contains("\"trace\": {"), "{cold}");
    assert!(cold.contains("\"cache\": \"miss\""), "{cold}");
    assert!(cold.contains("\"phase\": \"resolve\""), "{cold}");
    assert!(cold.contains("\"phase\": \"render\""), "{cold}");

    // Exclusive phase micros sum within the span total, which sits
    // within the client-measured wall latency.
    let total = json_u64(&cold, "total_micros");
    let phase_sum = phases_sum(&cold);
    assert!(
        phase_sum <= total,
        "exclusive phases ({phase_sum} µs) exceed the trace total ({total} µs):\n{cold}"
    );
    assert!(
        total <= wall_micros,
        "trace total ({total} µs) exceeds wall latency ({wall_micros} µs):\n{cold}"
    );

    // A cold schedule solve compiled its context and ran the scheduler,
    // and the counter deltas in the trace say so.
    assert!(json_u64(&cold, "context_compiles") >= 1, "{cold}");
    assert!(json_u64(&cold, "schedule_runs") >= 1, "{cold}");

    // Tracing is presentation-only: the untraced twin is the traced
    // response minus its `"trace"` member, answered from cache.
    let untraced = conn
        .request("schedule d695 --width 16")
        .expect("untraced twin");
    assert!(!untraced.contains("\"trace\""), "{untraced}");
    assert_eq!(strip_trace(&cold), untraced, "trace must splice cleanly");

    // Warm traced repeat: counter-pinned to zero solver work, and the
    // trace itself reports zero compile and menu phases.
    let compiles_before = instrument::context_compiles();
    let menus_before = instrument::menu_builds();
    let warm = conn
        .request("schedule d695 --width 16 --trace")
        .expect("warm traced");
    assert_eq!(instrument::context_compiles(), compiles_before);
    assert_eq!(instrument::menu_builds(), menus_before);
    assert!(warm.contains("\"cache\": \"hit\""), "{warm}");
    assert!(warm.contains("\"context_compile\": 0"), "{warm}");
    assert!(warm.contains("\"menu_build\": 0"), "{warm}");
    assert!(warm.contains("\"context_compiles\": 0"), "{warm}");
    assert_eq!(strip_trace(&warm), untraced, "warm trace splices too");

    let stats = server.engine().solution_stats().expect("cache enabled");
    assert_eq!(
        (stats.misses, stats.hits),
        (1, 2),
        "traced and untraced share one cache entry"
    );
    server.shutdown();
}

#[test]
fn metrics_expose_latency_histograms_phase_counters_and_build_info() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let addr = server.local_addr();

    // One schedule miss, one schedule hit, one bounds miss.
    client::roundtrip(
        addr,
        &[
            "schedule d695 --width 16",
            "schedule d695 --width 16",
            "bounds d695 --widths 16",
        ],
    )
    .expect("traffic");

    let metrics = server.metrics();
    assert!(
        metrics.contains("# TYPE soctam_request_latency_seconds histogram"),
        "{metrics}"
    );
    for series in [
        "soctam_request_latency_seconds_count{kind=\"schedule\",cache=\"miss\"} 1",
        "soctam_request_latency_seconds_count{kind=\"schedule\",cache=\"hit\"} 1",
        "soctam_request_latency_seconds_count{kind=\"bounds\",cache=\"miss\"} 1",
        "soctam_request_latency_seconds_bucket{kind=\"schedule\",cache=\"miss\",le=\"+Inf\"} 1",
    ] {
        assert!(metrics.contains(series), "missing `{series}`:\n{metrics}");
    }

    // The build-info gauge names this crate's version.
    assert!(
        metrics.contains(&format!(
            "soctam_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )),
        "{metrics}"
    );

    // Phase counters: every phase renders (zeros included), and the cold
    // schedule left real context-compile time behind.
    assert!(
        metrics.contains("# TYPE soctam_phase_seconds_total counter"),
        "{metrics}"
    );
    for phase in [
        "resolve",
        "cache_lookup",
        "context_compile",
        "menu_build",
        "sweep",
        "validate",
        "render",
        "proxy",
    ] {
        assert!(
            metrics.contains(&format!("soctam_phase_seconds_total{{phase=\"{phase}\"}}")),
            "missing phase `{phase}`:\n{metrics}"
        );
    }
    let compile_seconds = metrics
        .lines()
        .find_map(|l| l.strip_prefix("soctam_phase_seconds_total{phase=\"context_compile\"} "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("context_compile phase sample");
    assert!(
        compile_seconds > 0.0,
        "a cold schedule must log compile time:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn request_log_records_carry_compact_phase_splits() {
    let _guard = serialize();
    let log_path =
        std::env::temp_dir().join(format!("soctam_obs_log_{}.jsonl", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let server = server(ServerConfig {
        log_path: Some(log_path.clone()),
        ..ServerConfig::default()
    });

    client::roundtrip(server.local_addr(), &["schedule d695 --width 16"]).expect("traffic");

    let text = std::fs::read_to_string(&log_path).expect("log written");
    let line = text.lines().next().expect("one record");
    assert!(line.contains("\"phases\": {"), "{line}");
    assert!(line.contains("\"context_compile\": "), "{line}");
    // The compact log shape stops at phases — no span tree.
    assert!(!line.contains("\"spans\""), "{line}");
    assert!(
        phases_sum(line) <= json_u64(line, "latency_micros"),
        "{line}"
    );

    std::fs::remove_file(&log_path).ok();
    server.shutdown();
}

#[test]
fn a_zero_threshold_slow_log_captures_full_traces_for_every_request() {
    let _guard = serialize();
    let slow_path =
        std::env::temp_dir().join(format!("soctam_obs_slow_{}.jsonl", std::process::id()));
    std::fs::remove_file(&slow_path).ok();
    let server = server(ServerConfig {
        slow_log: Some(Duration::ZERO),
        slow_log_path: Some(slow_path.clone()),
        ..ServerConfig::default()
    });

    client::roundtrip(
        server.local_addr(),
        &["schedule d695 --width 16", "schedule d695 --width 16"],
    )
    .expect("traffic");

    let text = std::fs::read_to_string(&slow_path).expect("slow log written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    for line in &lines {
        assert!(
            line.contains("\"request\": \"schedule d695 --width 16\""),
            "{line}"
        );
        assert!(line.contains("\"trace_total_micros\": "), "{line}");
        assert!(line.contains("\"spans\": [{"), "{line}");
        assert!(line.contains("\"phase\": \"resolve\""), "{line}");
    }
    assert!(lines[0].contains("\"cache\": \"miss\""), "{}", lines[0]);
    assert!(lines[1].contains("\"cache\": \"hit\""), "{}", lines[1]);

    std::fs::remove_file(&slow_path).ok();
    server.shutdown();
}
