//! Cluster loopback suite: real backend daemons on 127.0.0.1 behind a
//! real `Balancer` front, driven by real TCP clients.
//!
//! What this binary pins:
//!
//! * **transparency** — responses through the front are bit-identical to
//!   direct daemon (and direct engine) answers;
//! * **affinity** — one request key always lands on one backend, so
//!   shard caches stay hot and disjoint;
//! * **failover** — killing a backend diverts its keys to ring
//!   successors with zero client-visible failures, and the failover
//!   counter says so;
//! * **rejoin** — a backend that comes (back) up is probed healthy and
//!   takes its keys home.
//!
//! Tests serialize on one mutex (shared convention with the loopback and
//! chaos suites).

use std::net::{SocketAddr, TcpListener};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use soctam_core::engine::Engine;
use soctam_core::protocol::{self, benchmark_resolver};
use soctam_server::balance::{Balancer, BalancerConfig};
use soctam_server::client::{self, Connection};
use soctam_server::{Server, ServerConfig};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Distinct cheap request keys (each is its own solution-cache entry, so
/// each owns its own ring point).
fn keys(n: usize) -> Vec<String> {
    (1..=n)
        .map(|w| format!("bounds d695 --widths {w}"))
        .collect()
}

/// What the wire MUST return, balancer or not: the shared parser and
/// renderer over a direct, uncached engine call.
fn direct_response(line: &str) -> String {
    let engine = Engine::new();
    let mut resolver = benchmark_resolver();
    let req = protocol::parse_request(line, &mut resolver).expect("test request parses");
    protocol::render_result(&req, &engine.serve_one(&req))
}

/// A backend sized for pooled fronts: more workers than the front's
/// pooled connections, so probes and scrapes always find a free worker.
fn backend() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral backend bind")
}

fn front(backends: &[SocketAddr], cfg: BalancerConfig) -> Balancer {
    Balancer::bind("127.0.0.1:0", backends, cfg).expect("ephemeral front bind")
}

/// A config for tests that exercise the *failover* path, not the prober:
/// probes are too infrequent to interfere.
fn failover_cfg() -> BalancerConfig {
    BalancerConfig {
        probe_interval: Duration::from_secs(30),
        retries: 1,
        backoff: Duration::from_millis(1),
        ..BalancerConfig::default()
    }
}

/// Reads one metric's value out of a Prometheus exposition (`name`
/// includes the label set for labelled samples).
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("no metric `{name}` in:\n{metrics}"))
}

#[test]
fn requests_through_the_front_are_bit_identical_and_key_affine() {
    let _guard = serialize();
    let (backend_a, backend_b) = (backend(), backend());
    let addrs = [backend_a.local_addr(), backend_b.local_addr()];
    let front = front(&addrs, failover_cfg());
    let keys = keys(16);

    // Three passes of every key through one front connection: responses
    // must match direct engine calls bit for bit, every pass.
    let want: Vec<String> = keys.iter().map(|k| direct_response(k)).collect();
    let mut conn = Connection::connect(front.local_addr()).expect("front connect");
    for pass in 0..3 {
        for (key, want) in keys.iter().zip(&want) {
            let got = conn.request(key).expect("proxied answer");
            assert_eq!(&got, want, "pass {pass}, key `{key}` diverged");
        }
    }

    // Affinity: 16 keys × 3 passes landed *somewhere*, and repeats never
    // moved — each backend solved each of its keys exactly once, so
    // misses sum to the key count (disjoint shards) and hits make up the
    // rest.
    let (stats_a, stats_b) = (
        backend_a.engine().solution_stats().unwrap(),
        backend_b.engine().solution_stats().unwrap(),
    );
    assert_eq!(
        stats_a.misses + stats_b.misses,
        16,
        "each key solved on exactly one shard: {stats_a:?} {stats_b:?}"
    );
    assert_eq!(stats_a.hits + stats_b.hits, 32, "repeat passes all hit");
    assert!(
        stats_a.misses > 0 && stats_b.misses > 0,
        "16 keys should spread over both shards: {stats_a:?} {stats_b:?}"
    );

    // The front's own books agree.
    let metrics = front.metrics();
    let routed_a = metric_value(
        &metrics,
        &format!("soctam_balance_routed_total{{backend=\"{}\"}}", addrs[0]),
    );
    let routed_b = metric_value(
        &metrics,
        &format!("soctam_balance_routed_total{{backend=\"{}\"}}", addrs[1]),
    );
    assert_eq!(routed_a + routed_b, 48);
    assert_eq!(metric_value(&metrics, "soctam_balance_failover_total"), 0);

    front.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn front_http_surface_rolls_up_backends_and_answers_parse_errors_locally() {
    let _guard = serialize();
    let (backend_a, backend_b) = (backend(), backend());
    let addrs = [backend_a.local_addr(), backend_b.local_addr()];
    let front = front(&addrs, failover_cfg());
    let front_addr = front.local_addr();

    let mut conn = Connection::connect(front_addr).expect("front connect");
    for key in keys(8) {
        assert!(client::response_ok(&conn.request(&key).expect("answer")));
    }
    // A parse error is answered by the front itself — never forwarded,
    // never counted against a backend.
    let garbage = conn.request("frobnicate d695").expect("parse error");
    assert!(!client::response_ok(&garbage), "{garbage}");
    assert!(garbage.contains("frobnicate"), "{garbage}");

    let (status, body) = client::http_get(front_addr, "/healthz").expect("front healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    let (status, metrics) = client::http_get(front_addr, "/metrics").expect("front metrics");
    assert!(status.contains("200"), "{status}");
    assert_eq!(metric_value(&metrics, "soctam_balance_backends"), 2);
    assert_eq!(
        metric_value(&metrics, "soctam_balance_parse_errors_total"),
        1
    );
    for addr in addrs {
        assert_eq!(
            metric_value(
                &metrics,
                &format!("soctam_balance_backend_up{{backend=\"{addr}\"}}")
            ),
            1
        );
    }
    // The roll-up sums backend families: 8 proxied requests answered ok
    // across the two shards, none of them parse errors.
    assert_eq!(metric_value(&metrics, "soctam_responses_ok_total"), 8);
    assert_eq!(
        metric_value(&metrics, "soctam_request_parse_errors_total"),
        0
    );
    assert!(
        metrics.contains("# TYPE soctam_balance_routed_total counter"),
        "front families carry TYPE lines:\n{metrics}"
    );

    front.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn the_front_rolls_up_latency_histograms_bucket_for_bucket() {
    let _guard = serialize();
    let (backend_a, backend_b) = (backend(), backend());
    let addrs = [backend_a.local_addr(), backend_b.local_addr()];
    let front = front(&addrs, failover_cfg());

    // Two passes of 8 keys through the front: one miss and one hit per
    // key, the keys spread over both shards by affinity.
    let mut conn = Connection::connect(front.local_addr()).expect("front connect");
    for _ in 0..2 {
        for key in keys(8) {
            assert!(client::response_ok(&conn.request(&key).expect("answer")));
        }
    }

    // Scrape each backend directly and sum its histogram samples by full
    // series name. Bucket counts are cumulative per backend, and sums of
    // cumulative counts are cumulative again — so the roll-up can (and
    // must) match series for series.
    let mut want: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for addr in addrs {
        let (status, body) = client::http_get(addr, "/metrics").expect("backend metrics");
        assert!(status.contains("200"), "{status}");
        for line in body.lines() {
            if line.starts_with("soctam_request_latency_seconds_bucket{")
                || line.starts_with("soctam_request_latency_seconds_count{")
            {
                let (series, value) = line.rsplit_once(' ').expect("series then value");
                *want.entry(series.to_owned()).or_default() +=
                    value.parse::<u64>().expect("integral sample");
            }
        }
    }
    assert!(!want.is_empty(), "backends exposed no latency histograms");

    let metrics = front.metrics();
    assert!(
        metrics.contains("# TYPE soctam_request_latency_seconds histogram"),
        "{metrics}"
    );
    for (series, value) in &want {
        assert_eq!(
            metric_value(&metrics, series),
            *value,
            "roll-up diverged for `{series}`"
        );
    }
    assert_eq!(
        metric_value(
            &metrics,
            "soctam_request_latency_seconds_count{kind=\"bounds\",cache=\"miss\"}"
        ),
        8,
        "8 distinct keys solved exactly once across the shards"
    );

    // The front's own books: every proxied line timed, and the front
    // carries its prefixed build-info gauge next to the summed backend
    // one.
    assert_eq!(
        metric_value(&metrics, "soctam_balance_proxy_latency_seconds_count"),
        16
    );
    assert!(
        metrics.contains("soctam_balance_build_info{version=\""),
        "{metrics}"
    );

    front.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn killing_a_backend_fails_over_with_zero_client_visible_failures() {
    let _guard = serialize();
    let (backend_a, backend_b) = (backend(), backend());
    let addrs = [backend_a.local_addr(), backend_b.local_addr()];
    let front = front(&addrs, failover_cfg());
    let keys = keys(12);
    let want: Vec<String> = keys.iter().map(|k| direct_response(k)).collect();

    // Warm every shard through the front, then kill one backend. The
    // prober is effectively off (30 s interval): every diverted key goes
    // through the failover path itself.
    let mut conn = Connection::connect(front.local_addr()).expect("front connect");
    for key in &keys {
        assert!(client::response_ok(&conn.request(key).expect("warm pass")));
    }
    backend_a.shutdown();

    for (key, want) in keys.iter().zip(&want) {
        let got = conn.request(key).expect("failover answer");
        assert_eq!(&got, want, "key `{key}` diverged after the kill");
    }

    let metrics = front.metrics();
    assert!(
        metric_value(&metrics, "soctam_balance_failover_total") > 0,
        "diverted keys must count as failovers:\n{metrics}"
    );
    assert_eq!(
        metric_value(
            &metrics,
            &format!("soctam_balance_backend_up{{backend=\"{}\"}}", addrs[0])
        ),
        0,
        "the dead backend is marked down by its transport failure"
    );
    assert_eq!(metric_value(&metrics, "soctam_balance_unrouted_total"), 0);

    // The front stays healthy on one backend.
    let (status, _) = client::http_get(front.local_addr(), "/healthz").expect("healthz");
    assert!(status.contains("200"), "{status}");

    front.shutdown();
    backend_b.shutdown();
}

#[test]
fn a_backend_rejoins_once_the_prober_sees_healthz_recover() {
    let _guard = serialize();
    let backend_a = backend();
    // Reserve an address for the second backend without running one yet:
    // bind an ephemeral listener, note its address, drop it.
    let reserved = {
        let throwaway = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
        throwaway.local_addr().expect("reserved addr")
    };
    let addrs = [backend_a.local_addr(), reserved];
    let front = front(
        &addrs,
        BalancerConfig {
            probe_interval: Duration::from_millis(50),
            retries: 0,
            backoff: Duration::ZERO,
            ..BalancerConfig::default()
        },
    );
    let keys = keys(16);

    // With the reserved address dead, everything is served by backend A
    // (its keys directly, the dead shard's by failover) and the prober
    // marks the dead address down.
    let mut conn = Connection::connect(front.local_addr()).expect("front connect");
    for key in &keys {
        assert!(client::response_ok(
            &conn.request(key).expect("one live shard")
        ));
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    while front.backends_up() != [true, false] {
        assert!(
            Instant::now() < deadline,
            "prober never marked the dead address down: {:?}",
            front.backends_up()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Bring the second backend up on the reserved address; the prober
    // must mark it healthy again.
    let backend_b = Server::bind(reserved, ServerConfig::default()).expect("rejoin bind");
    let deadline = Instant::now() + Duration::from_secs(5);
    while front.backends_up() != [true, true] {
        assert!(
            Instant::now() < deadline,
            "prober never rejoined the recovered backend: {:?}",
            front.backends_up()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Its keys come home: the rejoined shard now answers (and solves)
    // the subset it owns.
    for key in &keys {
        assert!(client::response_ok(
            &conn.request(key).expect("rejoined pass")
        ));
    }
    let stats_b = backend_b.engine().solution_stats().unwrap();
    assert!(
        stats_b.misses > 0,
        "the rejoined backend should own some of 16 keys: {stats_b:?}"
    );

    front.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}
