//! Loopback integration suite: live daemon on 127.0.0.1, real TCP
//! clients, responses pinned bit-identical to direct `Engine` calls.
//!
//! Tests in this binary share the process-wide instrumentation counters
//! (`soctam_core::schedule::instrument`), so every test serializes on one
//! mutex — counter deltas measured inside a test are then attributable to
//! that test alone.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use soctam_core::engine::Engine;
use soctam_core::protocol::{self, benchmark_resolver};
use soctam_core::schedule::instrument;
use soctam_server::{client, Server, ServerConfig, WarmReport};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The mixed request set every test hammers: all three kinds, both
/// scheduling modes, a power-constrained run, two SOCs.
const REQUESTS: [&str; 6] = [
    "schedule d695 --width 16",
    "schedule d695 --width 16 --no-preempt",
    "schedule d695 --width 24 --power",
    "sweep d695 --from 15 --to 17",
    "bounds p34392 --widths 16,24",
    "bounds d695",
];

/// What the wire MUST return for each request: the same parser and
/// renderer over a direct, uncached engine call.
fn direct_responses(lines: &[&str]) -> Vec<String> {
    let engine = Engine::new();
    let mut resolver = benchmark_resolver();
    lines
        .iter()
        .map(|line| {
            let req = protocol::parse_request(line, &mut resolver).expect("test request parses");
            protocol::render_result(&req, &engine.serve_one(&req))
        })
        .collect()
}

fn server(cfg: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", cfg).expect("ephemeral loopback bind")
}

#[test]
fn concurrent_clients_get_responses_bit_identical_to_direct_engine_calls() {
    let _guard = serialize();
    let want = direct_responses(&REQUESTS);
    let server = server(ServerConfig::default());
    let addr = server.local_addr();

    // ≥4 concurrent clients, each sending the full mix, each starting at
    // a different offset so identical requests overlap in flight.
    std::thread::scope(|scope| {
        for offset in 0..4 {
            let want = &want;
            scope.spawn(move || {
                let mut conn = client::Connection::connect(addr).expect("connect");
                for i in 0..REQUESTS.len() {
                    let at = (i + offset) % REQUESTS.len();
                    let got = conn.request(REQUESTS[at]).expect("round trip");
                    assert_eq!(got, want[at], "response diverged for `{}`", REQUESTS[at]);
                }
            });
        }
    });

    let metrics = server.metrics();
    assert!(metrics.contains("soctam_connections_total 4"), "{metrics}");
    server.shutdown();
}

#[test]
fn warm_cache_pass_performs_zero_solver_invocations() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let addr = server.local_addr();

    // Cold pass: populates the solution cache.
    let cold = client::roundtrip(addr, &REQUESTS).expect("cold pass");

    // Warm pass: counter-pinned to perform no solver work at all — no
    // scheduler invocations, no context compilations.
    let runs_before = instrument::schedule_runs();
    let compiles_before = instrument::context_compiles();
    let warm = client::roundtrip(addr, &REQUESTS).expect("warm pass");
    assert_eq!(
        instrument::schedule_runs(),
        runs_before,
        "a warm repeat request must never invoke the scheduler"
    );
    assert_eq!(
        instrument::context_compiles(),
        compiles_before,
        "a warm repeat request must never compile a context"
    );
    assert_eq!(cold, warm, "cached responses are bit-identical");

    let stats = server.engine().solution_stats().expect("cache enabled");
    assert_eq!(stats.misses, REQUESTS.len() as u64);
    assert_eq!(stats.hits, REQUESTS.len() as u64);
    server.shutdown();
}

#[test]
fn ttl_expiry_evicts_solutions_and_contexts() {
    let _guard = serialize();
    let server = server(ServerConfig {
        ttl: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let request = ["bounds d695 --widths 16,32"];

    let cold = client::roundtrip(addr, &request).expect("cold pass");
    let warm = client::roundtrip(addr, &request).expect("warm pass");
    assert_eq!(server.engine().solution_stats().unwrap().hits, 1);

    std::thread::sleep(Duration::from_millis(450));
    let reheated = client::roundtrip(addr, &request).expect("post-expiry pass");
    assert_eq!(cold, warm);
    assert_eq!(cold, reheated, "expiry changes freshness, not results");

    let stats = server.engine().solution_stats().unwrap();
    assert_eq!(stats.expiries, 1, "the cached solution expired");
    assert_eq!(stats.misses, 2, "the post-expiry request re-solved");
    assert_eq!(
        server.engine().registry().stats().expiries,
        1,
        "the compiled context expired alongside the solution"
    );

    // purge_expired sweeps both tiers once the reheated entries age out.
    std::thread::sleep(Duration::from_millis(450));
    assert_eq!(server.engine().purge_expired(), (1, 1));
    assert_eq!(server.engine().solutions_len(), 0);
    assert!(server.engine().registry().is_empty());
    server.shutdown();
}

#[test]
fn http_surface_serves_healthz_metrics_and_404() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let addr = server.local_addr();

    let (status, body) = client::http_get(addr, "/healthz").expect("healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    // Traffic first, then scrape: the counters must move.
    client::roundtrip(addr, &["bounds d695", "bounds d695"]).expect("traffic");
    let (status, body) = client::http_get(addr, "/metrics").expect("metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        body.contains("soctam_requests_total{kind=\"bounds\"} 2"),
        "{body}"
    );
    assert!(
        body.contains("soctam_solution_cache_hits_total 1"),
        "{body}"
    );
    assert!(
        body.contains("soctam_context_registry_misses_total 1"),
        "{body}"
    );
    assert!(body.contains("soctam_uptime_seconds "), "{body}");

    let (status, _) = client::http_get(addr, "/nope").expect("404 path");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // HEAD gets GET's headers — including the body's Content-Length —
    // but never the body itself.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "HEAD /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .expect("send HEAD");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read HEAD response");
        assert!(raw.starts_with("HTTP/1.1 200 OK"), "{raw}");
        assert!(raw.contains("Content-Length: 3"), "{raw}");
        assert!(
            raw.ends_with("\r\n\r\n"),
            "HEAD response has no body: {raw:?}"
        );
    }
    server.shutdown();
}

#[test]
fn parse_errors_are_reported_per_line_and_do_not_kill_the_connection() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let mut conn = client::Connection::connect(server.local_addr()).expect("connect");

    let bad = conn
        .request("schedule d695 --width banana")
        .expect("bad line answered");
    assert!(!client::response_ok(&bad), "{bad}");
    assert!(
        bad.contains("--width") && bad.contains("banana"),
        "names the field: {bad}"
    );

    let unknown = conn
        .request("frobnicate d695")
        .expect("unknown kind answered");
    assert!(unknown.contains("frobnicate"), "{unknown}");

    // The daemon must refuse filesystem paths — benchmark names only.
    let path = conn.request("bounds /etc/hostname").expect("path answered");
    assert!(!client::response_ok(&path), "{path}");
    assert!(path.contains("benchmark names only"), "{path}");

    // And the connection is still perfectly usable.
    let good = conn
        .request("bounds d695 --widths 16")
        .expect("good line after bad");
    assert!(client::response_ok(&good), "{good}");

    let metrics = server.metrics();
    assert!(
        metrics.contains("soctam_request_parse_errors_total 3"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn comments_and_blank_lines_are_skipped_like_a_batch_file() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let mut conn = client::Connection::connect(server.local_addr()).expect("connect");
    // Interleave batch-file noise with a real request on one connection:
    // only the request is answered.
    let response = conn
        .request("# warm-up comment\n\nbounds d695 --widths 16")
        .expect("noise then request");
    assert!(client::response_ok(&response), "{response}");
    server.shutdown();
}

#[test]
fn infeasible_requests_fail_cleanly_and_are_not_cached() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let addr = server.local_addr();
    // Width 0 bounds are rejected by the engine (not a parse error).
    let responses = client::roundtrip(addr, &["bounds d695 --widths 0", "bounds d695 --widths 0"])
        .expect("round trips");
    for r in &responses {
        assert!(!client::response_ok(r), "{r}");
        assert!(r.contains("at least one wire"), "{r}");
    }
    let stats = server.engine().solution_stats().unwrap();
    assert_eq!(stats.failures, 2, "errors are retried, never cached");
    let metrics = server.metrics();
    assert!(
        metrics.contains("soctam_responses_err_total 2"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn idle_peers_are_reaped_freeing_workers_for_fresh_clients() {
    let _guard = serialize();
    // Two workers, both occupied by peers that never send a byte: without
    // the read deadline the fresh client below would starve forever.
    let server = server(ServerConfig {
        threads: 2,
        idle_timeout: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let idle_a = client::Connection::connect(addr).expect("idle connect");
    let idle_b = client::Connection::connect(addr).expect("idle connect");
    std::thread::sleep(Duration::from_millis(100)); // workers pick them up

    let t0 = Instant::now();
    let responses =
        client::roundtrip(addr, &["bounds d695 --widths 16"]).expect("fresh client served");
    assert!(client::response_ok(&responses[0]), "{}", responses[0]);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "fresh client waited {:?} behind idle peers",
        t0.elapsed()
    );

    // Both idle peers end up reaped (the second may lag the first by one
    // deadline period).
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server
        .metrics()
        .contains("soctam_connection_timeouts_total 2")
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    let metrics = server.metrics();
    assert!(
        metrics.contains("soctam_connection_timeouts_total 2"),
        "{metrics}"
    );
    drop((idle_a, idle_b));
    server.shutdown();
}

#[test]
fn a_newline_free_flood_is_answered_at_the_cap_and_closed() {
    let _guard = serialize();
    let server = server(ServerConfig {
        max_line_bytes: 1024,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    // 100 KiB with no newline: the daemon may only ever buffer cap + 1
    // bytes of it (the bounded read), then must answer and close. Our
    // write can race the close, so failures past the verdict are fine.
    let flood = vec![b'x'; 100 * 1024];
    let _ = writer.write_all(&flood);
    let _ = writer.flush();

    let mut reader = BufReader::new(stream);
    let mut verdict = String::new();
    reader.read_line(&mut verdict).expect("verdict line");
    assert!(!client::response_ok(&verdict), "{verdict}");
    assert!(verdict.contains("1024-byte cap"), "{verdict}");

    let mut rest = String::new();
    let eof = reader.read_line(&mut rest);
    assert!(
        matches!(eof, Ok(0) | Err(_)),
        "connection closed after the verdict, got {rest:?}"
    );

    let metrics = server.metrics();
    assert!(
        metrics.contains("soctam_request_line_oversized_total 1"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn the_request_cap_ends_a_keep_alive_session_after_the_last_response() {
    let _guard = serialize();
    let server = server(ServerConfig {
        max_requests: Some(2),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut conn = client::Connection::connect(addr).expect("connect");
    let first = conn.request("bounds d695 --widths 16").expect("request 1");
    let second = conn.request("bounds d695 --widths 16").expect("request 2");
    assert_eq!(first, second, "the cap'th response is flushed in full");
    // The third request on this connection meets a graceful close.
    let third = conn.request("bounds d695 --widths 16");
    assert!(third.is_err(), "the keep-alive session ended at the cap");

    // A fresh connection starts a fresh budget.
    let fresh = client::roundtrip(addr, &["bounds d695 --widths 16"]).expect("fresh connection");
    assert_eq!(fresh[0], first);

    let metrics = server.metrics();
    assert!(
        metrics.contains("soctam_request_cap_closes_total 1"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_an_in_flight_response_before_severing() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let addr = server.local_addr();

    // A cold schedule solve is in flight when shutdown lands: the drain
    // window must let it finish and flush instead of severing mid-solve.
    let client_thread = std::thread::spawn(move || {
        let mut conn = client::Connection::connect(addr).expect("connect");
        conn.request("schedule d695 --width 17")
    });
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();
    let response = client_thread
        .join()
        .expect("client thread")
        .expect("the in-flight response was drained, not severed");
    assert!(client::response_ok(&response), "{response}");
}

#[test]
fn the_request_log_records_jsonl_and_replays() {
    let _guard = serialize();
    let log_path =
        std::env::temp_dir().join(format!("soctam_loopback_log_{}.jsonl", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let server = server(ServerConfig {
        log_path: Some(log_path.clone()),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    client::roundtrip(
        addr,
        &["bounds d695 --widths 16", "definitely not a request"],
    )
    .expect("traffic");

    // Each served request appended one self-contained JSONL record.
    let text = std::fs::read_to_string(&log_path).expect("log written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(
        lines[0].contains("\"request\": \"bounds d695 --widths 16\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"outcome\": \"ok\""), "{}", lines[0]);
    assert!(lines[0].contains("\"cache\": \"miss\""), "{}", lines[0]);
    assert!(lines[0].contains("\"ts_micros\": "), "{}", lines[0]);
    assert!(lines[0].contains("\"latency_micros\": "), "{}", lines[0]);
    assert!(lines[0].contains("\"peer\": \"127.0.0.1:"), "{}", lines[0]);
    assert!(
        lines[1].contains("\"outcome\": \"parse_error\""),
        "{}",
        lines[1]
    );
    assert!(lines[1].contains("\"cache\": \"none\""), "{}", lines[1]);

    // The log replays: its request lines go back over the wire, and the
    // warmed daemon answers the good one from cache.
    let report = client::replay(addr, &text).expect("replay");
    assert_eq!(report.responses.len(), 2);
    assert_eq!((report.ok, report.failed), (1, 1));
    assert!(client::response_ok(&report.responses[0].1));
    assert!(report.latency.is_some());
    assert_eq!(
        server.engine().solution_stats().unwrap().hits,
        1,
        "the replayed request hit the cache"
    );

    std::fs::remove_file(&log_path).ok();
    server.shutdown();
}

#[test]
fn warm_from_text_pre_solves_requests_and_logs() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    // A warm input mixes plain request lines, JSONL log records, comments,
    // and junk; only the junk is skipped, and nothing is fatal.
    let report = server.warm_from_text(
        "# saved traffic\n\
         bounds d695 --widths 16\n\
         {\"ts_micros\": 1, \"peer\": \"x\", \"request\": \"bounds d695 --widths 24\", \
          \"outcome\": \"ok\", \"cache\": \"miss\", \"latency_micros\": 5}\n\
         definitely not a request\n",
    );
    assert_eq!(
        report,
        WarmReport {
            requests: 3,
            ok: 2,
            failed: 0,
            skipped: 1
        }
    );

    // Warmed traffic is served straight from the cache.
    let addr = server.local_addr();
    let responses = client::roundtrip(addr, &["bounds d695 --widths 16"]).expect("warmed request");
    assert!(client::response_ok(&responses[0]));
    let stats = server.engine().solution_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (1, 2));
    server.shutdown();
}

#[test]
fn metrics_exposition_carries_type_lines_for_every_family() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let (status, body) = client::http_get(server.local_addr(), "/metrics").expect("metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");

    for family in [
        "soctam_uptime_seconds gauge",
        "soctam_connections_total counter",
        "soctam_requests_total counter",
        "soctam_connection_timeouts_total counter",
        "soctam_request_line_oversized_total counter",
        "soctam_request_cap_closes_total counter",
        "soctam_solution_cache_resident gauge",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family}")),
            "missing `# TYPE {family}`:\n{body}"
        );
    }

    // Every sample line belongs to a TYPE-annotated family — a scraper
    // never meets an untyped metric.
    let typed: std::collections::HashSet<&str> = body
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
    {
        let name = line.split(['{', ' ']).next().expect("metric name");
        assert!(typed.contains(name), "sample `{line}` has no # TYPE");
    }
    server.shutdown();
}

#[test]
fn hostile_request_text_echoes_are_classified_on_real_fields_not_substrings() {
    let _guard = serialize();
    let server = server(ServerConfig::default());
    let addr = server.local_addr();

    // A request line carrying the retry markers verbatim. It cannot
    // parse, so the daemon echoes pieces of it back inside the error
    // string; substring classification would read the echo as a shed
    // (retry forever) or a success — field classification must not.
    let hostile = "schedule d695 --width \"busy\": true, \"transient\": true, \"ok\": true";
    let policy = client::RetryPolicy::new(5, Duration::from_millis(1));
    let mut retrying = client::RetryingClient::new(addr, policy.clone()).expect("resolve");
    let response = retrying.request(hostile).expect("answered");
    assert!(!client::response_ok(&response), "{response}");
    assert!(!client::is_retryable_response(&response), "{response}");
    assert_eq!(retrying.retried(), 0, "exactly one attempt: {response}");

    // Same discipline through a replay: the hostile line fails once, is
    // never retried, and only the good line counts as a success.
    let text = format!("bounds d695 --widths 16\n{hostile}\n");
    let report = client::replay_with_retry(addr, &text, policy).expect("replay");
    assert_eq!(
        (report.ok, report.failed, report.retried),
        (1, 1, 0),
        "{:?}",
        report.responses
    );
    server.shutdown();
}
