//! `soctam balance`: a consistent-hash front over a ring of backend
//! daemons.
//!
//! One [`Server`](crate::Server) process saturates at the loopback
//! throughput `BENCH_serve.json` records; scaling past it means N
//! processes — but a round-robin front would smear each request key
//! across every backend's `SolutionCache`, multiplying solver work N-fold
//! and capping every shard's hit rate. The balancer instead routes on the
//! *solution-cache identity* of each request
//! ([`soctam_core::protocol::route_key`]): it speaks the same
//! newline-delimited protocol, parses every request line with the shared
//! grammar, hashes the parsed request's cache key onto a ring of virtual
//! nodes, and proxies the raw line to the owning backend over a pooled
//! [`RetryingClient`]. Requests the backends would cache as one entry
//! land on one shard — caches stay hot and mutually disjoint.
//!
//! # Failover
//!
//! Candidate backends are tried in ring order from the key's point: the
//! owner first, then each successor. A transport failure marks the
//! backend down (the request moves on, and so does every later request,
//! until the prober sees it healthy again); an admission-control shed
//! (`"busy": true`, read as a real top-level field) moves the request on
//! without marking the backend down — it is saturated, not dead. If every
//! backend fails, the client gets the last busy answer, or a structured
//! `{"ok": false, "transient": true, ...}` line it can retry against.
//! Requests served by any backend but the ring owner count into
//! `soctam_balance_failover_total`.
//!
//! # Health probing
//!
//! A background prober issues `GET /healthz` to every backend each
//! interval. The daemon's health endpoint is load-aware (`503` while its
//! pending queue is saturated), so a drowning backend sheds its *new*
//! traffic onto its ring successors and rejoins automatically once it
//! drains — the same signal any external load balancer would use.
//!
//! # HTTP surface
//!
//! The front answers `GET /healthz` (`200` while at least one backend is
//! up, else `503`) and `GET /metrics`: its own `soctam_balance_*`
//! families — including a `soctam_balance_proxy_latency_seconds`
//! histogram over every proxied request line — plus a roll-up: the sum,
//! per series, of every live backend's exposition, so one scrape sees
//! cluster-wide cache hits, sheds, solver counters, and latency
//! histograms (bucket counts are integral, so summing series merges the
//! backends' histograms bucket-wise, exactly).
//!
//! # Sizing the connection pool
//!
//! Each backend worker serves one connection until it closes, and pooled
//! connections are long-lived: a backend must be run with more worker
//! threads than the front's `backend_conns`, or the pool would pin every
//! worker and starve the backend's own health endpoint. The defaults
//! (`backend_conns = 2` against the daemon's 4 workers) leave headroom
//! for probes, scrapes, and direct clients.

use std::io::{self, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use soctam_core::protocol;
use soctam_core::schedule::lock_unpoisoned;
use soctam_core::schedule::obs;

use crate::client::{self, RetryPolicy, RetryingClient};
use crate::{drain_http_headers, read_bounded_line, render_http_response, BenchmarkCatalog};
use crate::{LineRead, MAX_SHED_THREADS, SHED_GRACE};

/// Configuration of a balancer front.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Worker threads proxying client connections (each serves one
    /// connection at a time; clamped to at least 1).
    pub threads: usize,
    /// Most accepted connections that may wait for a free worker before
    /// the front starts shedding (clamped to at least 1).
    pub max_pending: usize,
    /// Byte cap on one request line (and each HTTP header line); clamped
    /// to at least 64. Should match the backends' cap — a line the front
    /// accepts but a backend rejects is answered with the backend's
    /// parse error either way.
    pub max_line_bytes: usize,
    /// Per-client-connection read/write deadline; `None` trusts peers to
    /// hang up.
    pub idle_timeout: Option<Duration>,
    /// How often the prober sweeps every backend's `/healthz`; clamped to
    /// at least 10 ms.
    pub probe_interval: Duration,
    /// Deadline on each probe (and each roll-up scrape), so one hung
    /// backend cannot stall the sweep.
    pub probe_timeout: Duration,
    /// Retry policy of each pooled backend client: extra attempts per
    /// proxied request before the front fails over to the next backend.
    pub retries: u32,
    /// Base backoff of the pooled clients' retry policy.
    pub backoff: Duration,
    /// Pooled connections per backend — the front's concurrency ceiling
    /// toward one shard. Must stay *below* the backends' worker-thread
    /// count (see the module docs); clamped to at least 1.
    pub backend_conns: usize,
    /// Read/write deadline on pooled backend connections: a backend that
    /// stops answering surfaces as a failover, not a front worker blocked
    /// forever.
    pub io_timeout: Option<Duration>,
    /// Virtual nodes per backend on the hash ring; more replicas smooth
    /// the key distribution. Clamped to at least 1.
    pub replicas: usize,
}

impl Default for BalancerConfig {
    /// Eight workers, a 64-connection pending queue, 64 KiB lines,
    /// 30-second peer deadlines; 1-second probes with 1-second deadlines;
    /// one retry at 25 ms base backoff, two pooled connections per
    /// backend with a 30-second I/O deadline, 64 virtual nodes each.
    fn default() -> Self {
        Self {
            threads: 8,
            max_pending: 64,
            max_line_bytes: 64 * 1024,
            idle_timeout: Some(Duration::from_secs(30)),
            probe_interval: Duration::from_secs(1),
            probe_timeout: Duration::from_secs(1),
            retries: 1,
            backoff: Duration::from_millis(25),
            backend_conns: 2,
            io_timeout: Some(Duration::from_secs(30)),
            replicas: 64,
        }
    }
}

/// The answer written when every candidate backend failed without even a
/// busy line to relay: structured, transient, retryable — a
/// [`RetryingClient`] absorbs a whole-cluster blip the same way it
/// absorbs one daemon's shed.
const NO_BACKEND_RESPONSE: &str =
    "{\"ok\": false, \"transient\": true, \"error\": \"no backend available; retry with backoff\"}";

/// The idle/outstanding accounting of one backend's connection pool.
#[derive(Default)]
struct PoolInner {
    idle: Vec<RetryingClient>,
    /// Connections checked out or being established; `idle.len() +
    /// outstanding` never exceeds `backend_conns`.
    outstanding: usize,
}

/// One backend daemon: its routing state and its connection pool.
struct Backend {
    addr: SocketAddr,
    /// The `backend="..."` label value on this backend's metric samples.
    label: String,
    /// Routing eligibility: cleared on transport failure or a 503/dead
    /// probe, restored by a healthy probe (or by answering a desperation
    /// pass). Starts `true` so the front serves before the first sweep.
    up: AtomicBool,
    /// Requests this backend answered through the front.
    routed: AtomicU64,
    pool: Mutex<PoolInner>,
    available: Condvar,
}

impl Backend {
    fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            label: addr.to_string(),
            up: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            pool: Mutex::new(PoolInner::default()),
            available: Condvar::new(),
        }
    }

    /// Takes a pooled client, establishing one if the pool is under its
    /// cap, else waiting (shutdown-aware) for a checkin. `None` on
    /// shutdown or connect-policy failure.
    fn checkout(&self, shared: &FrontShared) -> Option<RetryingClient> {
        let mut pool = lock_unpoisoned(&self.pool);
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(conn) = pool.idle.pop() {
                pool.outstanding += 1;
                return Some(conn);
            }
            if pool.outstanding < shared.cfg.backend_conns {
                pool.outstanding += 1;
                drop(pool);
                // Decorrelated jitter per pooled connection: a failover
                // herd toward one backend must not back off in lockstep.
                let seq = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                let policy = RetryPolicy {
                    retries: shared.cfg.retries,
                    backoff: shared.cfg.backoff,
                    seed: 0x50c7_ba1a ^ seq,
                };
                return match RetryingClient::new(self.addr, policy) {
                    Ok(conn) => Some(conn.with_io_timeout(shared.cfg.io_timeout)),
                    Err(_) => {
                        self.discard();
                        None
                    }
                };
            }
            let (guard, _) = self
                .available
                .wait_timeout(pool, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            pool = guard;
        }
    }

    /// Returns a healthy client to the pool.
    fn checkin(&self, conn: RetryingClient) {
        let mut pool = lock_unpoisoned(&self.pool);
        pool.outstanding -= 1;
        pool.idle.push(conn);
        drop(pool);
        self.available.notify_one();
    }

    /// Drops a checked-out client whose transport (or backend) died,
    /// freeing its pool slot.
    fn discard(&self) {
        let mut pool = lock_unpoisoned(&self.pool);
        pool.outstanding -= 1;
        drop(pool);
        self.available.notify_one();
    }
}

/// The consistent-hash ring: sorted virtual-node points, each owned by a
/// backend index.
struct Ring {
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    fn new(labels: &[String], replicas: usize) -> Self {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut points = Vec::with_capacity(labels.len() * replicas);
        for (index, label) in labels.iter().enumerate() {
            for replica in 0..replicas {
                // DefaultHasher uses fixed SipHash keys: the ring layout,
                // like the route key, is stable across processes.
                let mut h = DefaultHasher::new();
                (label.as_str(), replica as u64).hash(&mut h);
                points.push((h.finish(), index));
            }
        }
        points.sort_unstable();
        Self {
            points,
            backends: labels.len(),
        }
    }

    /// Every backend index in ring order from `key`'s point: the owner
    /// first, then each distinct successor — the failover order.
    fn candidates(&self, key: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(point, _)| point < key);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for offset in 0..self.points.len() {
            let (_, index) = self.points[(start + offset) % self.points.len()];
            if !seen[index] {
                seen[index] = true;
                order.push(index);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }
}

/// Front-side traffic counters (`soctam_balance_*` families).
#[derive(Default)]
struct FrontCounters {
    connections: AtomicU64,
    http_requests: AtomicU64,
    parse_errors: AtomicU64,
    /// Requests answered by a backend other than their ring owner.
    failovers: AtomicU64,
    /// Requests no backend could answer.
    unrouted: AtomicU64,
    sheds: AtomicU64,
    timeouts: AtomicU64,
    /// Completed prober sweeps over the whole backend set.
    probes: AtomicU64,
}

/// Everything the front's worker, prober, and scrape paths share.
struct FrontShared {
    cfg: BalancerConfig,
    backends: Vec<Backend>,
    ring: Ring,
    catalog: BenchmarkCatalog,
    counters: FrontCounters,
    started: Instant,
    shutdown: AtomicBool,
    active: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    conn_seq: AtomicU64,
    queue_depth: AtomicU64,
    shed_threads: AtomicU64,
    /// Wall latency of each proxied request line (parse, route, forward,
    /// and failover passes included) — `soctam_balance_proxy_latency_seconds`.
    proxy_latency: obs::Histogram,
}

impl FrontShared {
    fn any_backend_up(&self) -> bool {
        self.backends.iter().any(|b| b.up.load(Ordering::SeqCst))
    }
}

/// A running balancer front. Dropping (or [`Balancer::shutdown`]) stops
/// accepting, severs client connections, and joins every thread.
pub struct Balancer {
    shared: Arc<FrontShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Balancer {
    /// Binds `addr` and starts the acceptor, worker, and prober threads
    /// over the given backend ring.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, and rejects an empty backend list —
    /// a front with nothing behind it is a misconfiguration, not a
    /// degraded state.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: &[SocketAddr],
        mut cfg: BalancerConfig,
    ) -> io::Result<Self> {
        if backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a balancer needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        cfg.threads = cfg.threads.max(1);
        cfg.max_pending = cfg.max_pending.max(1);
        cfg.max_line_bytes = cfg.max_line_bytes.max(64);
        cfg.backend_conns = cfg.backend_conns.max(1);
        cfg.probe_interval = cfg.probe_interval.max(Duration::from_millis(10));
        cfg.replicas = cfg.replicas.max(1);

        let backends: Vec<Backend> = backends.iter().copied().map(Backend::new).collect();
        let labels: Vec<String> = backends.iter().map(|b| b.label.clone()).collect();
        let shared = Arc::new(FrontShared {
            ring: Ring::new(&labels, cfg.replicas),
            cfg,
            backends,
            catalog: BenchmarkCatalog::new(),
            counters: FrontCounters::default(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(std::collections::HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            shed_threads: AtomicU64::new(0),
            proxy_latency: obs::Histogram::new(),
        });

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(shared.cfg.max_pending);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.cfg.threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let stream = lock_unpoisoned(&rx).recv();
                    match stream {
                        Ok(stream) => {
                            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            serve_front_connection(&shared, stream);
                        }
                        Err(_) => {
                            // Acceptor gone: zero the gauge over whatever
                            // queued connections die unserved (the same
                            // shutdown discipline as the daemon).
                            shared.queue_depth.store(0, Ordering::SeqCst);
                            break;
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                        shared.queue_depth.fetch_add(1, Ordering::SeqCst);
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(stream)) => {
                                shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                                shed_front(&shared, stream);
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => {
                                shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                }
            })
        };

        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || probe_loop(&shared))
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            prober: Some(prober),
        })
    }

    /// The address the front is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Per-backend health, in construction order — what the prober (and
    /// failover path) currently believe.
    #[must_use]
    pub fn backends_up(&self) -> Vec<bool> {
        self.shared
            .backends
            .iter()
            .map(|b| b.up.load(Ordering::SeqCst))
            .collect()
    }

    /// The current front exposition, exactly as `GET /metrics` returns
    /// it: `soctam_balance_*` families plus the backend roll-up.
    pub fn metrics(&self) -> String {
        front_metrics(&self.shared)
    }

    /// Stops accepting, severs client connections, and joins every
    /// thread. Pooled backend connections close; the backends stay up.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the front stops accepting (i.e. forever, for a front
    /// only a signal will stop) — the foreground mode `soctam balance`
    /// uses.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for Balancer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Front requests are bounded by the pooled clients' I/O deadline,
        // so severing client connections now (no drain window) unblocks
        // every worker promptly without corrupting backend state.
        for conn in lock_unpoisoned(&self.shared.active).values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        self.shared.queue_depth.store(0, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Balancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Balancer")
            .field("addr", &self.addr)
            .field("backends", &self.shared.backends.len())
            .finish_non_exhaustive()
    }
}

/// The prober: sweeps every backend's `/healthz` each interval, marking
/// 200s up and everything else (503, refused, hung) down.
fn probe_loop(shared: &FrontShared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        for backend in &shared.backends {
            let healthy = matches!(
                client::http_get_timeout(backend.addr, "/healthz", shared.cfg.probe_timeout),
                Ok((status, _)) if status.contains("200")
            );
            backend.up.store(healthy, Ordering::SeqCst);
        }
        shared.counters.probes.fetch_add(1, Ordering::Relaxed);
        // Sleep in slices so shutdown never waits out a long interval.
        let deadline = Instant::now() + shared.cfg.probe_interval;
        while Instant::now() < deadline {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Sheds one connection the front's bounded queue refused, mirroring the
/// daemon's shed discipline (capped courtesy threads, short deadlines).
fn shed_front(shared: &Arc<FrontShared>, stream: TcpStream) {
    shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
    if shared.shed_threads.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shared.shed_threads.fetch_sub(1, Ordering::SeqCst);
        return; // flood: drop without the courtesy reply
    }
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(SHED_GRACE));
        let _ = stream.set_write_timeout(Some(SHED_GRACE));
        let mut writer = stream;
        let busy = format!(
            "{{\"ok\": false, \"busy\": true, \"transient\": true, \"error\": \
             \"balancer at capacity ({} connections pending); retry with backoff\"}}\n",
            shared.cfg.max_pending
        );
        let _ = writer.write_all(busy.as_bytes());
        let _ = writer.flush();
        shared.shed_threads.fetch_sub(1, Ordering::SeqCst);
    });
}

/// Serves one accepted client connection: an HTTP GET gets one response
/// and a close; anything else is a stream of protocol request lines,
/// each parsed, routed, and proxied.
fn serve_front_connection(shared: &FrontShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.cfg.idle_timeout);
    let _ = stream.set_write_timeout(shared.cfg.idle_timeout);
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        lock_unpoisoned(&shared.active).insert(conn_id, clone);
    }
    struct Deregister<'a>(&'a FrontShared, u64);
    impl Drop for Deregister<'_> {
        fn drop(&mut self) {
            lock_unpoisoned(&self.0.active).remove(&self.1);
        }
    }
    let _deregister = Deregister(shared, conn_id);

    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut first = true;
    let mut buf = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_bounded_line(&mut reader, &mut buf, shared.cfg.max_line_bytes) {
            LineRead::Eof | LineRead::Failed => return,
            LineRead::TimedOut => {
                shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            LineRead::Oversized => {
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                let response = protocol::render_parse_error(&format!(
                    "request line exceeds the {}-byte cap; closing connection",
                    shared.cfg.max_line_bytes
                ));
                let _ = writer.write_all(response.as_bytes());
                let _ = writer.write_all(b"\n");
                let _ = writer.flush();
                let _ = io::copy(&mut reader.by_ref().take(1 << 20), &mut io::sink());
                return;
            }
            LineRead::Line => {}
        }
        let line = String::from_utf8_lossy(&buf);
        if first && (line.starts_with("GET ") || line.starts_with("HEAD ")) {
            shared
                .counters
                .http_requests
                .fetch_add(1, Ordering::Relaxed);
            serve_front_http(shared, &mut reader, &mut writer, line.trim());
            return; // Connection: close
        }
        first = false;
        let request = line.trim();
        if request.is_empty() || request.starts_with('#') {
            continue;
        }
        let request = request.to_owned();
        let t0 = Instant::now();
        let response = proxy_request(shared, &request);
        shared.proxy_latency.record(t0.elapsed());
        let write_ok = writer.write_all(response.as_bytes()).is_ok()
            && writer.write_all(b"\n").is_ok()
            && writer.flush().is_ok();
        if !write_ok {
            return;
        }
    }
}

/// What one forwarding attempt toward one backend produced.
enum Forward {
    /// A real answer (ok, engine error, or parse error — the backend
    /// spoke; the front relays verbatim).
    Answered(String),
    /// The backend shed the request: saturated, not dead — fail over but
    /// keep it routable.
    Busy(String),
    /// Transport-dead (connect refused, severed, hung past the deadline):
    /// marked down until the prober sees it healthy.
    Dead,
}

/// Forwards one raw request line to one backend over its pool.
fn forward(shared: &FrontShared, backend: &Backend, line: &str) -> Forward {
    let Some(mut conn) = backend.checkout(shared) else {
        return Forward::Dead;
    };
    match conn.request(line) {
        Ok(response) => {
            if client::response_busy(&response) {
                // The daemon closes right after a busy answer: the pooled
                // transport is gone with it.
                backend.discard();
                Forward::Busy(response)
            } else {
                backend.checkin(conn);
                Forward::Answered(response)
            }
        }
        Err(_) => {
            backend.discard();
            backend.up.store(false, Ordering::SeqCst);
            Forward::Dead
        }
    }
}

/// Routes one request line: parse with the shared grammar (a parse error
/// is answered locally — never forwarded, never hashed), hash the
/// solution-cache key, and walk the ring from its owner. Two passes:
/// believed-up backends first, then — total-outage desperation — the
/// marked-down ones, in case the prober's view is stale.
fn proxy_request(shared: &FrontShared, line: &str) -> String {
    let parsed = protocol::parse_request(line, &mut |name: &str| shared.catalog.resolve(name));
    let request = match parsed {
        Err(e) => {
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            return protocol::render_parse_error(&e);
        }
        Ok(request) => request,
    };
    // A proxy span: a no-op unless the calling thread armed a recorder
    // (the front itself never does — the histogram above is its export),
    // but an embedding test or tool that traces through `proxy_request`
    // sees the forwarding time attributed to its phase.
    let _span = obs::span(obs::Phase::Proxy);
    let order = shared.ring.candidates(protocol::route_key(&request));
    let owner = order[0];
    let mut last_busy = None;
    for desperation in [false, true] {
        for &index in &order {
            let backend = &shared.backends[index];
            if backend.up.load(Ordering::SeqCst) == desperation {
                continue; // pass 1: up only; pass 2: the rest
            }
            match forward(shared, backend, line) {
                Forward::Answered(response) => {
                    backend.routed.fetch_add(1, Ordering::Relaxed);
                    if index != owner {
                        shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    if desperation {
                        backend.up.store(true, Ordering::SeqCst); // it answered
                    }
                    return response;
                }
                Forward::Busy(response) => last_busy = Some(response),
                Forward::Dead => {}
            }
        }
    }
    shared.counters.unrouted.fetch_add(1, Ordering::Relaxed);
    last_busy.unwrap_or_else(|| NO_BACKEND_RESPONSE.to_owned())
}

/// Serves the front's HTTP surface: `/healthz` (cluster-aware),
/// `/metrics` (front families + roll-up), 404.
fn serve_front_http(
    shared: &FrontShared,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
) {
    let header_overflow = drain_http_headers(reader, shared.cfg.max_line_bytes);
    let (status, body) = if header_overflow {
        (
            "431 Request Header Fields Too Large",
            "header block exceeds the configured cap\n".to_owned(),
        )
    } else {
        let path = request_line.split_whitespace().nth(1).unwrap_or("/");
        match path {
            "/healthz" if !shared.any_backend_up() => (
                "503 Service Unavailable",
                "no backend available\n".to_owned(),
            ),
            "/healthz" => ("200 OK", "ok\n".to_owned()),
            "/metrics" => ("200 OK", front_metrics(shared)),
            _ => ("404 Not Found", "not found\n".to_owned()),
        }
    };
    let response = render_http_response(status, &body, request_line.starts_with("HEAD "));
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}

/// Renders the front's Prometheus exposition: `soctam_balance_*`
/// families, then the roll-up summing every live backend's families.
fn front_metrics(shared: &FrontShared) -> String {
    use std::fmt::Write as _;
    let c = &shared.counters;
    let mut out = String::new();
    let mut family = |name: &str, kind: &str, samples: &[(String, u64)]| {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, value) in samples {
            let _ = writeln!(out, "{name}{labels} {value}");
        }
    };
    let scalar = |v: u64| vec![(String::new(), v)];
    family(
        "soctam_balance_backends",
        "gauge",
        &scalar(shared.backends.len() as u64),
    );
    family(
        "soctam_balance_backend_up",
        "gauge",
        &shared
            .backends
            .iter()
            .map(|b| {
                (
                    format!("{{backend=\"{}\"}}", b.label),
                    u64::from(b.up.load(Ordering::SeqCst)),
                )
            })
            .collect::<Vec<_>>(),
    );
    family(
        "soctam_balance_routed_total",
        "counter",
        &shared
            .backends
            .iter()
            .map(|b| {
                (
                    format!("{{backend=\"{}\"}}", b.label),
                    b.routed.load(Ordering::Relaxed),
                )
            })
            .collect::<Vec<_>>(),
    );
    for (name, value) in [
        ("soctam_balance_failover_total", &c.failovers),
        ("soctam_balance_unrouted_total", &c.unrouted),
        ("soctam_balance_connections_total", &c.connections),
        ("soctam_balance_http_requests_total", &c.http_requests),
        ("soctam_balance_parse_errors_total", &c.parse_errors),
        ("soctam_balance_shed_total", &c.sheds),
        ("soctam_balance_timeouts_total", &c.timeouts),
        ("soctam_balance_probes_total", &c.probes),
    ] {
        family(name, "counter", &scalar(value.load(Ordering::Relaxed)));
    }
    family(
        "soctam_balance_queue_depth",
        "gauge",
        &scalar(shared.queue_depth.load(Ordering::SeqCst)),
    );
    let _ = writeln!(out, "# TYPE soctam_balance_uptime_seconds gauge");
    let _ = writeln!(
        out,
        "soctam_balance_uptime_seconds {:.3}",
        shared.started.elapsed().as_secs_f64()
    );
    // `balance_`-prefixed, unlike the daemon's `soctam_build_info`: the
    // roll-up below sums the backends' build-info series into this same
    // exposition, and one scrape must not carry two families of one name.
    let _ = writeln!(out, "# TYPE soctam_balance_build_info gauge");
    let _ = writeln!(
        out,
        "soctam_balance_build_info{{version=\"{}\"}} 1",
        env!("CARGO_PKG_VERSION")
    );
    let _ = writeln!(out, "# TYPE soctam_balance_proxy_latency_seconds histogram");
    let proxy = shared.proxy_latency.snapshot();
    if proxy.count > 0 {
        proxy.render_into(&mut out, "soctam_balance_proxy_latency_seconds", "");
    }
    out.push_str(&rollup_backend_metrics(shared));
    out
}

/// Scrapes every believed-up backend's `/metrics` and sums samples by
/// `(family, label set)`, preserving first-seen order — one front scrape
/// sees cluster-wide counters. Counters sum naturally; summed gauges
/// read as cluster totals (queue depths add; uptimes become aggregate
/// process-seconds).
fn rollup_backend_metrics(shared: &FrontShared) -> String {
    use std::fmt::Write as _;
    let mut kinds: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut sums: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut series_order: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    for backend in &shared.backends {
        if !backend.up.load(Ordering::SeqCst) {
            continue;
        }
        let Ok((status, body)) =
            client::http_get_timeout(backend.addr, "/metrics", shared.cfg.probe_timeout)
        else {
            continue;
        };
        if !status.contains("200") {
            continue;
        }
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                if let (Some(name), Some(kind)) = (parts.next(), parts.next()) {
                    if !kinds.contains_key(name) {
                        kinds.insert(name.to_owned(), kind.to_owned());
                        order.push(name.to_owned());
                    }
                }
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.trim().parse::<f64>() else {
                continue;
            };
            let sample = series.split(['{', ' ']).next().unwrap_or(series);
            // Histogram (and summary) sample names carry a suffix the
            // family's TYPE line doesn't: group `X_bucket`/`X_sum`/
            // `X_count` under family `X` whenever `X` is TYPE-annotated,
            // so roll-up histograms keep their header and their series.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let base = sample.strip_suffix(suffix)?;
                    kinds.contains_key(base).then(|| base.to_owned())
                })
                .unwrap_or_else(|| sample.to_owned());
            if !sums.contains_key(series) {
                series_order
                    .entry(family)
                    .or_default()
                    .push(series.to_owned());
            }
            *sums.entry(series.to_owned()).or_insert(0.0) += value;
        }
    }
    let mut out = String::new();
    for family in &order {
        let Some(series) = series_order.get(family) else {
            continue;
        };
        let _ = writeln!(out, "# TYPE {family} {}", kinds[family]);
        for name in series {
            let value = sums[name];
            if (value.fract()).abs() < f64::EPSILON {
                let _ = writeln!(out, "{name} {}", value as i64);
            } else {
                // Six decimals: phase counters and histogram `_sum`s are
                // microsecond-derived, and three would round them away.
                let _ = writeln!(out, "{name} {value:.6}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 4000 + i)).collect()
    }

    #[test]
    fn ring_candidates_cover_every_backend_exactly_once() {
        let ring = Ring::new(&labels(4), 64);
        for key in [0u64, 1, u64::MAX, 0xdead_beef, 42] {
            let order = ring.candidates(key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "key {key}: {order:?}");
        }
    }

    #[test]
    fn ring_routing_is_deterministic_and_balanced() {
        let ring_a = Ring::new(&labels(3), 64);
        let ring_b = Ring::new(&labels(3), 64);
        let mut per_backend = [0usize; 3];
        for key in 0..3000u64 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let a = ring_a.candidates(key);
            assert_eq!(a, ring_b.candidates(key), "same ring, same order");
            per_backend[a[0]] += 1;
        }
        for (index, &count) in per_backend.iter().enumerate() {
            // 64 virtual nodes keep the worst shard within a loose factor
            // of fair share (1000): this guards gross imbalance, not
            // perfection.
            assert!(
                (400..=1800).contains(&count),
                "backend {index} owns {count} of 3000 keys: {per_backend:?}"
            );
        }
    }

    #[test]
    fn ring_ownership_is_stable_when_a_backend_joins() {
        // Consistent hashing's point: adding a backend moves only the keys
        // the newcomer now owns; everything else keeps its shard.
        let three = Ring::new(&labels(3), 64);
        let four = Ring::new(&labels(4), 64);
        let (mut moved, total) = (0usize, 2000u64);
        for key in 0..total {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let before = three.candidates(key)[0];
            let after = four.candidates(key)[0];
            if after != before {
                assert_eq!(after, 3, "keys may move only onto the newcomer");
                moved += 1;
            }
        }
        assert!(
            moved > 0 && moved < total as usize / 2,
            "roughly 1/4 of keys should move, not {moved}/{total}"
        );
    }
}
