//! A minimal blocking client for the daemon, shared by `soctam client`,
//! the loopback test suite, and the `servesnap` benchmark.
//!
//! Two calls mirror the daemon's two surfaces: [`roundtrip`] speaks the
//! newline-delimited request protocol (one JSON response line per request
//! line), [`http_get`] speaks the `GET /healthz` / `GET /metrics` HTTP
//! surface.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client: send request lines, read response lines,
/// one connection for any number of requests.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request line and reads its one-line JSON response
    /// (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates write/read failures; an empty read (daemon closed the
    /// connection) is reported as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }
}

/// Sends each request line over one connection and returns the response
/// lines, in request order.
///
/// # Errors
///
/// Propagates the first transport failure.
pub fn roundtrip(addr: impl ToSocketAddrs, lines: &[&str]) -> std::io::Result<Vec<String>> {
    let mut conn = Connection::connect(addr)?;
    lines.iter().map(|line| conn.request(line)).collect()
}

/// Issues `GET <path>` against the daemon's HTTP surface, returning the
/// status line and the body.
///
/// # Errors
///
/// Propagates transport failures or a malformed (header-less) response.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: soctam\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response carries no header/body separator",
        )
    })?;
    let status = head.lines().next().unwrap_or_default().to_owned();
    Ok((status, body.to_owned()))
}
