//! A minimal blocking client for the daemon, shared by `soctam client`,
//! the loopback test suite, and the `servesnap` benchmark.
//!
//! Two calls mirror the daemon's two surfaces: [`roundtrip`] speaks the
//! newline-delimited request protocol (one JSON response line per request
//! line), [`http_get`] speaks the `GET /healthz` / `GET /metrics` HTTP
//! surface. [`replay`] drives a whole request file — or a saved JSONL
//! request log — through one connection and summarizes the observed wire
//! latencies ([`LatencySummary`]), which is what `soctam client --file`
//! and the `servesnap` replay section print.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

/// A connected protocol client: send request lines, read response lines,
/// one connection for any number of requests.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request line and reads its one-line JSON response
    /// (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates write/read failures; an empty read (daemon closed the
    /// connection) is reported as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }
}

/// Sends each request line over one connection and returns the response
/// lines, in request order.
///
/// # Errors
///
/// Propagates the first transport failure.
pub fn roundtrip(addr: impl ToSocketAddrs, lines: &[&str]) -> std::io::Result<Vec<String>> {
    let mut conn = Connection::connect(addr)?;
    lines.iter().map(|line| conn.request(line)).collect()
}

/// Issues `GET <path>` against the daemon's HTTP surface, returning the
/// status line and the body.
///
/// # Errors
///
/// Propagates transport failures or a malformed (header-less) response.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: soctam\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response carries no header/body separator",
        )
    })?;
    let status = head.lines().next().unwrap_or_default().to_owned();
    Ok((status, body.to_owned()))
}

/// Latency distribution of one pass of requests, in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (nearest-rank on the sorted samples).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarizes a batch of per-request latencies (milliseconds).
    /// Returns `None` for an empty batch — there is no distribution to
    /// describe.
    #[must_use]
    pub fn of_millis(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |p: f64| samples[((p / 100.0) * (samples.len() - 1) as f64).round() as usize];
        Some(Self {
            count: samples.len(),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            p50_ms: pct(50.0),
            p90_ms: pct(90.0),
            p99_ms: pct(99.0),
            max_ms: *samples.last().expect("non-empty"),
        })
    }

    /// Renders the summary as one JSON object (the shape `servesnap`
    /// embeds in `BENCH_serve.json`).
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \
             \"p90_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}}}",
            self.count, self.mean_ms, self.p50_ms, self.p90_ms, self.p99_ms, self.max_ms
        )
    }
}

/// What came back from replaying a request file or saved log.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Each replayed request paired with its one-line JSON response, in
    /// replay order.
    pub responses: Vec<(String, String)>,
    /// Responses reporting `"ok": true`.
    pub ok: usize,
    /// Responses reporting an error (parse or engine).
    pub failed: usize,
    /// Wire-latency distribution over all replayed requests; `None` when
    /// the input held no replayable lines.
    pub latency: Option<LatencySummary>,
}

/// Replays `text` — a plain request file, or a JSONL request log written
/// by `soctam serve --log` (see [`soctam_core::protocol::replay_lines`])
/// — against a running daemon over one connection, measuring each
/// request's wire latency.
///
/// # Errors
///
/// Propagates the first transport failure; request-level errors (a
/// response with `"ok": false`) are tallied in
/// [`ReplayReport::failed`], not raised.
pub fn replay(addr: impl ToSocketAddrs, text: &str) -> std::io::Result<ReplayReport> {
    let lines = soctam_core::protocol::replay_lines(text);
    let mut conn = Connection::connect(addr)?;
    let mut responses = Vec::with_capacity(lines.len());
    let mut latencies = Vec::with_capacity(lines.len());
    let (mut ok, mut failed) = (0, 0);
    for line in lines {
        let t0 = Instant::now();
        let response = conn.request(&line)?;
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if response.contains("\"ok\": true") {
            ok += 1;
        } else {
            failed += 1;
        }
        responses.push((line, response));
    }
    Ok(ReplayReport {
        responses,
        ok,
        failed,
        latency: LatencySummary::of_millis(latencies),
    })
}
