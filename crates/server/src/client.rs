//! A minimal blocking client for the daemon, shared by `soctam client`,
//! the loopback test suite, and the `servesnap` benchmark.
//!
//! Two calls mirror the daemon's two surfaces: [`roundtrip`] speaks the
//! newline-delimited request protocol (one JSON response line per request
//! line), [`http_get`] speaks the `GET /healthz` / `GET /metrics` HTTP
//! surface. [`replay`] drives a whole request file — or a saved JSONL
//! request log — through one connection and summarizes the observed wire
//! latencies ([`LatencySummary`]), which is what `soctam client --file`
//! and the `servesnap` replay section print.
//!
//! # Resilience
//!
//! The daemon sheds connections under overload (a one-line
//! `{"ok": false, "busy": true, ...}` answer, then close) and renders
//! recovered solver panics as `"transient": true` errors. A
//! [`RetryingClient`] absorbs both, plus plain transport failures:
//! each retryable outcome reconnects and retries with exponential
//! backoff and *deterministic* jitter (seeded [`rand::rngs::StdRng`], so
//! a chaos run's timing is reproducible). `soctam client --retries N
//! --backoff SECS` and [`replay_with_retry`] ride on it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A connected protocol client: send request lines, read response lines,
/// one connection for any number of requests.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request line and reads its one-line JSON response
    /// (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates write/read failures; an empty read (daemon closed the
    /// connection) is reported as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }
}

/// Sends each request line over one connection and returns the response
/// lines, in request order.
///
/// # Errors
///
/// Propagates the first transport failure.
pub fn roundtrip(addr: impl ToSocketAddrs, lines: &[&str]) -> std::io::Result<Vec<String>> {
    let mut conn = Connection::connect(addr)?;
    lines.iter().map(|line| conn.request(line)).collect()
}

/// Whether a one-line JSON response asks to be retried: an admission-
/// control shed (`"busy": true`) or a transient failure such as a
/// recovered solver panic (`"transient": true`).
#[must_use]
pub fn is_retryable_response(response: &str) -> bool {
    response.contains("\"busy\": true") || response.contains("\"transient\": true")
}

/// Exponential backoff with deterministic jitter.
///
/// Attempt `k` (1-based) sleeps `backoff · 2^(k-1)` scaled by a uniform
/// jitter factor in `[0.5, 1.0)`, capped at [`RetryPolicy::MAX_DELAY`].
/// The jitter stream is seeded, so two runs with equal seeds back off
/// identically — chaos tests stay reproducible.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub retries: u32,
    /// Base delay before the first retry (doubles each attempt).
    pub backoff: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// Ceiling on any single backoff sleep, whatever the attempt count.
    pub const MAX_DELAY: Duration = Duration::from_secs(5);

    /// A policy that never retries (the plain-client behaviour).
    #[must_use]
    pub fn none() -> Self {
        Self {
            retries: 0,
            backoff: Duration::ZERO,
            seed: 0,
        }
    }

    /// `retries` extra attempts with base delay `backoff` and a default
    /// jitter seed.
    #[must_use]
    pub fn new(retries: u32, backoff: Duration) -> Self {
        Self {
            retries,
            backoff,
            seed: 0x5eed_50c7,
        }
    }

    /// The sleep before (1-based) retry `attempt`, drawing jitter from
    /// `rng`.
    fn delay(&self, rng: &mut StdRng, attempt: u32) -> Duration {
        let doubled = self
            .backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let full = doubled.min(Self::MAX_DELAY);
        if full.is_zero() {
            return full;
        }
        // Uniform jitter factor in [0.5, 1.0): decorrelates a thundering
        // herd of shed clients without ever collapsing the delay to zero.
        let micros = full.as_micros() as u64;
        Duration::from_micros(micros / 2 + rng.gen_range(0..micros.div_ceil(2).max(1)))
    }
}

/// A protocol client that retries: transport failures (including connect
/// refusals), admission-control sheds, and `"transient": true` error
/// responses each trigger a reconnect and a backed-off resend, up to
/// [`RetryPolicy::retries`] extra attempts per request.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: StdRng,
    conn: Option<Connection>,
    retried: u64,
}

impl RetryingClient {
    /// Prepares a client for `addr`. Connecting is lazy — and retried —
    /// so constructing against a daemon that is still binding (or
    /// momentarily drowning) succeeds.
    ///
    /// # Errors
    ///
    /// Fails only if `addr` resolves to no address at all.
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let rng = StdRng::seed_from_u64(policy.seed);
        Ok(Self {
            addr,
            policy,
            rng,
            conn: None,
            retried: 0,
        })
    }

    /// Request attempts made beyond each first try, summed over the
    /// client's lifetime.
    #[must_use]
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Sends one request line, retrying per the policy, and returns the
    /// final one-line JSON response.
    ///
    /// # Errors
    ///
    /// The last transport failure, once the attempt budget is spent. A
    /// still-retryable *response* (the daemon kept shedding) is returned
    /// as `Ok` — callers see exactly what the daemon last said.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let mut attempt = 0;
        loop {
            let outcome = self.request_once(line);
            let retryable = match &outcome {
                Ok(response) => is_retryable_response(response),
                Err(_) => true,
            };
            if !retryable || attempt >= self.policy.retries {
                return outcome;
            }
            attempt += 1;
            self.retried += 1;
            // A shed or transient answer came over a connection the
            // daemon is about to close (or already severed): reconnect.
            self.conn = None;
            std::thread::sleep(self.policy.delay(&mut self.rng, attempt));
        }
    }

    fn request_once(&mut self, line: &str) -> std::io::Result<String> {
        if self.conn.is_none() {
            self.conn = Some(Connection::connect(self.addr)?);
        }
        let conn = self.conn.as_mut().expect("connection just established");
        let outcome = conn.request(line);
        if outcome.is_err() {
            self.conn = None;
        }
        outcome
    }
}

/// Issues `GET <path>` against the daemon's HTTP surface, returning the
/// status line and the body.
///
/// # Errors
///
/// Propagates transport failures or a malformed (header-less) response.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: soctam\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response carries no header/body separator",
        )
    })?;
    let status = head.lines().next().unwrap_or_default().to_owned();
    Ok((status, body.to_owned()))
}

/// Latency distribution of one pass of requests, in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (nearest-rank on the sorted samples).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarizes a batch of per-request latencies (milliseconds).
    /// Returns `None` for an empty batch — there is no distribution to
    /// describe. Never panics: samples are ordered by `f64::total_cmp`,
    /// so even a NaN smuggled in by a broken clock is sorted (last), not
    /// a crash.
    #[must_use]
    pub fn of_millis(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        let pct = |p: f64| samples[((p / 100.0) * (samples.len() - 1) as f64).round() as usize];
        Some(Self {
            count: samples.len(),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            p50_ms: pct(50.0),
            p90_ms: pct(90.0),
            p99_ms: pct(99.0),
            max_ms: samples[samples.len() - 1],
        })
    }

    /// Renders the summary as one JSON object (the shape `servesnap`
    /// embeds in `BENCH_serve.json`).
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \
             \"p90_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}}}",
            self.count, self.mean_ms, self.p50_ms, self.p90_ms, self.p99_ms, self.max_ms
        )
    }
}

/// What came back from replaying a request file or saved log.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Each replayed request paired with its one-line JSON response, in
    /// replay order.
    pub responses: Vec<(String, String)>,
    /// Responses reporting `"ok": true`.
    pub ok: usize,
    /// Responses reporting an error (parse or engine).
    pub failed: usize,
    /// Wire-latency distribution over all replayed requests; `None` when
    /// the input held no replayable lines. Each request's latency covers
    /// every attempt it needed, backoff sleeps included — the latency a
    /// caller actually experienced.
    pub latency: Option<LatencySummary>,
    /// Request attempts beyond each first try (0 without a retry policy).
    pub retried: u64,
}

/// Replays `text` — a plain request file, or a JSONL request log written
/// by `soctam serve --log` (see [`soctam_core::protocol::replay_lines`])
/// — against a running daemon over one connection, measuring each
/// request's wire latency.
///
/// # Errors
///
/// Propagates the first transport failure; request-level errors (a
/// response with `"ok": false`) are tallied in
/// [`ReplayReport::failed`], not raised.
pub fn replay(addr: impl ToSocketAddrs, text: &str) -> std::io::Result<ReplayReport> {
    replay_with_retry(addr, text, RetryPolicy::none())
}

/// [`replay`], but through a [`RetryingClient`]: sheds, transient
/// errors, and transport failures are retried per `policy`, so a replay
/// against an overloaded (or fault-injected) daemon can still finish
/// with every request answered.
///
/// # Errors
///
/// Propagates a transport failure only after the policy's attempt
/// budget is spent on it.
pub fn replay_with_retry(
    addr: impl ToSocketAddrs,
    text: &str,
    policy: RetryPolicy,
) -> std::io::Result<ReplayReport> {
    let lines = soctam_core::protocol::replay_lines(text);
    let mut client = RetryingClient::new(addr, policy)?;
    let mut responses = Vec::with_capacity(lines.len());
    let mut latencies = Vec::with_capacity(lines.len());
    let (mut ok, mut failed) = (0, 0);
    for line in lines {
        let t0 = Instant::now();
        let response = client.request(&line)?;
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if response.contains("\"ok\": true") {
            ok += 1;
        } else {
            failed += 1;
        }
        responses.push((line, response));
    }
    Ok(ReplayReport {
        responses,
        ok,
        failed,
        latency: LatencySummary::of_millis(latencies),
        retried: client.retried(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_of_an_empty_batch_is_none_not_a_panic() {
        assert_eq!(LatencySummary::of_millis(Vec::new()), None);
    }

    #[test]
    fn latency_summary_survives_non_finite_samples() {
        // total_cmp orders NaN after every finite sample: the summary is
        // produced (NaN surfaces in max_ms, where a reader can see it)
        // instead of panicking mid-replay.
        let summary = LatencySummary::of_millis(vec![2.0, f64::NAN, 1.0]).unwrap();
        assert_eq!(summary.count, 3);
        assert_eq!(summary.p50_ms, 2.0);
        assert!(summary.max_ms.is_nan());
    }

    #[test]
    fn retryable_responses_are_sheds_and_transients_only() {
        assert!(is_retryable_response(
            "{\"ok\": false, \"busy\": true, \"transient\": true, \"error\": \"...\"}"
        ));
        assert!(is_retryable_response(
            "{\"ok\": false, \"transient\": true, \"error\": \"solver panicked (recovered)\"}"
        ));
        assert!(!is_retryable_response("{\"ok\": true, \"makespan\": 5}"));
        assert!(!is_retryable_response(
            "{\"ok\": false, \"error\": \"unknown SOC\"}"
        ));
    }

    #[test]
    fn backoff_delays_are_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            retries: 8,
            backoff: Duration::from_millis(100),
            seed: 7,
        };
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for attempt in 1..=8 {
            let d = policy.delay(&mut a, attempt);
            // Same seed, same stream: the run is reproducible.
            assert_eq!(d, policy.delay(&mut b, attempt));
            let full = policy
                .backoff
                .saturating_mul(1 << (attempt - 1))
                .min(RetryPolicy::MAX_DELAY);
            assert!(d >= full / 2 && d < full, "attempt {attempt}: {d:?}");
        }
        // Far past the doubling horizon the cap still holds.
        assert!(policy.delay(&mut a, 1000) < RetryPolicy::MAX_DELAY);
    }

    #[test]
    fn zero_backoff_never_sleeps() {
        let policy = RetryPolicy::none();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(policy.delay(&mut rng, 1), Duration::ZERO);
    }
}
