//! A minimal blocking client for the daemon, shared by `soctam client`,
//! the loopback test suite, and the `servesnap` benchmark.
//!
//! Two calls mirror the daemon's two surfaces: [`roundtrip`] speaks the
//! newline-delimited request protocol (one JSON response line per request
//! line), [`http_get`] speaks the `GET /healthz` / `GET /metrics` HTTP
//! surface. [`replay`] drives a whole request file — or a saved JSONL
//! request log — through one connection and summarizes the observed wire
//! latencies ([`LatencySummary`]), which is what `soctam client --file`
//! and the `servesnap` replay section print.
//!
//! # Resilience
//!
//! The daemon sheds connections under overload (a one-line
//! `{"ok": false, "busy": true, ...}` answer, then close) and renders
//! recovered solver panics as `"transient": true` errors. A
//! [`RetryingClient`] absorbs both, plus plain transport failures:
//! each retryable outcome retries with exponential backoff and
//! *deterministic* jitter (seeded [`rand::rngs::StdRng`], so a chaos
//! run's timing is reproducible), reconnecting only when the socket is
//! actually gone (transport error or shed). Responses are classified on
//! their real top-level JSON fields ([`response_ok`],
//! [`is_retryable_response`]), never by substring. `soctam client
//! --retries N --backoff SECS` and [`replay_with_retry`] ride on it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use soctam_core::protocol::json_bool_field;

/// A connected protocol client: send request lines, read response lines,
/// one connection for any number of requests.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Bounds every read and write on this connection (`None` removes the
    /// bound). The balancer sets this on pooled backend connections so a
    /// hung backend surfaces as a transport error — and a failover — not
    /// a front worker blocked forever.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Sends one request line and reads its one-line JSON response
    /// (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates write/read failures; an empty read (daemon closed the
    /// connection) is reported as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }
}

/// Sends each request line over one connection and returns the response
/// lines, in request order.
///
/// # Errors
///
/// Propagates the first transport failure.
pub fn roundtrip(addr: impl ToSocketAddrs, lines: &[&str]) -> std::io::Result<Vec<String>> {
    let mut conn = Connection::connect(addr)?;
    lines.iter().map(|line| conn.request(line)).collect()
}

/// Whether a one-line JSON response reports success: its *top-level*
/// `"ok"` field is `true`. Classification is field-based
/// ([`soctam_core::protocol::json_bool_field`]), never a substring match
/// — a parse-error response echoes the offending request text into its
/// `error` string, so a hostile request line containing `"ok": true`
/// must not count as a success.
#[must_use]
pub fn response_ok(response: &str) -> bool {
    json_bool_field(response, "ok") == Some(true)
}

/// Whether a one-line JSON response is an admission-control shed: its
/// top-level `"busy"` field is `true`. The daemon closes the connection
/// right after writing such an answer, so a busy response also means the
/// transport underneath is gone.
#[must_use]
pub fn response_busy(response: &str) -> bool {
    json_bool_field(response, "busy") == Some(true)
}

/// Whether a one-line JSON response asks to be retried: an admission-
/// control shed (`"busy": true`) or a transient failure such as a
/// recovered solver panic (`"transient": true`). Both are read as real
/// top-level fields, so request text echoed inside an `error` string can
/// never spoof a retry.
#[must_use]
pub fn is_retryable_response(response: &str) -> bool {
    response_busy(response) || json_bool_field(response, "transient") == Some(true)
}

/// Exponential backoff with deterministic jitter.
///
/// Attempt `k` (1-based) sleeps `backoff · 2^(k-1)` scaled by a uniform
/// jitter factor in `[0.5, 1.0)`, capped at [`RetryPolicy::MAX_DELAY`].
/// The jitter stream is seeded, so two runs with equal seeds back off
/// identically — chaos tests stay reproducible.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub retries: u32,
    /// Base delay before the first retry (doubles each attempt).
    pub backoff: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// Ceiling on any single backoff sleep, whatever the attempt count.
    pub const MAX_DELAY: Duration = Duration::from_secs(5);

    /// A policy that never retries (the plain-client behaviour).
    #[must_use]
    pub fn none() -> Self {
        Self {
            retries: 0,
            backoff: Duration::ZERO,
            seed: 0,
        }
    }

    /// `retries` extra attempts with base delay `backoff` and a default
    /// jitter seed.
    #[must_use]
    pub fn new(retries: u32, backoff: Duration) -> Self {
        Self {
            retries,
            backoff,
            seed: 0x5eed_50c7,
        }
    }

    /// The sleep before (1-based) retry `attempt`, drawing jitter from
    /// `rng`.
    fn delay(&self, rng: &mut StdRng, attempt: u32) -> Duration {
        let doubled = self
            .backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let full = doubled.min(Self::MAX_DELAY);
        if full.is_zero() {
            return full;
        }
        // Uniform jitter factor in [0.5, 1.0): decorrelates a thundering
        // herd of shed clients without ever collapsing the delay to zero.
        let micros = full.as_micros() as u64;
        Duration::from_micros(micros / 2 + rng.gen_range(0..micros.div_ceil(2).max(1)))
    }
}

/// A protocol client that retries: transport failures (including connect
/// refusals), admission-control sheds, and `"transient": true` error
/// responses each trigger a backed-off resend, up to
/// [`RetryPolicy::retries`] extra attempts per request. Reconnecting is
/// reserved for the outcomes that actually kill the socket — transport
/// errors and sheds (the daemon closes right after a busy answer); a
/// transient error response keeps its healthy keep-alive connection.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: StdRng,
    conn: Option<Connection>,
    retried: u64,
    io_timeout: Option<Duration>,
}

impl RetryingClient {
    /// Prepares a client for `addr`. Connecting is lazy — and retried —
    /// so constructing against a daemon that is still binding (or
    /// momentarily drowning) succeeds.
    ///
    /// # Errors
    ///
    /// Fails only if `addr` resolves to no address at all.
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let rng = StdRng::seed_from_u64(policy.seed);
        Ok(Self {
            addr,
            policy,
            rng,
            conn: None,
            retried: 0,
            io_timeout: None,
        })
    }

    /// Bounds every read and write on this client's connections (applied
    /// to the current connection and every reconnect). `None` — the
    /// default — never times out.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        if let Some(conn) = &self.conn {
            conn.set_io_timeout(timeout).ok();
        }
        self
    }

    /// Request attempts made beyond each first try, summed over the
    /// client's lifetime.
    #[must_use]
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Sends one request line, retrying per the policy, and returns the
    /// final one-line JSON response.
    ///
    /// # Errors
    ///
    /// The last transport failure, once the attempt budget is spent. A
    /// still-retryable *response* (the daemon kept shedding) is returned
    /// as `Ok` — callers see exactly what the daemon last said.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let mut attempt = 0;
        loop {
            let outcome = self.request_once(line);
            let retryable = match &outcome {
                Ok(response) => is_retryable_response(response),
                Err(_) => true,
            };
            if !retryable || attempt >= self.policy.retries {
                return outcome;
            }
            attempt += 1;
            self.retried += 1;
            // Only sheds close the socket: a busy answer (and any
            // transport failure, already dropped in `request_once`) means
            // reconnect. A `"transient": true` error — a recovered solver
            // panic — arrives on a healthy keep-alive connection, which
            // stays pooled for the retry.
            if matches!(&outcome, Ok(response) if response_busy(response)) {
                self.conn = None;
            }
            std::thread::sleep(self.policy.delay(&mut self.rng, attempt));
        }
    }

    fn request_once(&mut self, line: &str) -> std::io::Result<String> {
        if self.conn.is_none() {
            let conn = Connection::connect(self.addr)?;
            conn.set_io_timeout(self.io_timeout)?;
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("connection just established");
        let outcome = conn.request(line);
        if outcome.is_err() {
            self.conn = None;
        }
        outcome
    }
}

/// Issues `GET <path>` against the daemon's HTTP surface, returning the
/// status line and the body.
///
/// # Errors
///
/// Propagates transport failures or a malformed (header-less) response.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: soctam\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response carries no header/body separator",
        )
    })?;
    let status = head.lines().next().unwrap_or_default().to_owned();
    Ok((status, body.to_owned()))
}

/// [`http_get`] with a deadline on connect, reads, and writes — what the
/// balancer's health prober and metrics roll-up use, so one hung backend
/// cannot stall the probe loop or a front `/metrics` scrape.
///
/// # Errors
///
/// Propagates transport failures (timeouts included) or a malformed
/// (header-less) response.
pub fn http_get_timeout(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(String, String)> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: soctam\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response carries no header/body separator",
        )
    })?;
    let status = head.lines().next().unwrap_or_default().to_owned();
    Ok((status, body.to_owned()))
}

/// Latency distribution of one pass of requests, in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (nearest-rank on the sorted samples).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile — the deep tail a p99 smooths over.
    pub p999_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
    /// Population standard deviation. 0 for a single sample; NaN only if
    /// a sample was NaN (like the other statistics, surfaced not hidden).
    pub stddev_ms: f64,
}

impl LatencySummary {
    /// Summarizes a batch of per-request latencies (milliseconds).
    /// Returns `None` for an empty batch — there is no distribution to
    /// describe. Never panics: samples are ordered by `f64::total_cmp`,
    /// so even a NaN smuggled in by a broken clock is sorted (last), not
    /// a crash.
    #[must_use]
    pub fn of_millis(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        let pct = |p: f64| samples[((p / 100.0) * (samples.len() - 1) as f64).round() as usize];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        Some(Self {
            count: samples.len(),
            mean_ms: mean,
            p50_ms: pct(50.0),
            p90_ms: pct(90.0),
            p99_ms: pct(99.0),
            p999_ms: pct(99.9),
            max_ms: samples[samples.len() - 1],
            stddev_ms: variance.sqrt(),
        })
    }

    /// Renders the summary as one JSON object (the shape `servesnap`
    /// embeds in `BENCH_serve.json`). JSON has no NaN or infinity, so a
    /// non-finite statistic — reachable since `of_millis` tolerates NaN
    /// samples — renders as `null`, keeping the document parseable.
    #[must_use]
    pub fn json(&self) -> String {
        fn ms(value: f64) -> String {
            if value.is_finite() {
                format!("{value:.4}")
            } else {
                "null".to_owned()
            }
        }
        format!(
            "{{\"count\": {}, \"mean_ms\": {}, \"p50_ms\": {}, \
             \"p90_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
             \"max_ms\": {}, \"stddev_ms\": {}}}",
            self.count,
            ms(self.mean_ms),
            ms(self.p50_ms),
            ms(self.p90_ms),
            ms(self.p99_ms),
            ms(self.p999_ms),
            ms(self.max_ms),
            ms(self.stddev_ms)
        )
    }
}

/// What came back from replaying a request file or saved log.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Each replayed request paired with its one-line JSON response, in
    /// replay order.
    pub responses: Vec<(String, String)>,
    /// Responses reporting `"ok": true`.
    pub ok: usize,
    /// Responses reporting an error (parse or engine).
    pub failed: usize,
    /// Wire-latency distribution over all replayed requests; `None` when
    /// the input held no replayable lines. Each request's latency covers
    /// every attempt it needed, backoff sleeps included — the latency a
    /// caller actually experienced.
    pub latency: Option<LatencySummary>,
    /// Request attempts beyond each first try (0 without a retry policy).
    pub retried: u64,
}

/// Replays `text` — a plain request file, or a JSONL request log written
/// by `soctam serve --log` (see [`soctam_core::protocol::replay_lines`])
/// — against a running daemon over one connection, measuring each
/// request's wire latency.
///
/// # Errors
///
/// Propagates the first transport failure; request-level errors (a
/// response with `"ok": false`) are tallied in
/// [`ReplayReport::failed`], not raised.
pub fn replay(addr: impl ToSocketAddrs, text: &str) -> std::io::Result<ReplayReport> {
    replay_with_retry(addr, text, RetryPolicy::none())
}

/// [`replay`], but through a [`RetryingClient`]: sheds, transient
/// errors, and transport failures are retried per `policy`, so a replay
/// against an overloaded (or fault-injected) daemon can still finish
/// with every request answered.
///
/// # Errors
///
/// Propagates a transport failure only after the policy's attempt
/// budget is spent on it.
pub fn replay_with_retry(
    addr: impl ToSocketAddrs,
    text: &str,
    policy: RetryPolicy,
) -> std::io::Result<ReplayReport> {
    let lines = soctam_core::protocol::replay_lines(text);
    let mut client = RetryingClient::new(addr, policy)?;
    let mut responses = Vec::with_capacity(lines.len());
    let mut latencies = Vec::with_capacity(lines.len());
    let (mut ok, mut failed) = (0, 0);
    for line in lines {
        let t0 = Instant::now();
        let response = client.request(&line)?;
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if response_ok(&response) {
            ok += 1;
        } else {
            failed += 1;
        }
        responses.push((line, response));
    }
    Ok(ReplayReport {
        responses,
        ok,
        failed,
        latency: LatencySummary::of_millis(latencies),
        retried: client.retried(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_of_an_empty_batch_is_none_not_a_panic() {
        assert_eq!(LatencySummary::of_millis(Vec::new()), None);
    }

    #[test]
    fn latency_summary_survives_non_finite_samples() {
        // total_cmp orders NaN after every finite sample: the summary is
        // produced (NaN surfaces in max_ms, where a reader can see it)
        // instead of panicking mid-replay.
        let summary = LatencySummary::of_millis(vec![2.0, f64::NAN, 1.0]).unwrap();
        assert_eq!(summary.count, 3);
        assert_eq!(summary.p50_ms, 2.0);
        assert!(summary.max_ms.is_nan());
        assert!(summary.p999_ms.is_nan(), "p99.9 lands on the NaN tail");
        assert!(summary.stddev_ms.is_nan(), "a NaN sample poisons stddev");
    }

    #[test]
    fn latency_summary_tail_and_spread_statistics() {
        // 998 identical samples with two 100 ms outliers: p99 smooths the
        // outliers away; p99.9 (nearest-rank index 998) and stddev both
        // see them.
        let mut samples = vec![1.0; 998];
        samples.extend([100.0, 100.0]);
        let summary = LatencySummary::of_millis(samples).unwrap();
        assert_eq!(summary.p99_ms, 1.0);
        assert_eq!(summary.p999_ms, 100.0);
        assert!(
            (summary.stddev_ms - 4.4230).abs() < 0.01,
            "population stddev of 998×1ms + 2×100ms, got {}",
            summary.stddev_ms
        );
        // Degenerate cases stay exact: one sample spreads zero.
        let single = LatencySummary::of_millis(vec![7.0]).unwrap();
        assert_eq!(single.p999_ms, 7.0);
        assert_eq!(single.stddev_ms, 0.0);
    }

    #[test]
    fn latency_summary_json_renders_non_finite_samples_as_null() {
        let summary = LatencySummary::of_millis(vec![2.0, f64::NAN, 1.0]).unwrap();
        let json = summary.json();
        // `{:.4}` would have written a bare `NaN` here — invalid JSON.
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        assert!(json.contains("\"max_ms\": null"), "{json}");
        assert!(json.contains("\"mean_ms\": null"), "{json}");
        assert!(json.contains("\"stddev_ms\": null"), "{json}");
        assert!(json.contains("\"p50_ms\": 2.0000"), "{json}");

        let finite = LatencySummary::of_millis(vec![1.0, 2.0]).unwrap().json();
        assert!(!finite.contains("null"), "{finite}");
    }

    #[test]
    fn retryable_responses_are_sheds_and_transients_only() {
        assert!(is_retryable_response(
            "{\"ok\": false, \"busy\": true, \"transient\": true, \"error\": \"...\"}"
        ));
        assert!(is_retryable_response(
            "{\"ok\": false, \"transient\": true, \"error\": \"solver panicked (recovered)\"}"
        ));
        assert!(!is_retryable_response("{\"ok\": true, \"makespan\": 5}"));
        assert!(!is_retryable_response(
            "{\"ok\": false, \"error\": \"unknown SOC\"}"
        ));
        // A parse error echoing hostile request text must classify on the
        // real top-level fields, not on substrings of the echo.
        let echo = soctam_core::protocol::render_parse_error(
            "unknown request kind `x \"busy\": true, \"transient\": true`",
        );
        assert!(!is_retryable_response(&echo), "{echo}");
        assert!(!response_ok(&echo), "{echo}");
        let echo_ok = soctam_core::protocol::render_parse_error("junk \"ok\": true junk");
        assert!(!response_ok(&echo_ok), "{echo_ok}");
    }

    #[test]
    fn response_classifiers_read_top_level_fields() {
        assert!(response_ok(
            "{\"op\": \"bounds\", \"ok\": true, \"bounds\": []}"
        ));
        assert!(!response_ok("{\"ok\": false, \"error\": \"x\"}"));
        assert!(!response_ok("not json at all"));
        assert!(response_busy(
            "{\"ok\": false, \"busy\": true, \"transient\": true, \"error\": \"x\"}"
        ));
        assert!(!response_busy(
            "{\"ok\": false, \"transient\": true, \"error\": \"solver panicked (recovered)\"}"
        ));
    }

    #[test]
    fn backoff_delays_are_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            retries: 8,
            backoff: Duration::from_millis(100),
            seed: 7,
        };
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for attempt in 1..=8 {
            let d = policy.delay(&mut a, attempt);
            // Same seed, same stream: the run is reproducible.
            assert_eq!(d, policy.delay(&mut b, attempt));
            let full = policy
                .backoff
                .saturating_mul(1 << (attempt - 1))
                .min(RetryPolicy::MAX_DELAY);
            assert!(d >= full / 2 && d < full, "attempt {attempt}: {d:?}");
        }
        // Far past the doubling horizon the cap still holds.
        assert!(policy.delay(&mut a, 1000) < RetryPolicy::MAX_DELAY);
    }

    #[test]
    fn zero_backoff_never_sleeps() {
        let policy = RetryPolicy::none();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(policy.delay(&mut rng, 1), Duration::ZERO);
    }
}
